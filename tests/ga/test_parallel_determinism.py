"""Parallel-evaluation determinism: seeded runs must be identical for every
``jobs`` setting, and the fitness caches must never change a result."""

from __future__ import annotations

import pytest

from repro.ga.engine import GAParameters, GeneticAlgorithm
from repro.ga.pinopt import PinAssignmentProblem, optimize_pin_assignment
from repro.ga.random_search import random_pin_search
from repro.logic.boolfunc import BoolFunction
from repro.logic.truthtable import TruthTable


def _small_functions():
    """Two tiny same-shape functions (cheap enough to synthesise in tests)."""
    f_and = BoolFunction([TruthTable(2, 0b1000)], name="and2")
    f_or = BoolFunction([TruthTable(2, 0b1110)], name="or2")
    return [f_and, f_or]


def _run(jobs: int, seed: int = 9):
    return optimize_pin_assignment(
        _small_functions(),
        parameters=GAParameters(population_size=6, generations=3, seed=seed),
        effort="fast",
        final_effort="fast",
        jobs=jobs,
    )


class TestSeededDeterminismAcrossJobs:
    def test_ga_result_identical_for_serial_and_parallel(self, monkeypatch):
        # Force real worker processes even on a single-CPU host so the
        # multiprocess path is what we compare against the serial run.
        import repro.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 4)
        serial = _run(jobs=1)
        parallel = _run(jobs=4)
        assert serial.ga_result.best_genotype == parallel.ga_result.best_genotype
        assert serial.ga_result.best_fitness == parallel.ga_result.best_fitness
        assert serial.ga_result.evaluations == parallel.ga_result.evaluations
        assert serial.ga_result.history == parallel.ga_result.history
        assert serial.ga_result.hall_of_fame == parallel.ga_result.hall_of_fame
        assert serial.best_area == parallel.best_area
        assert (
            serial.best_assignment.to_genotype()
            == parallel.best_assignment.to_genotype()
        )

    def test_random_search_identical_for_serial_and_parallel(self):
        functions = _small_functions()
        serial = random_pin_search(functions, num_samples=12, seed=5, jobs=1)
        parallel = random_pin_search(functions, num_samples=12, seed=5, jobs=3)
        assert serial.areas == parallel.areas
        assert serial.best_area == parallel.best_area
        assert (
            serial.best_assignment.to_genotype()
            == parallel.best_assignment.to_genotype()
        )

    def test_cache_stats_not_double_counted_when_clamped(self, monkeypatch):
        # jobs>1 on a single-CPU host: the pool runs every batch inline in
        # the parent, so the parent's counters already hold the truth and
        # the engine's totals must not be added on top of them.
        import repro.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 1)
        result = _run(jobs=4)
        stats = result.cache_stats
        assert (
            stats["evaluations"] + stats["signature_hits"]
            == result.ga_result.evaluations
        )

    def test_cache_stats_count_worker_evaluations(self, monkeypatch):
        import repro.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 4)
        result = _run(jobs=4)
        stats = result.cache_stats
        # Worker-side evaluations are reported as synthesis runs; together
        # with parent-side signature hits they cover every distinct genotype.
        assert (
            stats["evaluations"] + stats["signature_hits"]
            == result.ga_result.evaluations
        )
        assert stats["evaluations"] > 0

    def test_parallel_results_feed_shared_cache(self):
        functions = _small_functions()
        problem = PinAssignmentProblem(functions, effort="fast")
        random_pin_search(
            functions, num_samples=8, seed=5, problem=problem, jobs=2
        )
        stats = problem.cache_stats()
        assert stats["genotype_entries"] >= 1


class TestEngineBatchEvaluation:
    def test_generation_stats_carry_cache_counters(self):
        result = _run(jobs=1).ga_result
        last = result.history[-1]
        assert last.cache_misses == result.evaluations
        assert last.cache_hits >= 0
        # Cumulative counters must be monotone over generations.
        for earlier, later in zip(result.history, result.history[1:]):
            assert later.cache_hits >= earlier.cache_hits
            assert later.cache_misses >= earlier.cache_misses

    def test_duplicate_genotypes_counted_as_hits(self):
        calls = []

        def evaluate(genotype):
            calls.append(tuple(genotype))
            return float(sum(genotype))

        engine = GeneticAlgorithm(
            sample=lambda rng: [rng.randrange(3) for _ in range(4)],
            evaluate=evaluate,
            crossover=lambda a, b, rng: (list(a), list(b)),
            mutate=lambda g, rng: list(g),
            parameters=GAParameters(population_size=6, generations=2, seed=2),
        )
        result = engine.run()
        # Every distinct genotype is evaluated exactly once...
        assert len(calls) == len(set(calls))
        assert result.evaluations == len(calls)
        # ...and the rest of the fitness requests were cache hits.
        assert engine.cache_hits > 0

    def test_engine_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            GeneticAlgorithm(
                sample=lambda rng: [0],
                evaluate=lambda g: 0.0,
                crossover=lambda a, b, rng: (a, b),
                mutate=lambda g, rng: g,
                jobs=0,
            )

"""Unit tests for the persistent (REPRO_CACHE_DIR) synthesis cache."""

import json

import pytest

from repro.ga.engine import GAParameters
from repro.ga.pinopt import (
    CACHE_DIR_ENV_VAR,
    PinAssignmentProblem,
    SynthesisDiskCache,
    library_fingerprint,
    optimize_pin_assignment,
)
from repro.sboxes import optimal_sboxes

LIB = "deadbeefcafe0000"  # an arbitrary library fingerprint


class TestSynthesisDiskCache:
    def test_roundtrip(self, tmp_path):
        cache = SynthesisDiskCache(str(tmp_path))
        signature = (4, 0x1234, 0x5678)
        assert cache.get("fast", LIB, signature) is None
        cache.put("fast", LIB, signature, 42.5)
        assert cache.get("fast", LIB, signature) == 42.5
        # Keyed by effort and library as well: either differing is a miss.
        assert cache.get("standard", LIB, signature) is None
        assert cache.get("fast", "0" * 16, signature) is None
        # A fresh instance reloads the appended entry from disk.
        reloaded = SynthesisDiskCache(str(tmp_path))
        assert reloaded.loaded == 1
        assert reloaded.get("fast", LIB, signature) == 42.5

    def test_put_is_idempotent(self, tmp_path):
        cache = SynthesisDiskCache(str(tmp_path))
        cache.put("fast", LIB, (2, 9), 1.0)
        cache.put("fast", LIB, (2, 9), 1.0)
        # Appends land in this process's private segment file.
        with open(cache.segment_path, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 1

    def test_concurrent_writer_segments_merge_on_load(self, tmp_path):
        # Two "processes" (distinct segment files) write disjoint entries;
        # a fresh load sees the union, and neither writer can tear the
        # other's lines because they never share an append target.
        writer_a = SynthesisDiskCache(str(tmp_path))
        writer_b = SynthesisDiskCache(str(tmp_path))
        writer_b.segment_path = str(tmp_path / "synthesis_cache.99999.jsonl")
        writer_a.put("fast", LIB, (2, 1), 1.0)
        writer_b.put("fast", LIB, (2, 2), 2.0)
        writer_a.put("fast", LIB, (2, 3), 3.0)
        merged = SynthesisDiskCache(str(tmp_path))
        assert merged.loaded == 3
        for signature, area in [((2, 1), 1.0), ((2, 2), 2.0), ((2, 3), 3.0)]:
            assert merged.get("fast", LIB, signature) == area

    def test_corrupting_writer_damages_only_its_own_line(self, tmp_path):
        # Regression: a writer crashing mid-append tears only the final
        # line of *its own* segment — every earlier entry and everything a
        # concurrent sibling wrote must survive the reload.
        victim = SynthesisDiskCache(str(tmp_path))
        sibling = SynthesisDiskCache(str(tmp_path))
        sibling.segment_path = str(tmp_path / "synthesis_cache.99998.jsonl")
        victim.put("fast", LIB, (2, 1), 1.0)
        sibling.put("fast", LIB, (2, 2), 2.0)
        victim.put("fast", LIB, (2, 3), 3.0)
        # Torn write: the victim dies mid-append of its last line.
        with open(victim.segment_path, "r+", encoding="utf-8") as handle:
            text = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        merged = SynthesisDiskCache(str(tmp_path))
        assert merged.loaded == 2
        assert merged.get("fast", LIB, (2, 1)) == 1.0
        assert merged.get("fast", LIB, (2, 2)) == 2.0
        assert merged.get("fast", LIB, (2, 3)) is None  # the torn entry

    def test_corrupt_and_alien_lines_skipped(self, tmp_path):
        path = tmp_path / SynthesisDiskCache.FILENAME
        lines = [
            json.dumps({"effort": "fast", "library": LIB, "signature": [2, 5],
                        "area": 3.0}),
            "{torn line",
            json.dumps({"unrelated": True}),
            "",
            json.dumps({"effort": "fast", "signature": [2, 6], "area": 4.0}),
            json.dumps({"effort": "fast", "library": LIB, "signature": [2, 6],
                        "area": 4.0}),
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        cache = SynthesisDiskCache(str(tmp_path))
        # The library-less line predates the key format and is skipped too.
        assert cache.loaded == 2
        assert cache.get("fast", LIB, (2, 5)) == 3.0
        assert cache.get("fast", LIB, (2, 6)) == 4.0

    def test_library_fingerprint_is_stable_and_discriminating(self, library):
        from repro.netlist.library import CellLibrary

        fingerprint = library_fingerprint(library)
        assert fingerprint == library_fingerprint(library)
        # Dropping a cell changes the synthesis-relevant content.
        smaller = CellLibrary("sub", library.cells()[:-1])
        assert library_fingerprint(smaller) != fingerprint

    def test_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        assert SynthesisDiskCache.from_environment() is None
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "sub"))
        cache = SynthesisDiskCache.from_environment()
        assert cache is not None
        assert (tmp_path / "sub").is_dir()


class TestProblemIntegration:
    def test_second_problem_reads_through(self, tmp_path, two_sboxes, rng):
        cache = SynthesisDiskCache(str(tmp_path))
        problem = PinAssignmentProblem(two_sboxes, disk_cache=cache)
        genotype = problem.random_genotype(rng)
        area = problem.evaluate(genotype)
        assert problem.cache_stats()["evaluations"] == 1
        assert problem.cache_stats()["disk_hits"] == 0

        fresh = PinAssignmentProblem(
            two_sboxes, disk_cache=SynthesisDiskCache(str(tmp_path))
        )
        assert fresh.evaluate(genotype) == area
        stats = fresh.cache_stats()
        assert stats["evaluations"] == 0
        assert stats["disk_hits"] == 1

    def test_optimize_results_identical_with_cache(self, tmp_path, two_sboxes, monkeypatch):
        parameters = GAParameters(population_size=4, generations=2, seed=3)
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        baseline = optimize_pin_assignment(two_sboxes, parameters=parameters)
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        cold = optimize_pin_assignment(two_sboxes, parameters=parameters)
        warm = optimize_pin_assignment(two_sboxes, parameters=parameters)
        assert cold.best_area == warm.best_area == baseline.best_area
        assert (
            cold.best_assignment.to_genotype()
            == warm.best_assignment.to_genotype()
            == baseline.best_assignment.to_genotype()
        )
        assert warm.cache_stats["disk_hits"] > 0
        assert warm.cache_stats["evaluations"] == 0

"""Unit tests for the generic GA engine, using cheap synthetic fitness."""

import random

import pytest

from repro.ga import GAParameters, GeneticAlgorithm
from repro.ga.operators import SegmentedPermutationSpace


def make_sorting_problem(size=8):
    """Fitness = number of out-of-place genes; optimum is the identity."""
    space = SegmentedPermutationSpace([size])

    def sample(rng):
        return space.random_genotype(rng)

    def evaluate(genotype):
        return float(sum(1 for index, gene in enumerate(genotype) if gene != index))

    def crossover(a, b, rng):
        return space.crossover(a, b, rng)

    def mutate(genotype, rng):
        return space.mutate(genotype, rng)

    return space, sample, evaluate, crossover, mutate


class TestParameters:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"generations": 0},
            {"crossover_probability": 1.5},
            {"mutation_probability": -0.1},
            {"tournament_size": 0},
            {"elite_count": 30},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            GAParameters(**kwargs)


class TestEngine:
    def test_reaches_good_solution_on_sorting_problem(self):
        space, sample, evaluate, crossover, mutate = make_sorting_problem()
        engine = GeneticAlgorithm(
            sample, evaluate, crossover, mutate,
            parameters=GAParameters(population_size=20, generations=30, seed=3),
        )
        result = engine.run()
        assert result.best_fitness <= 2.0
        assert space.validate(result.best_genotype)

    def test_determinism_with_same_seed(self):
        _, sample, evaluate, crossover, mutate = make_sorting_problem()
        params = GAParameters(population_size=10, generations=10, seed=42)
        first = GeneticAlgorithm(sample, evaluate, crossover, mutate, parameters=params).run()
        second = GeneticAlgorithm(sample, evaluate, crossover, mutate, parameters=params).run()
        assert first.best_genotype == second.best_genotype
        assert first.best_fitness == second.best_fitness
        assert [s.best for s in first.history] == [s.best for s in second.history]

    def test_best_so_far_is_monotone(self):
        _, sample, evaluate, crossover, mutate = make_sorting_problem()
        result = GeneticAlgorithm(
            sample, evaluate, crossover, mutate,
            parameters=GAParameters(population_size=8, generations=15, seed=7),
        ).run()
        best_series = [stats.best_so_far for stats in result.history]
        assert all(later <= earlier for earlier, later in zip(best_series, best_series[1:]))
        assert result.best_fitness == best_series[-1]

    def test_history_length_and_generations(self):
        _, sample, evaluate, crossover, mutate = make_sorting_problem()
        result = GeneticAlgorithm(
            sample, evaluate, crossover, mutate,
            parameters=GAParameters(population_size=6, generations=5, seed=1),
        ).run()
        assert result.generations == 6  # generation 0 plus 5 evolved generations
        assert result.history[0].generation == 0
        assert result.history[-1].generation == 5

    def test_fitness_cache_limits_evaluations(self):
        calls = []
        _, sample, _, crossover, mutate = make_sorting_problem(4)

        def counting_evaluate(genotype):
            calls.append(tuple(genotype))
            return float(sum(genotype))

        engine = GeneticAlgorithm(
            sample, counting_evaluate, crossover, mutate,
            parameters=GAParameters(population_size=10, generations=20, seed=5),
        )
        result = engine.run()
        # Every *distinct* genotype is evaluated exactly once.
        assert len(calls) == len(set(calls))
        assert result.evaluations == len(calls)

    def test_initial_population_seeding(self):
        _, sample, evaluate, crossover, mutate = make_sorting_problem(6)
        identity = list(range(6))
        result = GeneticAlgorithm(
            sample, evaluate, crossover, mutate,
            parameters=GAParameters(population_size=6, generations=2, seed=9),
        ).run(initial_population=[identity])
        # Seeding with the optimum means the GA can never do worse.
        assert result.best_fitness == 0.0
        assert result.best_genotype == identity

    def test_progress_callback(self):
        _, sample, evaluate, crossover, mutate = make_sorting_problem(5)
        seen = []
        GeneticAlgorithm(
            sample, evaluate, crossover, mutate,
            parameters=GAParameters(population_size=5, generations=3, seed=2),
        ).run(progress=seen.append)
        assert [stats.generation for stats in seen] == [0, 1, 2, 3]

    def test_hall_of_fame_sorted_and_bounded(self):
        _, sample, evaluate, crossover, mutate = make_sorting_problem(6)
        result = GeneticAlgorithm(
            sample, evaluate, crossover, mutate,
            parameters=GAParameters(population_size=10, generations=10, seed=13),
            hall_of_fame_size=3,
        ).run()
        fitnesses = [fitness for _, fitness in result.hall_of_fame]
        assert len(result.hall_of_fame) <= 3
        assert fitnesses == sorted(fitnesses)
        assert fitnesses[0] == result.best_fitness

"""Tests for the shared synthesis disk cache and the worker-pool warm-up."""

import os

from repro.ga.pinopt import (
    CACHE_DIR_ENV_VAR,
    PinAssignmentProblem,
    SynthesisDiskCache,
    warm_disk_cache,
)
from repro.parallel import WorkerPool, parallel_map, worker_warmups


class TestSharedDiskCache:
    def test_shared_returns_one_instance_per_directory(self, tmp_path):
        first = SynthesisDiskCache.shared(str(tmp_path))
        second = SynthesisDiskCache.shared(str(tmp_path))
        assert first is second
        other = SynthesisDiskCache.shared(str(tmp_path / "other"))
        assert other is not first

    def test_from_environment_is_shared(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        first = SynthesisDiskCache.from_environment()
        second = SynthesisDiskCache.from_environment()
        assert first is second

    def test_warm_disk_cache_is_registered(self):
        assert warm_disk_cache in worker_warmups()

    def test_warm_disk_cache_primes_the_shared_slot(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        cache = warm_disk_cache()
        assert cache is SynthesisDiskCache.from_environment()

    def test_warm_disk_cache_without_env(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        assert warm_disk_cache() is None

    def test_per_problem_hit_counters_are_deltas(
        self, tmp_path, two_sboxes, rng, monkeypatch
    ):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        first = PinAssignmentProblem(two_sboxes)
        genotype = first.random_genotype(rng)
        first.evaluate(genotype)
        assert first.cache_stats()["disk_hits"] == 0

        # A second problem over the SAME shared cache instance hits once —
        # and reports exactly its own hit, not the shared cumulative count.
        second = PinAssignmentProblem(two_sboxes)
        assert second.disk_cache is first.disk_cache
        second.evaluate(genotype)
        assert second.cache_stats()["disk_hits"] == 1
        assert second.cache_stats()["evaluations"] == 0
        # A problem constructed after that traffic starts from zero again.
        third = PinAssignmentProblem(two_sboxes)
        assert third.cache_stats()["disk_hits"] == 0


def _square(value):
    return value * value


def _boom():
    raise RuntimeError("warm-up failure must not kill the pool")


class TestWarmupHook:
    def test_warmups_run_in_workers(self, tmp_path, monkeypatch):
        """A pool spawn primes the cache in every worker without failing."""
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        results = parallel_map(_square, list(range(8)), jobs=2)
        assert results == [value * value for value in range(8)]

    def test_failing_warmup_is_swallowed(self, monkeypatch):
        from repro import parallel

        monkeypatch.setattr(parallel, "_WORKER_WARMUPS", [_boom])
        with WorkerPool(_square, jobs=2) as pool:
            assert pool.map([1, 2, 3]) == [1, 4, 9]

"""Unit tests for the permutation genetic operators."""

import random

import pytest

from repro.ga import (
    SegmentedPermutationSpace,
    order_crossover,
    pmx_crossover,
    shuffle_mutation,
    swap_mutation,
)


def is_permutation(values):
    return sorted(values) == list(range(len(values)))


class TestCrossovers:
    @pytest.mark.parametrize("crossover", [pmx_crossover, order_crossover])
    def test_children_are_permutations(self, crossover):
        rng = random.Random(3)
        for _ in range(50):
            size = rng.randint(2, 10)
            parent_a = list(range(size))
            parent_b = list(range(size))
            rng.shuffle(parent_a)
            rng.shuffle(parent_b)
            child_a, child_b = crossover(parent_a, parent_b, rng)
            assert is_permutation(child_a)
            assert is_permutation(child_b)

    @pytest.mark.parametrize("crossover", [pmx_crossover, order_crossover])
    def test_identical_parents_give_identical_children(self, crossover):
        rng = random.Random(1)
        parent = [3, 1, 0, 2, 4]
        child_a, child_b = crossover(parent, parent, rng)
        assert child_a == parent
        assert child_b == parent

    @pytest.mark.parametrize("crossover", [pmx_crossover, order_crossover])
    def test_length_mismatch_rejected(self, crossover):
        with pytest.raises(ValueError):
            crossover([0, 1], [0, 1, 2], random.Random(0))

    def test_single_gene_segments(self):
        rng = random.Random(0)
        assert pmx_crossover([0], [0], rng) == ([0], [0])
        assert order_crossover([0], [0], rng) == ([0], [0])


class TestMutations:
    def test_swap_mutation_preserves_permutation(self):
        rng = random.Random(7)
        for _ in range(30):
            permutation = list(range(8))
            rng.shuffle(permutation)
            mutated = swap_mutation(permutation, rng, swaps=2)
            assert is_permutation(mutated)

    def test_swap_mutation_changes_something(self):
        rng = random.Random(7)
        assert swap_mutation(list(range(6)), rng) != list(range(6))

    def test_shuffle_mutation_preserves_permutation(self):
        rng = random.Random(9)
        for _ in range(30):
            mutated = shuffle_mutation(list(range(7)), rng, probability=1.0)
            assert is_permutation(mutated)

    def test_shuffle_mutation_respects_probability_zero(self):
        rng = random.Random(9)
        assert shuffle_mutation(list(range(7)), rng, probability=0.0) == list(range(7))

    def test_tiny_inputs(self):
        rng = random.Random(0)
        assert swap_mutation([0], rng) == [0]
        assert shuffle_mutation([0], rng) == [0]


class TestSegmentedSpace:
    def test_split_join_roundtrip(self):
        space = SegmentedPermutationSpace([4, 4, 2])
        genotype = [0, 1, 2, 3, 3, 2, 1, 0, 1, 0]
        assert space.join(space.split(genotype)) == genotype

    def test_validate(self):
        space = SegmentedPermutationSpace([3, 2])
        assert space.validate([0, 1, 2, 1, 0])
        assert not space.validate([0, 1, 1, 1, 0])
        assert not space.validate([0, 1, 2, 1])

    def test_random_and_identity(self):
        space = SegmentedPermutationSpace([4, 3])
        rng = random.Random(5)
        for _ in range(20):
            assert space.validate(space.random_genotype(rng))
        assert space.identity_genotype() == [0, 1, 2, 3, 0, 1, 2]

    def test_crossover_and_mutate_preserve_validity(self):
        space = SegmentedPermutationSpace([4, 4, 4, 4])
        rng = random.Random(11)
        parent_a = space.random_genotype(rng)
        parent_b = space.random_genotype(rng)
        for method in ("pmx", "order"):
            child_a, child_b = space.crossover(parent_a, parent_b, rng, method=method)
            assert space.validate(child_a)
            assert space.validate(child_b)
        for _ in range(10):
            assert space.validate(space.mutate(parent_a, rng))

    def test_unknown_crossover_rejected(self):
        space = SegmentedPermutationSpace([3])
        with pytest.raises(ValueError):
            space.crossover([0, 1, 2], [2, 1, 0], random.Random(0), method="uniform")

    def test_bad_segment_sizes(self):
        with pytest.raises(ValueError):
            SegmentedPermutationSpace([])
        with pytest.raises(ValueError):
            SegmentedPermutationSpace([0, 2])

    def test_split_length_check(self):
        space = SegmentedPermutationSpace([2, 2])
        with pytest.raises(ValueError):
            space.split([0, 1, 0])

"""Tests for synthesis-cache segment compaction (`repro cache compact`)."""

import json
import os

import pytest

from repro.cli import main
from repro.ga.pinopt import (
    CACHE_DIR_ENV_VAR,
    SynthesisDiskCache,
    compact_cache_dir,
)


def _segment_line(effort, library, signature, area):
    return (
        json.dumps(
            {
                "effort": effort,
                "library": library,
                "signature": list(signature),
                "area": area,
            }
        )
        + "\n"
    )


def _write_segment(directory, name, lines):
    path = directory / name
    path.write_text("".join(lines), encoding="utf-8")
    return path


class TestCompactCacheDir:
    def test_segments_merge_into_one_deduplicated_file(self, tmp_path):
        """Per-pid segments and the legacy file fold into one clean file."""
        _write_segment(
            tmp_path,
            "synthesis_cache.jsonl",  # legacy shared file
            [_segment_line("fast", "lib", (1,), 10.0)],
        )
        _write_segment(
            tmp_path,
            "synthesis_cache.111.jsonl",
            [
                _segment_line("fast", "lib", (1,), 10.0),  # duplicate key
                _segment_line("fast", "lib", (2,), 20.0),
            ],
        )
        _write_segment(
            tmp_path,
            "synthesis_cache.222.jsonl",
            [_segment_line("best", "lib", (3,), 30.0)],
        )
        stats = compact_cache_dir(str(tmp_path))
        assert stats == {
            "entries": 3,
            "files_merged": 3,
            "segments_removed": 2,
        }
        remaining = sorted(
            name
            for name in os.listdir(tmp_path)
            if name.startswith("synthesis_cache")
        )
        assert remaining == ["synthesis_cache.jsonl"]
        reloaded = SynthesisDiskCache(str(tmp_path))
        assert reloaded.loaded == 3
        assert reloaded.get("fast", "lib", (1,)) == 10.0
        assert reloaded.get("fast", "lib", (2,)) == 20.0
        assert reloaded.get("best", "lib", (3,)) == 30.0

    def test_compaction_skips_torn_lines(self, tmp_path):
        _write_segment(
            tmp_path,
            "synthesis_cache.111.jsonl",
            [
                _segment_line("fast", "lib", (1,), 10.0),
                '{"effort": "fast", "library": "lib", "signa',  # torn
            ],
        )
        stats = compact_cache_dir(str(tmp_path))
        assert stats["entries"] == 1
        assert SynthesisDiskCache(str(tmp_path)).loaded == 1

    def test_compacting_an_empty_directory_is_harmless(self, tmp_path):
        stats = compact_cache_dir(str(tmp_path))
        assert stats == {"entries": 0, "files_merged": 0, "segments_removed": 0}
        assert SynthesisDiskCache(str(tmp_path)).loaded == 0

    def test_own_process_appends_survive_compaction(self, tmp_path):
        """A writer's put, then compaction, then more puts: nothing lost.

        The writer appends to its own per-pid segment; compaction merges
        and removes it, and the writer's next append recreates it — reload
        sees every entry exactly once.
        """
        writer = SynthesisDiskCache(str(tmp_path))
        writer.put("fast", "lib", (1,), 1.0)
        compact_cache_dir(str(tmp_path))
        writer.put("fast", "lib", (2,), 2.0)
        reloaded = SynthesisDiskCache(str(tmp_path))
        assert reloaded.loaded == 2
        assert reloaded.get("fast", "lib", (1,)) == 1.0
        assert reloaded.get("fast", "lib", (2,)) == 2.0


class TestCacheCompactCli:
    def test_compact_via_dir_flag(self, tmp_path, capsys):
        _write_segment(
            tmp_path,
            "synthesis_cache.111.jsonl",
            [_segment_line("fast", "lib", (1,), 10.0)],
        )
        assert main(["cache", "compact", "--dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "compacted" in output
        assert "1 entries" in output

    def test_compact_uses_environment_directory(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        _write_segment(
            tmp_path,
            "synthesis_cache.222.jsonl",
            [_segment_line("fast", "lib", (9,), 9.0)],
        )
        assert main(["cache", "compact"]) == 0
        assert "1 entries" in capsys.readouterr().out

    def test_compact_without_directory_is_a_clean_error(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        with pytest.raises(SystemExit) as info:
            main(["cache", "compact"])
        assert "no cache directory" in str(info.value)

    def test_compact_missing_directory_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit) as info:
            main(["cache", "compact", "--dir", str(tmp_path / "nope")])
        assert "does not exist" in str(info.value)

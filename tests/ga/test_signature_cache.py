"""Canonical-signature synthesis cache: pin-assignment symmetries that merge
to the same circuit must never re-synthesize, and a cached area must equal a
fresh synthesis of the permuted genotype."""

from __future__ import annotations

import pytest

from repro.ga.pinopt import PinAssignmentProblem
from repro.logic.boolfunc import BoolFunction
from repro.logic.truthtable import TruthTable


def _symmetric_pair():
    """Function 1 (OR) is input-symmetric, so swapping its input pins yields
    the same merged circuit under a different genotype."""
    f_and = BoolFunction([TruthTable(2, 0b1000)], name="and2")
    f_or = BoolFunction([TruthTable(2, 0b1110)], name="or2")
    return [f_and, f_or]


@pytest.fixture
def problem():
    return PinAssignmentProblem(_symmetric_pair(), effort="fast")


# Genotype layout: input perms of f0 and f1, then output perms of f0 and f1.
IDENTITY = [0, 1, 0, 1, 0, 0]
SWAPPED_F1_INPUTS = [0, 1, 1, 0, 0, 0]


class TestCanonicalSignature:
    def test_symmetric_permutation_shares_signature(self, problem):
        assert problem.canonical_signature(IDENTITY) == problem.canonical_signature(
            SWAPPED_F1_INPUTS
        )

    def test_asymmetric_function_changes_signature(self, problem):
        # Swapping the input pins of an asymmetric function (implication)
        # yields a genuinely different merged circuit, so the signatures
        # must differ.
        f_impl = BoolFunction([TruthTable(2, 0b1011)], name="impl")  # a <= b
        f_or = BoolFunction([TruthTable(2, 0b1110)], name="or2")
        asymmetric = PinAssignmentProblem([f_or, f_impl], effort="fast")
        assert asymmetric.canonical_signature(
            IDENTITY
        ) != asymmetric.canonical_signature(SWAPPED_F1_INPUTS)

    def test_equivalent_genotype_never_resynthesizes(self, problem):
        first = problem.evaluate(IDENTITY)
        assert problem.evaluations == 1
        second = problem.evaluate(SWAPPED_F1_INPUTS)
        assert problem.evaluations == 1, "permuted-equivalent genotype re-synthesized"
        assert problem.signature_hits == 1
        assert first == second

    def test_cached_area_matches_fresh_synthesis(self, problem):
        problem.evaluate(IDENTITY)
        cached = problem.evaluate(SWAPPED_F1_INPUTS)
        fresh = problem.synthesize_genotype(SWAPPED_F1_INPUTS).area
        assert cached == fresh

    def test_genotype_cache_counts_repeats(self, problem):
        problem.evaluate(IDENTITY)
        problem.evaluate(IDENTITY)
        stats = problem.cache_stats()
        assert stats["genotype_hits"] == 1
        assert stats["evaluations"] == 1

    def test_cache_stats_shape(self, problem):
        problem.evaluate(IDENTITY)
        stats = problem.cache_stats()
        assert set(stats) == {
            "evaluations",
            "genotype_hits",
            "signature_hits",
            "genotype_entries",
            "signature_entries",
        }

"""Unit tests for Phase II: pin-assignment optimisation and random search."""

import random

import pytest

from repro.ga import (
    GAParameters,
    PinAssignmentProblem,
    optimize_pin_assignment,
    random_pin_search,
)
from repro.merge import merge_functions
from repro.synth import synthesize


class TestPinAssignmentProblem:
    def test_genotype_conversions(self, two_sboxes):
        problem = PinAssignmentProblem(two_sboxes)
        rng = random.Random(1)
        genotype = problem.random_genotype(rng)
        assert problem.space.validate(genotype)
        assignment = problem.assignment_from_genotype(genotype)
        assert assignment.num_functions == 2

    def test_first_function_pinned(self, two_sboxes):
        problem = PinAssignmentProblem(two_sboxes, fix_first_function=True)
        rng = random.Random(2)
        for _ in range(5):
            genotype = problem.random_genotype(rng)
            assignment = problem.assignment_from_genotype(genotype)
            assert assignment.input_perms[0] == tuple(range(4))
            assert assignment.output_perms[0] == tuple(range(4))
            mutated = problem.mutate(genotype, rng)
            assert problem.assignment_from_genotype(mutated).input_perms[0] == tuple(range(4))

    def test_unpinned_mode(self, two_sboxes):
        problem = PinAssignmentProblem(two_sboxes, fix_first_function=False)
        rng = random.Random(3)
        seen_non_identity = any(
            problem.assignment_from_genotype(problem.random_genotype(rng)).input_perms[0]
            != tuple(range(4))
            for _ in range(10)
        )
        assert seen_non_identity

    def test_evaluate_matches_direct_synthesis(self, two_sboxes, library):
        problem = PinAssignmentProblem(two_sboxes, library=library, effort="fast")
        genotype = problem.space.identity_genotype()
        area = problem.evaluate(genotype)
        design = merge_functions(two_sboxes)
        direct = synthesize(design.function, library=library, effort="fast").area
        assert area == pytest.approx(direct)

    def test_evaluate_is_cached(self, two_sboxes):
        problem = PinAssignmentProblem(two_sboxes, effort="fast")
        genotype = problem.space.identity_genotype()
        problem.evaluate(genotype)
        problem.evaluate(genotype)
        assert problem.evaluations == 1

    def test_shape_validation(self, two_sboxes, des_pair):
        with pytest.raises(ValueError):
            PinAssignmentProblem([two_sboxes[0], des_pair[0]])
        with pytest.raises(ValueError):
            PinAssignmentProblem([])


class TestOptimizePinAssignment:
    def test_small_run_improves_over_identity(self, two_sboxes):
        result = optimize_pin_assignment(
            two_sboxes,
            parameters=GAParameters(population_size=4, generations=2, seed=1),
            effort="fast",
            final_effort="fast",
        )
        identity_area = PinAssignmentProblem(two_sboxes, effort="fast").evaluate(
            PinAssignmentProblem(two_sboxes).space.identity_genotype()
        )
        # The GA seeds the identity assignment, so it can never end up worse.
        assert result.best_area <= identity_area + 1e-9
        assert result.evaluations >= 4
        assert len(result.history) == 3

    def test_result_contains_consistent_design(self, two_sboxes):
        result = optimize_pin_assignment(
            two_sboxes,
            parameters=GAParameters(population_size=4, generations=1, seed=2),
            effort="fast",
            final_effort="fast",
        )
        assert result.merged_design.assignment == result.best_assignment
        assert result.synthesis.netlist.num_instances() > 0


class TestRandomSearch:
    def test_statistics_are_consistent(self, two_sboxes):
        result = random_pin_search(two_sboxes, num_samples=6, seed=3, effort="fast")
        assert len(result.areas) == 6
        assert result.best_area == min(result.areas)
        assert result.worst_area == max(result.areas)
        assert result.best_area <= result.average_area <= result.worst_area
        assert result.evaluations == 6

    def test_histogram_covers_all_samples(self, two_sboxes):
        result = random_pin_search(two_sboxes, num_samples=8, seed=4, effort="fast")
        histogram = result.histogram(bin_width=10.0)
        assert sum(count for _, count in histogram) == 8

    def test_include_identity(self, two_sboxes, library):
        result = random_pin_search(
            two_sboxes, num_samples=3, seed=5, effort="fast", include_identity=True
        )
        design = merge_functions(two_sboxes)
        identity_area = synthesize(design.function, library=library, effort="fast").area
        assert any(abs(area - identity_area) < 1e-9 for area in result.areas)

    def test_invalid_sample_count(self, two_sboxes):
        with pytest.raises(ValueError):
            random_pin_search(two_sboxes, num_samples=0)

    def test_shared_problem_reuses_cache(self, two_sboxes):
        problem = PinAssignmentProblem(two_sboxes, effort="fast")
        first = random_pin_search(two_sboxes, num_samples=4, seed=6, problem=problem)
        evaluations_after_first = problem.evaluations
        random_pin_search(two_sboxes, num_samples=4, seed=6, problem=problem)
        # Same seed and same problem: every genotype is already cached.
        assert problem.evaluations == evaluations_after_first
        assert first.evaluations == 4

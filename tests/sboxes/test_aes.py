"""Unit tests for the AES-style 8-bit S-box family."""

import pytest

from repro.sboxes.aes import (
    AES_VARIANT_CONSTANTS,
    NUM_AES_SBOXES,
    aes_sbox,
    aes_sbox_inverse,
    aes_sbox_lookup,
    aes_sboxes,
    gf256_inverse_table,
    gf256_multiply,
)


class TestFieldArithmetic:
    def test_multiplication_examples(self):
        # FIPS 197 worked example: {57} x {83} = {c1}.
        assert gf256_multiply(0x57, 0x83) == 0xC1
        assert gf256_multiply(0x57, 0x13) == 0xFE

    def test_inverse_table_is_involutive(self):
        inverse = gf256_inverse_table()
        assert inverse[0] == 0
        for value in range(1, 256):
            assert gf256_multiply(value, inverse[value]) == 1
            assert inverse[inverse[value]] == value


class TestCanonicalSbox:
    def test_pinned_fips197_entries(self):
        table = aes_sbox_lookup(0)
        # First row of the published AES S-box table.
        assert table[:16] == [
            0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5,
            0x30, 0x01, 0x67, 0x2B, 0xFE, 0xD7, 0xAB, 0x76,
        ]
        assert table[0x53] == 0xED
        assert table[0xFF] == 0x16

    def test_inverse_round_trips(self):
        forward = aes_sbox_lookup(0)
        backward = aes_sbox_inverse().lookup_table()
        assert all(backward[forward[x]] == x for x in range(256))

    def test_no_fixed_points(self):
        # The AES S-box has no fixed or anti-fixed points.
        table = aes_sbox_lookup(0)
        assert all(table[x] != x for x in range(256))
        assert all(table[x] != x ^ 0xFF for x in range(256))


class TestVariantFamily:
    def test_variants_are_distinct_permutations(self):
        functions = aes_sboxes(NUM_AES_SBOXES)
        assert len(functions) == NUM_AES_SBOXES == len(set(AES_VARIANT_CONSTANTS))
        tables = [tuple(f.lookup_table()) for f in functions]
        assert len(set(tables)) == NUM_AES_SBOXES
        assert all(f.is_permutation() for f in functions)
        assert all(f.num_inputs == 8 and f.num_outputs == 8 for f in functions)

    def test_variants_share_the_inversion_core(self):
        # Two variants differ exactly by the XOR of their affine constants.
        base = aes_sbox_lookup(0)
        other = aes_sbox_lookup(1)
        delta = AES_VARIANT_CONSTANTS[0] ^ AES_VARIANT_CONSTANTS[1]
        assert all(other[x] == base[x] ^ delta for x in range(256))

    def test_count_validation(self):
        with pytest.raises(ValueError):
            aes_sboxes(0)
        with pytest.raises(ValueError):
            aes_sboxes(NUM_AES_SBOXES + 1)
        with pytest.raises(IndexError):
            aes_sbox(NUM_AES_SBOXES)

"""Unit tests for the S-box workload data."""

import pytest

from repro.logic import differential_uniformity, is_optimal_4bit_sbox, linearity
from repro.sboxes import (
    DES_SBOX_ROWS,
    NUM_DES_SBOXES,
    PRESENT_SBOX,
    des_sbox,
    des_sbox_lookup,
    des_sboxes,
    find_optimal_sboxes,
    optimal_sbox,
    optimal_sbox_tables,
    optimal_sboxes,
    present_sbox,
    present_sbox_inverse,
)


class TestPresent:
    def test_lookup_table_value(self):
        assert PRESENT_SBOX[0] == 0xC
        assert PRESENT_SBOX[0xF] == 0x2
        assert sorted(PRESENT_SBOX) == list(range(16))

    def test_function_wrapper(self):
        function = present_sbox()
        assert function.num_inputs == 4
        assert function.num_outputs == 4
        assert function.lookup_table() == PRESENT_SBOX

    def test_inverse(self):
        forward = present_sbox()
        inverse = present_sbox_inverse()
        for word in range(16):
            assert inverse.evaluate_word(forward.evaluate_word(word)) == word

    def test_is_optimal(self):
        assert is_optimal_4bit_sbox(PRESENT_SBOX)


class TestOptimalSet:
    def test_sixteen_distinct_optimal_sboxes(self):
        tables = optimal_sbox_tables()
        assert len(tables) == 16
        assert len({tuple(table) for table in tables}) == 16
        for table in tables:
            assert is_optimal_4bit_sbox(table)

    def test_first_is_present(self):
        assert optimal_sbox_tables()[0] == PRESENT_SBOX
        assert optimal_sbox(0).lookup_table() == PRESENT_SBOX

    def test_optimal_sboxes_counts(self):
        assert len(optimal_sboxes(2)) == 2
        assert len(optimal_sboxes(16)) == 16
        with pytest.raises(ValueError):
            optimal_sboxes(0)
        with pytest.raises(ValueError):
            optimal_sboxes(17)
        with pytest.raises(IndexError):
            optimal_sbox(16)

    def test_generator_is_deterministic(self):
        first = find_optimal_sboxes(3, seed=77)
        second = find_optimal_sboxes(3, seed=77)
        assert first == second
        for table in first:
            assert is_optimal_4bit_sbox(table)

    def test_generator_respects_exclusions(self):
        excluded = find_optimal_sboxes(2, seed=5)
        more = find_optimal_sboxes(2, seed=5, exclude=excluded)
        assert not set(map(tuple, more)) & set(map(tuple, excluded))


class TestDes:
    def test_every_row_is_a_permutation(self):
        assert len(DES_SBOX_ROWS) == NUM_DES_SBOXES
        for box in DES_SBOX_ROWS:
            assert len(box) == 4
            for row in box:
                assert sorted(row) == list(range(16))

    def test_lookup_convention(self):
        # Input 0b000000: row 0, column 0 -> S1[0][0] = 14.
        table = des_sbox_lookup(0)
        assert table[0] == 14
        # Input 0b111111: row 3, column 15 -> S1[3][15] = 13.
        assert table[63] == 13
        # Input 0b000001: outer bits 0,1 -> row 1, column 0 -> 0.
        assert table[1] == DES_SBOX_ROWS[0][1][0]
        # Input 0b100000: outer bits 1,0 -> row 2, column 0.
        assert table[0b100000] == DES_SBOX_ROWS[0][2][0]

    def test_function_wrappers(self):
        functions = des_sboxes()
        assert len(functions) == 8
        for index, function in enumerate(functions):
            assert function.num_inputs == 6
            assert function.num_outputs == 4
            assert function.lookup_table() == des_sbox_lookup(index)

    def test_des_sboxes_are_balanced(self):
        # Each output value appears exactly 4 times per S-box (design criterion).
        for index in range(NUM_DES_SBOXES):
            table = des_sbox_lookup(index)
            for value in range(16):
                assert table.count(value) == 4

    def test_des_cryptographic_measures(self):
        # Known properties of the real DES S-boxes: the maximum DDT entry of
        # every box is 16, and S5 exhibits the famous linearity of 40
        # (Matsui's bias of 20/64).
        for index in range(NUM_DES_SBOXES):
            table = des_sbox_lookup(index)
            assert differential_uniformity(table, 6, 4) == 16
            assert linearity(table, 6, 4) <= 40
        assert linearity(des_sbox_lookup(4), 6, 4) == 40

    def test_index_validation(self):
        with pytest.raises(IndexError):
            des_sbox_lookup(8)
        with pytest.raises(ValueError):
            des_sboxes(0)
        with pytest.raises(ValueError):
            des_sboxes(9)

"""Tests for the process-pool helpers in :mod:`repro.parallel`."""

from __future__ import annotations

import os
import signal

import pytest

from repro.parallel import (
    JOBS_ENV_VAR,
    WorkerCrashed,
    WorkerPool,
    available_cpus,
    parallel_map,
    resolve_jobs,
)


def _square(value):
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise ValueError("boom")
    return value


def _kill_worker_once(arg):
    """SIGKILL the worker on value 3 — but only the first time (marker)."""
    value, marker = arg
    if value == 3 and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return value * value


def _kill_worker_always(value):
    if value == 3:
        os.kill(os.getpid(), signal.SIGKILL)
    return value * value


class TestResolveJobs:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "8")
        assert resolve_jobs(3) == 3

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "4")
        assert resolve_jobs(None) == 4

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_garbage_environment_is_serial(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        assert resolve_jobs(None) == 1
        monkeypatch.setenv(JOBS_ENV_VAR, "-2")
        assert resolve_jobs(None) == 1

    def test_zero_and_negative_fall_through(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-1) == 1


class TestWorkerPool:
    def test_rejects_non_positive_jobs(self):
        with pytest.raises(ValueError):
            WorkerPool(_square, jobs=0)

    def test_workers_clamped_to_available_cpus(self):
        pool = WorkerPool(_square, jobs=10_000)
        assert pool.jobs == 10_000
        assert pool.workers == min(10_000, available_cpus())
        pool.close()

    def test_oversubscribe_keeps_requested_workers(self):
        pool = WorkerPool(_square, jobs=3, oversubscribe=True)
        assert pool.workers == 3
        pool.close()

    def test_serial_map_preserves_order(self):
        with WorkerPool(_square, jobs=1) as pool:
            assert pool.map([3, 1, 2]) == [9, 1, 4]

    def test_parallel_map_matches_serial(self):
        items = list(range(20))
        serial = [_square(item) for item in items]
        with WorkerPool(_square, jobs=2, oversubscribe=True) as pool:
            assert pool.map(items) == serial

    def test_parallel_map_single_item_stays_inline(self):
        with WorkerPool(_square, jobs=4, oversubscribe=True) as pool:
            assert pool.map([5]) == [25]

    def test_pool_reuse_across_batches(self):
        with WorkerPool(_square, jobs=2, oversubscribe=True) as pool:
            assert pool.map([1, 2, 3]) == [1, 4, 9]
            assert pool.map([4, 5, 6]) == [16, 25, 36]

    def test_close_is_idempotent(self):
        pool = WorkerPool(_square, jobs=2, oversubscribe=True)
        pool.map([1, 2])
        pool.close()
        pool.close()

    def test_task_exception_propagates_without_breaking_pool(self):
        # An error raised by the task function surfaces unchanged (no silent
        # serial re-run of the batch), and the pool stays usable.
        with WorkerPool(_fail_on_three, jobs=2, oversubscribe=True) as pool:
            with pytest.raises(ValueError):
                pool.map([1, 2, 3, 4])
            assert not pool._broken
            assert pool.map([1, 2]) == [1, 2]

    def test_unpicklable_function_degrades_to_serial(self):
        captured = []

        def closure(value):  # closures do not pickle
            captured.append(value)
            return value + 1

        with WorkerPool(closure, jobs=2, oversubscribe=True) as pool:
            assert pool.map([1, 2, 3]) == [2, 3, 4]


class TestWorkerPoolImap:
    def test_streams_in_order(self):
        with WorkerPool(_square, jobs=2, oversubscribe=True) as pool:
            assert list(pool.imap([3, 1, 2])) == [9, 1, 4]

    def test_serial_imap_is_lazy(self):
        executed = []

        def tracked(value):
            executed.append(value)
            return value

        with WorkerPool(tracked, jobs=1) as pool:
            iterator = pool.imap([1, 2, 3])
            assert executed == []
            assert next(iterator) == 1
            # Only the consumed item has run: a consumer can checkpoint
            # between results and abort without executing the tail.
            assert executed == [1]

    def test_matches_map(self):
        items = list(range(15))
        with WorkerPool(_square, jobs=2, oversubscribe=True) as pool:
            assert list(pool.imap(items)) == pool.map(items)

    def test_task_exception_propagates(self):
        with WorkerPool(_fail_on_three, jobs=1) as pool:
            iterator = pool.imap([1, 2, 3, 4])
            assert next(iterator) == 1
            assert next(iterator) == 2
            with pytest.raises(ValueError):
                next(iterator)

    def test_unpicklable_function_degrades_to_serial(self):
        def closure(value):
            return value + 1

        with WorkerPool(closure, jobs=2, oversubscribe=True) as pool:
            assert list(pool.imap([1, 2, 3])) == [2, 3, 4]


class TestWorkerSupervision:
    def test_one_off_crash_recovers_transparently(self, tmp_path):
        # A worker SIGKILLed mid-batch must not take the batch down: the
        # pool respawns, the unfinished items are resubmitted, and the
        # caller sees the full in-order result set.
        marker = str(tmp_path / "killed.marker")
        items = [(value, marker) for value in range(6)]
        with WorkerPool(_kill_worker_once, jobs=2, oversubscribe=True) as pool:
            assert pool.map(items) == [value * value for value in range(6)]
            assert pool.worker_crashes >= 1
            assert pool.pool_restarts >= 1
            # The pool stays usable for the next batch.
            marker2 = str(tmp_path / "unused.marker")
            with open(marker2, "w", encoding="utf-8"):
                pass
            assert pool.map([(7, marker2)] * 2) == [49, 49]

    def test_one_off_crash_recovers_in_imap(self, tmp_path):
        marker = str(tmp_path / "killed.marker")
        items = [(value, marker) for value in range(6)]
        with WorkerPool(_kill_worker_once, jobs=2, oversubscribe=True) as pool:
            streamed = list(pool.imap(items))
        assert streamed == [value * value for value in range(6)]

    def test_persistent_killer_surfaces_worker_crashed(self):
        # An item that kills every worker it touches must surface as
        # WorkerCrashed (with the offending index) instead of an endless
        # respawn loop or a serial re-run that would kill the parent.
        with WorkerPool(_kill_worker_always, jobs=2, oversubscribe=True) as pool:
            with pytest.raises(WorkerCrashed) as excinfo:
                pool.map([3, 1, 2, 4])
        assert excinfo.value.item_index is not None

    def test_restart_budget_is_per_batch(self, tmp_path):
        # A recovered crash in one batch must not eat into the budget of
        # the next: each map/imap call gets a fresh restart allowance.
        for batch in range(3):
            marker = str(tmp_path / f"killed.{batch}.marker")
            items = [(value, marker) for value in range(4)]
            with WorkerPool(_kill_worker_once, jobs=2, oversubscribe=True) as pool:
                assert pool.map(items) == [value * value for value in range(4)]


class TestParallelMap:
    def test_serial_and_parallel_agree(self):
        items = list(range(10))
        assert parallel_map(_square, items, jobs=1) == parallel_map(
            _square, items, jobs=3, oversubscribe=True
        )

    def test_empty_input(self):
        assert parallel_map(_square, [], jobs=2) == []

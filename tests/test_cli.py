"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_obfuscate_defaults(self):
        args = build_parser().parse_args(["obfuscate"])
        assert args.family == "PRESENT"
        assert args.count == 2

    def test_table1_profile_argument(self):
        args = build_parser().parse_args(["table1", "--profile", "quick"])
        assert args.profile == "quick"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_campaign_arguments(self):
        args = build_parser().parse_args(
            ["campaign", "--workload", "AES:2", "--workload", "PRESENT:4",
             "--state-dir", "/tmp/x", "--limit", "1"]
        )
        assert args.workload == ["AES:2", "PRESENT:4"]
        assert args.state_dir == "/tmp/x"
        assert args.limit == 1

    def test_invalid_workload_selector_rejected(self):
        from repro.cli import _parse_workload_selector

        with pytest.raises(SystemExit):
            _parse_workload_selector("AES")
        with pytest.raises(SystemExit):
            _parse_workload_selector("AES:two")
        assert _parse_workload_selector("aes:2") == ("AES", 2)

    def test_campaign_robustness_flags(self):
        from repro.cli import _campaign_robustness_kwargs

        args = build_parser().parse_args(
            ["campaign", "--workload", "PRESENT:2",
             "--lease-ttl", "5", "--retries", "2",
             "--solve-budget", "conflicts=100,seconds=2.5"]
        )
        kwargs = _campaign_robustness_kwargs(args)
        assert kwargs["lease_ttl"] == 5.0
        assert kwargs["retry_policy"].max_attempts == 2
        assert kwargs["solve_budget"].max_conflicts == 100
        assert kwargs["solve_budget"].max_seconds == 2.5
        # Defaults contribute nothing: environment/runner defaults apply.
        bare = build_parser().parse_args(["campaign", "--workload", "PRESENT:2"])
        assert _campaign_robustness_kwargs(bare) == {}

    def test_campaign_bad_solve_budget_is_clean_error(self):
        from repro.cli import _campaign_robustness_kwargs

        args = build_parser().parse_args(
            ["campaign", "--solve-budget", "gremlins=9"]
        )
        with pytest.raises(SystemExit) as info:
            _campaign_robustness_kwargs(args)
        assert "invalid --solve-budget" in str(info.value)


class TestCommands:
    def test_obfuscate_writes_outputs(self, tmp_path, capsys):
        verilog_path = tmp_path / "camo.v"
        blif_path = tmp_path / "camo.blif"
        exit_code = main(
            [
                "obfuscate",
                "--count", "2",
                "--population", "4",
                "--generations", "1",
                "--report",
                "--verilog", str(verilog_path),
                "--blif", str(blif_path),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "camouflaged area" in captured.out
        assert "Area report" in captured.out
        assert verilog_path.exists()
        assert blif_path.exists()
        assert "module" in verilog_path.read_text()
        assert ".model" in blif_path.read_text()

    def test_attack_command(self, capsys):
        exit_code = main(
            ["attack", "--count", "2", "--population", "4", "--generations", "1"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "plausible=True" in captured.out

    def test_campaign_duplicate_workload_is_clean_error(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["campaign", "--workload", "PRESENT:2", "--workload", "PRESENT:2"])
        assert "invalid campaign" in str(info.value)

    def test_campaign_unknown_family_is_clean_error(self):
        with pytest.raises(SystemExit) as info:
            main(["campaign", "--workload", "PRESNT:2"])
        assert "unknown workload family" in str(info.value)

    def test_campaign_count_out_of_range_is_clean_error(self):
        with pytest.raises(SystemExit) as info:
            main(["campaign", "--workload", "PRESENT:99"])
        assert "exceeds the family maximum" in str(info.value)
        with pytest.raises(SystemExit) as info:
            main(["campaign", "--workload", "RANDOM:0"])
        assert "count must be at least 1" in str(info.value)

    def test_campaign_list_workloads(self, capsys):
        assert main(["campaign", "--list-workloads"]) == 0
        captured = capsys.readouterr()
        for family in ("PRESENT", "DES", "AES", "RANDOM", "BLIF"):
            assert family in captured.out

    def test_campaign_command_resumes(self, tmp_path, capsys):
        state_dir = str(tmp_path / "state")
        csv_path = tmp_path / "campaign.csv"
        argv = [
            "campaign",
            "--workload", "PRESENT:2",
            "--population", "4",
            "--generations", "1",
            "--state-dir", state_dir,
            "--csv", str(csv_path),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "1/1 jobs complete" in captured.out
        assert "PRESENT" in captured.out
        assert csv_path.exists()
        # Second invocation restores the finished row from the state dir.
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "cached (state matches)" in captured.out
        assert "1 cached" in captured.out

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_obfuscate_defaults(self):
        args = build_parser().parse_args(["obfuscate"])
        assert args.family == "PRESENT"
        assert args.count == 2

    def test_table1_profile_argument(self):
        args = build_parser().parse_args(["table1", "--profile", "quick"])
        assert args.profile == "quick"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_obfuscate_writes_outputs(self, tmp_path, capsys):
        verilog_path = tmp_path / "camo.v"
        blif_path = tmp_path / "camo.blif"
        exit_code = main(
            [
                "obfuscate",
                "--count", "2",
                "--population", "4",
                "--generations", "1",
                "--report",
                "--verilog", str(verilog_path),
                "--blif", str(blif_path),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "camouflaged area" in captured.out
        assert "Area report" in captured.out
        assert verilog_path.exists()
        assert blif_path.exists()
        assert "module" in verilog_path.read_text()
        assert ".model" in blif_path.read_text()

    def test_attack_command(self, capsys):
        exit_code = main(
            ["attack", "--count", "2", "--population", "4", "--generations", "1"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "plausible=True" in captured.out

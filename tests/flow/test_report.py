"""Unit tests for the Table I style reporting helpers."""

import pytest

from repro.flow import (
    AreaRow,
    SolverStatsRow,
    format_solver_stats,
    format_table,
    improvement_percent,
)


class TestImprovement:
    def test_basic(self):
        assert improvement_percent(100.0, 62.0) == pytest.approx(38.0)
        assert improvement_percent(100.0, 100.0) == pytest.approx(0.0)
        assert improvement_percent(100.0, 120.0) == pytest.approx(-20.0)

    def test_invalid_reference(self):
        with pytest.raises(ValueError):
            improvement_percent(0.0, 1.0)


class TestAreaRow:
    def test_improvement_property(self):
        row = AreaRow("PRESENT", 8, random_avg=205, random_best=164, ga_area=118, ga_tm_area=101)
        assert row.improvement == pytest.approx(100 * (164 - 101) / 164)

    def test_as_dict(self):
        row = AreaRow("DES", 2, 257, 217, 200, 195)
        data = row.as_dict()
        assert data["circuit"] == "DES"
        assert data["num_functions"] == 2
        assert data["improvement_percent"] == pytest.approx(row.improvement)


class TestFormatTable:
    def test_layout(self):
        rows = [
            AreaRow("PRESENT", 2, 54, 42, 41, 39),
            AreaRow("DES", 8, 923, 805, 473, 416),
        ]
        text = format_table(rows, title="Table I")
        lines = text.splitlines()
        assert lines[0] == "Table I"
        assert "Circuit" in lines[1]
        assert len(lines) == 2 + 1 + len(rows)
        assert "PRESENT" in lines[3]
        assert "DES" in lines[4]
        # Improvement column for the DES row: (805-416)/805 = 48%.
        assert lines[4].rstrip().endswith("48")

    def test_without_title(self):
        text = format_table([AreaRow("PRESENT", 2, 54, 42, 41, 39)])
        assert text.splitlines()[0].startswith("Circuit")


class TestSolverStats:
    def test_from_stats_and_as_dict(self):
        stats = {
            "solve_calls": 7,
            "conflicts": 12,
            "decisions": 90,
            "propagations": 640,
            "learned_clauses": 11,
            "num_vars": 55,
        }
        row = SolverStatsRow.from_stats("DIP loop", stats)
        assert row.solve_calls == 7
        assert row.learned_clauses == 11
        data = row.as_dict()
        assert data["label"] == "DIP loop"
        assert data["propagations"] == 640

    def test_from_solver(self):
        from repro.sat import SatSolver

        solver = SatSolver()
        x = solver.new_var()
        solver.add_clause([x])
        solver.solve()
        row = SolverStatsRow.from_stats("unit", solver.stats())
        assert row.solve_calls == 1

    def test_layout(self):
        rows = [
            SolverStatsRow("oracle", 4, 32, 86, 639, 31),
            SolverStatsRow("DIP loop", 5, 0, 12, 99, 0),
        ]
        text = format_solver_stats(rows, title="solver work")
        lines = text.splitlines()
        assert lines[0] == "solver work"
        assert "Workload" in lines[1]
        assert len(lines) == 2 + 1 + len(rows)
        assert lines[3].startswith("oracle")
        assert lines[4].rstrip().endswith("0")

"""Tests for hardness-weighted decoy budget allocation."""

import pytest

from repro.flow.target import decoy_budgets
from repro.netlist.window import Window


def _windows(count):
    return [
        Window(
            index=index,
            instance_names=(f"g{index}",),
            input_nets=(f"i{index}",),
            output_nets=(f"o{index}",),
        )
        for index in range(count)
    ]


class TestDecoyBudgets:
    def test_uniform_without_hardness(self):
        assert decoy_budgets(_windows(4), 2) == {0: 2, 1: 2, 2: 2, 3: 2}

    def test_empty_windows(self):
        assert decoy_budgets([], 3) == {}

    def test_zero_budget_stays_zero(self):
        assert decoy_budgets(_windows(3), 0, {0: 5.0}) == {0: 0, 1: 0, 2: 0}

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            decoy_budgets(_windows(2), -1)

    def test_total_budget_preserved(self):
        windows = _windows(5)
        hardness = {0: 1.0, 1: 50.0, 3: 4.0}
        budgets = decoy_budgets(windows, 2, hardness)
        assert sum(budgets.values()) == 2 * len(windows)
        assert set(budgets) == {w.index for w in windows}

    def test_easy_windows_get_more_decoys(self):
        # Window 1 was cracked cheaply (low hardness) -> more protection
        # than window 0, which already cost the attacker dearly.
        budgets = decoy_budgets(_windows(2), 4, {0: 100.0, 1: 0.0})
        assert budgets[1] > budgets[0]
        assert sum(budgets.values()) == 8

    def test_unmeasured_windows_weigh_as_median(self):
        budgets = decoy_budgets(_windows(3), 3, {0: 10.0, 2: 10.0})
        # Window 1 is unmeasured; with the median equal to every measured
        # score the split collapses back to uniform.
        assert budgets == {0: 3, 1: 3, 2: 3}

    def test_deterministic_tie_break_by_index(self):
        windows = _windows(3)
        hardness = {0: 1.0, 1: 1.0, 2: 1.0}
        first = decoy_budgets(windows, 1, hardness)
        second = decoy_budgets(windows, 1, hardness)
        assert first == second
        assert sum(first.values()) == 3

"""Tests for obfuscation targets and the windowed netlist flow."""

import pytest

from repro.netlist.generate import random_netlist as build_random_netlist
from repro.flow.obfuscate import obfuscate_target
from repro.flow.target import (
    FunctionTarget,
    NetlistTarget,
    decoy_functions,
    obfuscate_netlist,
    obfuscate_window,
)
from repro.ga.engine import GAParameters
from repro.netlist.blif import write_blif
from repro.netlist.simulate import extract_function
from repro.netlist.window import extract_windows, window_function, window_subnetlist


TINY_GA = GAParameters(population_size=4, generations=1, seed=1)


class TestDecoyFunctions:
    def test_distinct_and_shaped(self, present):
        decoys = decoy_functions(present, 3, seed=5)
        assert len(decoys) == 3
        tables = {tuple(t.bits for t in d.outputs) for d in decoys}
        assert len(tables) == 3
        assert tuple(t.bits for t in present.outputs) not in tables
        for decoy in decoys:
            assert decoy.num_inputs == present.num_inputs
            assert decoy.num_outputs == present.num_outputs

    def test_seeded(self, present):
        first = decoy_functions(present, 2, seed=9)
        second = decoy_functions(present, 2, seed=9)
        assert [d.lookup_table() for d in first] == [
            d.lookup_table() for d in second
        ]

    def test_zero_and_negative(self, present):
        assert decoy_functions(present, 0, seed=1) == []
        with pytest.raises(ValueError):
            decoy_functions(present, -1, seed=1)


class TestFunctionTarget:
    def test_dispatch_matches_direct_flow(self, two_sboxes):
        from repro.flow.obfuscate import obfuscate

        direct = obfuscate(
            two_sboxes, ga_parameters=TINY_GA,
            fitness_effort="fast", final_effort="fast",
        )
        target = FunctionTarget(two_sboxes, ga_parameters=TINY_GA)
        via_target = obfuscate_target(
            target, fitness_effort="fast", final_effort="fast"
        )
        assert (
            via_target.assignment.to_genotype() == direct.assignment.to_genotype()
        )
        assert via_target.camouflaged_area == direct.camouflaged_area

    def test_rejects_non_target(self):
        with pytest.raises(TypeError):
            obfuscate_target(object())

    def test_describe(self, two_sboxes):
        assert "2 viable" in FunctionTarget(two_sboxes).describe()


class TestObfuscateWindow:
    def test_true_configuration_realises_window_function(self, library):
        netlist = build_random_netlist(17, library, num_cells=20)
        window = extract_windows(netlist, max_inputs=5)[0]
        sub = window_subnetlist(netlist, window)
        record = obfuscate_window(
            sub, window, decoys=1, seed=4, ga_parameters=TINY_GA
        )
        assert record.verification_ok
        configured = extract_function(
            record.netlist, cell_functions=record.true_configuration
        )
        assert (
            configured.lookup_table()
            == window_function(netlist, window).lookup_table()
        )

    def test_zero_decoys(self, library):
        netlist = build_random_netlist(17, library, num_cells=20)
        window = extract_windows(netlist, max_inputs=5)[0]
        record = obfuscate_window(
            window_subnetlist(netlist, window), window, decoys=0, seed=4
        )
        assert record.num_viable == 1
        configured = extract_function(
            record.netlist, cell_functions=record.true_configuration
        )
        assert (
            configured.lookup_table()
            == window_function(netlist, window).lookup_table()
        )


class TestObfuscateNetlist:
    def test_stitched_equivalence_small(self, library):
        """10-input circuit: exhaustive packed cross-check plus SAT miter."""
        netlist = build_random_netlist(7, library, num_cells=24)
        result = obfuscate_netlist(
            netlist, max_window_inputs=6, decoys_per_window=1,
            ga_parameters=TINY_GA, seed=3,
        )
        verification = result.verification
        assert all(verification.windows_ok)
        assert verification.simulation_ok and verification.simulation_complete
        assert verification.sat_ok is True
        assert verification.ok
        # The stitched netlist under the true configuration IS the original.
        assert (
            extract_function(
                result.netlist, cell_functions=result.true_configuration
            ).lookup_table()
            == extract_function(netlist).lookup_table()
        )
        # Every camouflaged instance resolves a plausible family.
        plausible = result.instance_plausible()
        assert set(plausible) == set(result.true_configuration)
        for name, family in plausible.items():
            assert result.true_configuration[name] in family

    def test_jobs_deterministic(self, library):
        """The stitched netlist is byte-identical for jobs in {1, 2, 4}."""
        netlist = build_random_netlist(13, library, num_cells=20)
        outputs = []
        for jobs in (1, 2, 4):
            result = obfuscate_netlist(
                netlist, max_window_inputs=6, decoys_per_window=1,
                ga_parameters=TINY_GA, seed=5, jobs=jobs, verify=False,
            )
            outputs.append(
                (
                    write_blif(result.netlist),
                    sorted(
                        (name, table.bits)
                        for name, table in result.true_configuration.items()
                    ),
                )
            )
        assert outputs[0] == outputs[1] == outputs[2]

    def test_wide_netlist_never_extracts(self, library):
        """24 inputs: sampled verification, no exhaustive truth table."""
        netlist = build_random_netlist(
            5, library, num_inputs=24, num_cells=18, num_outputs=4
        )
        result = obfuscate_netlist(
            netlist, max_window_inputs=6, decoys_per_window=0, seed=3,
        )
        verification = result.verification
        assert verification.ok
        assert not verification.simulation_complete  # sampled, not 2**24
        assert verification.sat_ok is True  # 24 <= default SAT limit

    def test_verify_false_does_not_mark_windows_failed(self, library):
        """Skipping verification must not read as window failure."""
        netlist = build_random_netlist(13, library, num_cells=12)
        result = obfuscate_netlist(
            netlist, max_window_inputs=6, decoys_per_window=1,
            ga_parameters=TINY_GA, seed=5, verify=False,
        )
        assert all(record.verification_ok for record in result.records)
        assert result.verification.ok

    def test_netlist_target_dispatch(self, library):
        netlist = build_random_netlist(7, library, num_cells=12)
        target = NetlistTarget(
            netlist, max_window_inputs=6, decoys_per_window=0,
            ga_parameters=TINY_GA, seed=2,
        )
        assert "windows" in target.describe()
        assert len(target.windows()) >= 1
        result = obfuscate_target(target)
        assert result.verification.ok


class TestWorkloadTargets:
    def test_function_workload_targets(self):
        from repro.scenarios.registry import build_workload

        workload = build_workload("PRESENT", 2)
        targets = workload.targets()
        assert len(targets) == 1
        assert isinstance(targets[0], FunctionTarget)

    def test_netlist_workload_targets(self, tmp_path, library):
        from repro.scenarios.registry import build_workload

        netlist = build_random_netlist(
            3, library, num_inputs=20, num_cells=12, num_outputs=3
        )
        path = tmp_path / "wide.blif"
        path.write_text(write_blif(netlist), encoding="utf-8")
        workload = build_workload("BLIF", 1, paths=str(path))
        assert workload.is_netlist_only
        targets = workload.targets()
        assert len(targets) == 1
        assert isinstance(targets[0], NetlistTarget)

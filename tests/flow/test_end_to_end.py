"""Integration tests: the full three-phase flow on real workloads."""

import pytest

from repro.attacks import verify_viable_functions
from repro.camo.cells import CAMO_PREFIX
from repro.flow import obfuscate, obfuscate_with_assignment
from repro.ga import GAParameters
from repro.netlist import extract_function, validate_netlist
from repro.sboxes import des_sboxes, optimal_sboxes


class TestObfuscateWithAssignment:
    def test_two_present_sboxes(self, two_sboxes):
        result = obfuscate_with_assignment(two_sboxes, effort="fast")
        assert result.verification.all_realisable
        assert validate_netlist(result.netlist) == []
        assert result.camouflaged_area <= result.synthesized_area + 1e-9
        assert all(inst.cell.startswith(CAMO_PREFIX) for inst in result.netlist.instances)
        assert "viable functions : 2" in result.summary()

    def test_final_netlist_has_no_select_inputs(self, two_sboxes):
        result = obfuscate_with_assignment(two_sboxes, effort="fast")
        assert result.netlist.primary_inputs == ["i[0]", "i[1]", "i[2]", "i[3]"]
        assert result.netlist.primary_outputs == ["o[0]", "o[1]", "o[2]", "o[3]"]

    def test_realised_functions_match_viable_set(self, two_sboxes):
        result = obfuscate_with_assignment(two_sboxes, effort="fast")
        views = result.assignment.apply(two_sboxes)
        for select, view in enumerate(views):
            config = result.mapping.configuration_for_select(select)
            realised = extract_function(
                result.netlist, cell_functions=config.as_cell_functions()
            )
            assert realised.lookup_table() == view.lookup_table()

    def test_des_pair(self, des_pair):
        result = obfuscate_with_assignment(des_pair, effort="fast")
        assert result.verification.all_realisable
        assert result.netlist.primary_inputs == [f"i[{k}]" for k in range(6)]

    def test_verify_flag_skips_checks(self, two_sboxes):
        result = obfuscate_with_assignment(two_sboxes, effort="fast", verify=False)
        assert result.verification.total == 2
        assert result.verification.realised == []

    def test_empty_functions_rejected(self):
        with pytest.raises(ValueError):
            obfuscate_with_assignment([])
        with pytest.raises(ValueError):
            obfuscate([])


class TestFullFlowWithGa:
    def test_small_full_run(self, small_obfuscation, two_sboxes):
        result = small_obfuscation
        assert result.verification.all_realisable
        assert result.pin_optimization is not None
        assert result.pin_optimization.evaluations >= 4
        # The final mapped area must beat (or match) the naive identity flow.
        identity = obfuscate_with_assignment(two_sboxes, effort="fast")
        assert result.camouflaged_area <= identity.camouflaged_area + 1e-9
        assert "GA evaluations" in result.summary()

    def test_four_sbox_flow(self, four_sboxes):
        result = obfuscate(
            four_sboxes,
            ga_parameters=GAParameters(population_size=4, generations=1, seed=3),
            fitness_effort="fast",
            final_effort="fast",
        )
        assert result.verification.all_realisable
        assert result.merged_design.num_selects == 2
        report = verify_viable_functions(result.mapping, result.merged_design)
        assert report.all_realisable

    def test_progress_callback_invoked(self, two_sboxes):
        seen = []
        obfuscate(
            two_sboxes,
            ga_parameters=GAParameters(population_size=4, generations=1, seed=2),
            fitness_effort="fast",
            final_effort="fast",
            verify=False,
            progress=seen.append,
        )
        assert [stats.generation for stats in seen] == [0, 1]

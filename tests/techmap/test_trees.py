"""Unit tests for the fanout-free tree decomposition."""

import pytest

from repro.netlist import Netlist, standard_cell_library
from repro.techmap import decompose_into_trees


@pytest.fixture
def branching_netlist(library):
    """A netlist with one multi-fanout internal net feeding two outputs."""
    netlist = Netlist("branching", library)
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    c = netlist.add_input("c")
    netlist.add_output("y0")
    netlist.add_output("y1")
    shared = netlist.add_instance("AND2", [a, b]).output  # multi-fanout net
    netlist.add_instance("OR2", [shared, c], output="y0")
    netlist.add_instance("NAND2", [shared, a], output="y1")
    return netlist


class TestDecomposition:
    def test_every_instance_in_exactly_one_tree(self, merged_two_synthesis):
        netlist = merged_two_synthesis.netlist
        trees = decompose_into_trees(netlist)
        seen = {}
        for tree in trees:
            for instance in tree.instances:
                assert instance.name not in seen, "instance assigned to two trees"
                seen[instance.name] = tree.root_net
        assert len(seen) == netlist.num_instances()

    def test_roots_are_outputs_or_multifanout(self, merged_two_synthesis):
        netlist = merged_two_synthesis.netlist
        fanout = netlist.fanout_counts()
        for tree in decompose_into_trees(netlist):
            assert (
                tree.root_net in netlist.primary_outputs
                or fanout[tree.root_net] > 1
                or fanout[tree.root_net] == 0
            )

    def test_leaves_are_outside_the_tree(self, merged_two_synthesis):
        netlist = merged_two_synthesis.netlist
        for tree in decompose_into_trees(netlist):
            produced = {instance.output for instance in tree.instances}
            for leaf in tree.leaf_nets:
                assert leaf not in produced

    def test_branching_example(self, branching_netlist):
        trees = decompose_into_trees(branching_netlist)
        roots = {tree.root_net for tree in trees}
        assert roots == {"y0", "y1"} | {
            instance.output
            for instance in branching_netlist.instances
            if instance.cell == "AND2"
        }
        # The shared AND2 forms its own single-instance tree.
        shared_tree = next(t for t in trees if t.root_net not in ("y0", "y1"))
        assert len(shared_tree.instances) == 1
        assert set(shared_tree.leaf_nets) == {"a", "b"}

    def test_topological_root_order(self, branching_netlist):
        trees = decompose_into_trees(branching_netlist)
        roots = [tree.root_net for tree in trees]
        shared_root = next(r for r in roots if r not in ("y0", "y1"))
        assert roots.index(shared_root) < roots.index("y0")
        assert roots.index(shared_root) < roots.index("y1")

    def test_tree_instance_order_is_topological(self, merged_two_synthesis):
        netlist = merged_two_synthesis.netlist
        for tree in decompose_into_trees(netlist):
            produced = set()
            for instance in tree.instances:
                for net in instance.inputs:
                    in_tree_driver = any(other.output == net for other in tree.instances)
                    if in_tree_driver:
                        assert net in produced, "tree instances not topologically ordered"
                produced.add(instance.output)

    def test_driver_within(self, branching_netlist):
        trees = decompose_into_trees(branching_netlist)
        tree = next(t for t in trees if t.root_net == "y0")
        assert tree.driver_within("y0").cell == "OR2"
        assert tree.driver_within("a") is None
        assert "Tree" in repr(tree)

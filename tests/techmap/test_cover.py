"""Unit tests for the Alg. 1 tree covering."""

import pytest

from repro.camo import CamouflageLibrary, camouflage_cell, default_camouflage_library
from repro.netlist import Netlist, standard_cell_library
from repro.techmap import CoverError, cover_tree, decompose_into_trees


@pytest.fixture
def camo(camo_library):
    return camo_library


def _single_tree(netlist):
    trees = decompose_into_trees(netlist)
    assert len(trees) == 1
    return trees[0]


class TestCoverSimple:
    def test_single_gate_no_select(self, library, camo):
        netlist = Netlist("t", library)
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.add_output("y")
        netlist.add_instance("NAND2", [a, b], output="y")
        cover = cover_tree(netlist, _single_tree(netlist), [], camo)
        assert len(cover.cells) == 1
        covered = cover.cells[0]
        assert covered.cell_name == "CAMO_NAND2"
        assert covered.output_net == "y"
        assert cover.cost == pytest.approx(1.0)

    def test_single_gate_with_select_leaf(self, library, camo):
        # AND2(data, sel) abstracts to {0, data}: the AND2 camo cell covers it
        # and the select pin disappears.
        netlist = Netlist("t", library)
        d = netlist.add_input("d")
        s = netlist.add_input("s")
        netlist.add_output("y")
        netlist.add_instance("AND2", [d, s], output="y")
        cover = cover_tree(netlist, _single_tree(netlist), ["s"], camo)
        covered = cover.cells[0]
        assert covered.select_leaves == ("s",)
        assert covered.data_leaves == ("d",)
        assert "s" not in covered.pin_nets
        assert set(covered.config_by_select) == {(0,), (1,)}

    def test_mux_tree_absorbed_into_one_cell(self, library, camo):
        # A 2:1 select structure over two data inputs must collapse into a
        # single camouflaged cell whose plausible set holds both projections.
        netlist = Netlist("t", library)
        d0 = netlist.add_input("d0")
        d1 = netlist.add_input("d1")
        sel = netlist.add_input("sel")
        netlist.add_output("y")
        netlist.add_instance("MUX2", [d0, d1, sel], output="y")
        cover = cover_tree(netlist, _single_tree(netlist), ["sel"], camo)
        assert len(cover.cells) == 1
        covered = cover.cells[0]
        assert set(covered.data_leaves) == {"d0", "d1"}
        config0 = covered.config_by_select[(0,)]
        config1 = covered.config_by_select[(1,)]
        assert config0 != config1

    def test_depth_two_cover_can_beat_per_gate_cover(self, library, camo):
        # y = (d & ~sel) | (e & sel): four gates, but ABSFUNC over the whole
        # tree is {d, e} which a single camouflaged cell can realise.
        netlist = Netlist("t", library)
        d = netlist.add_input("d")
        e = netlist.add_input("e")
        sel = netlist.add_input("sel")
        netlist.add_output("y")
        nsel = netlist.add_instance("INV", [sel]).output
        a0 = netlist.add_instance("AND2", [d, nsel]).output
        a1 = netlist.add_instance("AND2", [e, sel]).output
        netlist.add_instance("OR2", [a0, a1], output="y")
        per_gate_cost = sum(library[i.cell].area for i in netlist.instances)
        cover = cover_tree(netlist, _single_tree(netlist), ["sel"], camo, max_depth=3)
        assert cover.cost < per_gate_cost

    def test_cover_error_with_empty_library(self, library):
        netlist = Netlist("t", library)
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.add_output("y")
        netlist.add_instance("XOR2", [a, b], output="y")
        # A camouflage library with only an inverter cannot cover an XOR.
        tiny = CamouflageLibrary([camouflage_cell(library["INV"])])
        with pytest.raises(CoverError):
            cover_tree(netlist, _single_tree(netlist), [], tiny)

    def test_padding_pins_do_not_matter(self, library, camo):
        # The single data leaf of an INV must be padded up to the pin count of
        # whatever camouflaged cell is chosen; the configured functions must
        # not depend on padded pins.
        netlist = Netlist("t", library)
        a = netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_instance("INV", [a], output="y")
        cover = cover_tree(netlist, _single_tree(netlist), [], camo, padding_net="a")
        covered = cover.cells[0]
        assert len(covered.pin_nets) == camo[covered.cell_name].num_inputs
        config = covered.config_by_select[()]
        mapped_pins = {covered.pin_nets.index("a")} if "a" in covered.pin_nets else set()
        for pin in range(len(covered.pin_nets)):
            if pin not in mapped_pins and config.depends_on(pin):
                pytest.fail("configured function depends on a padding pin")


class TestCoverOnSynthesizedCircuit:
    def test_all_trees_coverable(self, merged_two, merged_two_synthesis, camo):
        netlist = merged_two_synthesis.netlist
        select_nets = [f"sel[{k}]" for k in range(merged_two.num_selects)]
        total = 0.0
        for tree in decompose_into_trees(netlist):
            cover = cover_tree(netlist, tree, select_nets, camo, padding_net="i[0]")
            assert cover.cells, f"tree {tree.root_net} produced no cells"
            total += cover.cost
        assert total > 0

"""Unit tests for the Phase III camouflage mapper."""

import pytest

from repro.camo.cells import CAMO_PREFIX
from repro.netlist import extract_function, validate_netlist
from repro.techmap import camouflage_map


class TestCamouflageMap:
    def test_select_inputs_removed(self, merged_two, merged_two_synthesis, camo_mapping_two):
        mapping = camo_mapping_two
        assert all(not net.startswith("sel[") for net in mapping.netlist.primary_inputs)
        assert mapping.netlist.primary_inputs == [
            net for net in merged_two_synthesis.netlist.primary_inputs
            if not net.startswith("sel[")
        ]
        assert mapping.netlist.primary_outputs == merged_two_synthesis.netlist.primary_outputs

    def test_structurally_valid(self, camo_mapping_two):
        assert validate_netlist(camo_mapping_two.netlist) == []

    def test_every_instance_is_camouflaged(self, camo_mapping_two):
        for instance in camo_mapping_two.netlist.instances:
            assert instance.cell.startswith(CAMO_PREFIX)
        assert camo_mapping_two.num_camouflaged_cells() == camo_mapping_two.netlist.num_instances()

    def test_every_viable_function_realisable(self, merged_two, camo_mapping_two):
        for select in range(len(merged_two.viable_functions)):
            config = camo_mapping_two.configuration_for_select(select)
            realised = extract_function(
                camo_mapping_two.netlist, cell_functions=config.as_cell_functions()
            )
            expected = merged_two.function_for_select(select)
            assert realised.lookup_table() == expected.lookup_table()

    def test_area_not_larger_than_synthesized(self, merged_two_synthesis, camo_mapping_two):
        # Removing the select logic should not make the circuit bigger.
        assert camo_mapping_two.area() <= merged_two_synthesis.area + 1e-9

    def test_configuration_bounds(self, camo_mapping_two):
        with pytest.raises(ValueError):
            camo_mapping_two.configuration_for_select(-1)
        with pytest.raises(ValueError):
            camo_mapping_two.configuration_for_select(2)

    def test_configurations_are_plausible(self, camo_mapping_two):
        # Every configured function must belong to the instance's plausible set.
        for select in range(2):
            config = camo_mapping_two.configuration_for_select(select)
            for name, function in config.as_cell_functions().items():
                assert function in camo_mapping_two.plausible_functions_of(name)

    def test_select_net_validation(self, merged_two_synthesis, camo_library):
        with pytest.raises(ValueError):
            camouflage_map(merged_two_synthesis.netlist, ["not_a_net"], camo_library)

    def test_instance_bookkeeping(self, camo_mapping_two):
        for name in camo_mapping_two.camouflaged_instances():
            assert name in camo_mapping_two.instance_selects
            assert name in camo_mapping_two.instance_configs
            selects = camo_mapping_two.instance_selects[name]
            configs = camo_mapping_two.instance_configs[name]
            assert len(configs) == 1 << len(selects)

"""Unit tests for ABSFUNC (select-signal abstraction)."""

import pytest

from repro.logic import TruthTable
from repro.netlist import Netlist, standard_cell_library
from repro.techmap import abstract_select_functions, subtree_output_function


@pytest.fixture
def mux_like_netlist(library):
    """y = (d0 & ~sel) | (d1 & sel) built from gates."""
    netlist = Netlist("mux", library)
    d0 = netlist.add_input("d0")
    d1 = netlist.add_input("d1")
    sel = netlist.add_input("sel")
    netlist.add_output("y")
    nsel = netlist.add_instance("INV", [sel]).output
    a0 = netlist.add_instance("AND2", [d0, nsel]).output
    a1 = netlist.add_instance("AND2", [d1, sel]).output
    netlist.add_instance("OR2", [a0, a1], output="y")
    return netlist


class TestSubtreeOutputFunction:
    def test_whole_circuit_function(self, mux_like_netlist):
        table = subtree_output_function(
            mux_like_netlist,
            mux_like_netlist.instances,
            "y",
            ["d0", "d1", "sel"],
        )
        d0 = TruthTable.variable(0, 3)
        d1 = TruthTable.variable(1, 3)
        sel = TruthTable.variable(2, 3)
        assert table == (d0 & ~sel) | (d1 & sel)

    def test_partial_subtree(self, mux_like_netlist):
        and_instance = next(i for i in mux_like_netlist.instances if i.cell == "AND2")
        table = subtree_output_function(
            mux_like_netlist, [and_instance], and_instance.output, list(and_instance.inputs)
        )
        assert table == TruthTable.variable(0, 2) & TruthTable.variable(1, 2)

    def test_unclosed_subtree_rejected(self, mux_like_netlist):
        or_instance = next(i for i in mux_like_netlist.instances if i.cell == "OR2")
        with pytest.raises(ValueError):
            subtree_output_function(mux_like_netlist, [or_instance], "y", ["d0", "d1"])

    def test_wrong_output_net_rejected(self, mux_like_netlist):
        and_instance = next(i for i in mux_like_netlist.instances if i.cell == "AND2")
        with pytest.raises(ValueError):
            subtree_output_function(
                mux_like_netlist, [and_instance], "nonexistent", list(and_instance.inputs)
            )


class TestAbstractSelect:
    def test_mux_abstracts_to_both_data_inputs(self, mux_like_netlist):
        abstracted = abstract_select_functions(
            mux_like_netlist,
            mux_like_netlist.instances,
            "y",
            ["d0", "d1", "sel"],
            select_nets=["sel"],
        )
        assert abstracted.data_leaves == ("d0", "d1")
        assert abstracted.select_leaves == ("sel",)
        d0 = TruthTable.variable(0, 2)
        d1 = TruthTable.variable(1, 2)
        assert abstracted.by_select[(0,)] == d0
        assert abstracted.by_select[(1,)] == d1
        assert set(abstracted.required_functions()) == {d0, d1}

    def test_no_select_leaves(self, mux_like_netlist):
        and_instance = next(i for i in mux_like_netlist.instances if i.cell == "AND2")
        abstracted = abstract_select_functions(
            mux_like_netlist, [and_instance], and_instance.output,
            list(and_instance.inputs), select_nets=["sel_other"],
        )
        assert abstracted.select_leaves == ()
        assert len(abstracted.by_select) == 1
        assert abstracted.by_select[()] == TruthTable.variable(0, 2) & TruthTable.variable(1, 2)

    def test_only_select_leaves(self, library):
        netlist = Netlist("selonly", library)
        s0 = netlist.add_input("s0")
        s1 = netlist.add_input("s1")
        netlist.add_output("y")
        netlist.add_instance("AND2", [s0, s1], output="y")
        abstracted = abstract_select_functions(
            netlist, netlist.instances, "y", ["s0", "s1"], select_nets=["s0", "s1"]
        )
        assert abstracted.data_leaves == ()
        assert len(abstracted.by_select) == 4
        assert abstracted.by_select[(1, 1)].is_constant_one()
        assert abstracted.by_select[(0, 1)].is_constant_zero()
        # Distinct required functions collapse to the two constants.
        assert len(abstracted.required_functions()) == 2

    def test_select_assignment_order_matches_select_leaves(self, mux_like_netlist):
        abstracted = abstract_select_functions(
            mux_like_netlist, mux_like_netlist.instances, "y",
            ["sel", "d0", "d1"], select_nets=["sel"],
        )
        # Leaf order in the call puts sel first, but data/select separation is
        # by membership, not position.
        assert abstracted.data_leaves == ("d0", "d1")
        assert abstracted.select_leaves == ("sel",)

"""Tests for the service-facing CLI verbs (`serve`, `campaign --submit`)."""

import json
import threading

import pytest

from repro.cli import build_parser, main
from repro.service.server import ServiceThread
from repro.service.worker import WorkerAgent


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.root == ""
        assert args.lease_ttl == 0.0

    def test_campaign_submit_flags(self):
        args = build_parser().parse_args(
            [
                "campaign",
                "--workload",
                "PRESENT:2",
                "--submit",
                "http://localhost:8765",
                "--no-wait",
            ]
        )
        assert args.submit == "http://localhost:8765"
        assert args.no_wait is True
        bare = build_parser().parse_args(
            ["campaign", "--workload", "PRESENT:2"]
        )
        assert bare.submit == ""
        assert bare.no_wait is False

    def test_cache_requires_an_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])
        args = build_parser().parse_args(["cache", "compact", "--dir", "/x"])
        assert args.action == "compact"
        assert args.dir == "/x"


class TestServeCommand:
    def test_serve_without_root_is_a_clean_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_ROOT", raising=False)
        with pytest.raises(SystemExit) as info:
            main(["serve"])
        assert "root" in str(info.value)


class TestSubmitCommand:
    def test_submit_rejects_blif_campaigns(self, tmp_path):
        blif = tmp_path / "x.blif"
        blif.write_text(".model x\n.end\n", encoding="utf-8")
        with pytest.raises(SystemExit) as info:
            main(
                [
                    "campaign",
                    "--blif",
                    str(blif),
                    "--submit",
                    "http://localhost:1",
                ]
            )
        assert "--blif" in str(info.value)

    def test_submit_unreachable_coordinator_is_a_clean_error(self):
        with pytest.raises(SystemExit) as info:
            main(
                [
                    "campaign",
                    "--workload",
                    "PRESENT:2",
                    "--submit",
                    "http://127.0.0.1:1",
                ]
            )
        assert "submit failed" in str(info.value)

    def test_submit_no_wait_posts_and_returns(self, tmp_path, capsys):
        with ServiceThread(root=str(tmp_path)) as service:
            exit_code = main(
                [
                    "campaign",
                    "--workload",
                    "PRESENT:2",
                    "--profile",
                    "quick",
                    "--submit",
                    service.url,
                    "--no-wait",
                ]
            )
            assert exit_code == 0
            output = capsys.readouterr().out
            assert "created" in output
            listing = service.service._handles
            assert len(listing) == 1
            # Resubmission dedupes (and says so).
            assert (
                main(
                    [
                        "campaign",
                        "--workload",
                        "PRESENT:2",
                        "--profile",
                        "quick",
                        "--submit",
                        service.url,
                        "--no-wait",
                    ]
                )
                == 0
            )
            assert "already submitted" in capsys.readouterr().out
            assert len(service.service._handles) == 1

    def test_submit_waits_for_a_worker_fleet_and_writes_artifacts(
        self, tmp_path, capsys
    ):
        """The full operator loop: submit, fleet executes, artifacts land.

        A real worker agent polls in the background with no pinned
        campaign — it discovers the submission, executes it, and the CLI's
        wait returns with artifacts fetched over HTTP.
        """
        root = tmp_path / "root"
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        bench_dir = tmp_path / "bench"
        with ServiceThread(root=str(root), poll=0.02) as service:
            agent = WorkerAgent(
                service.url, poll=0.05, remote_cache=False, log=None
            )
            worker = threading.Thread(
                target=agent.run, kwargs={"max_jobs": 1}, daemon=True
            )
            worker.start()
            exit_code = main(
                [
                    "campaign",
                    "--workload",
                    "PRESENT:2",
                    "--profile",
                    "quick",
                    "--submit",
                    service.url,
                    "--json",
                    str(json_path),
                    "--csv",
                    str(csv_path),
                    "--bench-dir",
                    str(bench_dir),
                ]
            )
            worker.join(timeout=120)
            assert exit_code == 0
        output = capsys.readouterr().out
        assert "1/1 jobs complete (0 failed)" in output
        assert "robustness" in output
        document = json.loads(json_path.read_text(encoding="utf-8"))
        assert document["campaign"]["failed"] == 0
        assert csv_path.read_text(encoding="utf-8").startswith("job_id,")
        bench_files = list(bench_dir.iterdir())
        assert len(bench_files) == 1
        assert bench_files[0].name.startswith("BENCH_campaign_")

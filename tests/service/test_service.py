"""End-to-end tests for the campaign service (coordinator + workers).

Every test drives a real coordinator over real HTTP on a loopback socket
(:class:`~repro.service.server.ServiceThread`) and real pull-based worker
agents; nothing is mocked.  The invariants mirror the local campaign
runner's: submissions dedupe, every job runs exactly once, lost leases
discard results instead of double-writing, and the artifacts a service
campaign produces are byte-identical to a local run of the same spec.
"""

import json
import threading
import time

import pytest

from repro.jobstore import JobStore, RetryPolicy
from repro.scenarios.campaign import (
    JOB_KINDS,
    CampaignJob,
    CampaignSpec,
    run_campaign,
)
from repro.service.client import ServiceClient
from repro.service.protocol import (
    ServiceError,
    campaign_fingerprint,
    normalized_artifact_csv,
    normalized_artifact_json,
)
from repro.service.server import ServiceThread
from repro.service.worker import WorkerAgent


def probe_spec(count=3, name="svc", **extra):
    return CampaignSpec(
        name=name,
        jobs=[
            CampaignJob(f"probe_{index}", "probe", {"value": index, **extra})
            for index in range(count)
        ],
    )


def run_worker(url, campaign=None, max_jobs=None, **kwargs):
    kwargs.setdefault("poll", 0.02)
    kwargs.setdefault("remote_cache", False)
    kwargs.setdefault("log", None)
    agent = WorkerAgent(url, **kwargs)
    return agent.run(campaign=campaign, once=True, max_jobs=max_jobs)


class TestSubmission:
    def test_health_and_unknown_routes(self, tmp_path):
        with ServiceThread(root=str(tmp_path)) as service:
            client = ServiceClient(service.url)
            assert client.health()["ok"] is True
            with pytest.raises(ServiceError) as info:
                client.status("c000000000000")
            assert info.value.status == 404
            with pytest.raises(ServiceError) as info:
                client.submit({"name": "bad"})  # no jobs: invalid spec
            assert info.value.status == 400

    def test_resubmission_dedupes_onto_one_campaign(self, tmp_path):
        spec = probe_spec()
        with ServiceThread(root=str(tmp_path)) as service:
            client = ServiceClient(service.url)
            first = client.submit(spec.to_dict())
            second = client.submit(spec.to_dict())
            assert first["campaign"] == second["campaign"]
            assert first["created"] is True
            assert second["created"] is False
            assert first["campaign"] == campaign_fingerprint(spec.to_dict())
            listing = client.campaigns()["campaigns"]
            assert [entry["campaign"] for entry in listing] == [
                first["campaign"]
            ]

    def test_concurrent_clients_dedupe_and_both_observe_completion(
        self, tmp_path
    ):
        """Two clients race the same spec: one campaign, two live streams.

        The submissions land concurrently (exactly one reports
        ``created``), and *both* submitters' SSE subscriptions — opened
        before any worker exists — observe every job finish and the final
        campaign-complete event.
        """
        spec = probe_spec(count=4, name="race")
        with ServiceThread(root=str(tmp_path), poll=0.02) as service:
            submissions = []

            def submit():
                submissions.append(
                    ServiceClient(service.url).submit(spec.to_dict())
                )

            submitters = [threading.Thread(target=submit) for _ in range(2)]
            for thread in submitters:
                thread.start()
            for thread in submitters:
                thread.join(timeout=30)
            assert len(submissions) == 2
            assert len({entry["campaign"] for entry in submissions}) == 1
            assert sorted(entry["created"] for entry in submissions) == [
                False,
                True,
            ]
            campaign_id = submissions[0]["campaign"]

            streams = [[], []]

            def watch(collected):
                client = ServiceClient(service.url)
                for event, data in client.events(campaign_id):
                    collected.append((event, data))

            watchers = [
                threading.Thread(target=watch, args=(stream,), daemon=True)
                for stream in streams
            ]
            for thread in watchers:
                thread.start()
            time.sleep(0.1)  # both subscriptions see the pending snapshot

            counters = run_worker(service.url, campaign=campaign_id)
            assert counters["executed"] == 4
            for thread in watchers:
                thread.join(timeout=30)
                assert not thread.is_alive()

            for collected in streams:
                names = [event for event, _ in collected]
                assert names[0] == "snapshot"
                assert names[-1] == "campaign"
                assert collected[-1][1]["status"] == "complete"
                done = [
                    data["job"] for event, data in collected if event == "done"
                ]
                assert sorted(done) == [job.job_id for job in spec.jobs]


class TestWorkerExecution:
    def test_worker_fleet_produces_local_artifacts_byte_identically(
        self, tmp_path
    ):
        """The acceptance invariant: service artifacts == local artifacts.

        The spec runs once through the HTTP fleet and once through the
        in-process runner; after stripping wall-clock/provenance noise the
        JSON and CSV artifacts must match byte for byte.
        """
        spec = probe_spec(count=4)
        with ServiceThread(root=str(tmp_path), poll=0.02) as service:
            client = ServiceClient(service.url)
            campaign_id = client.submit(spec.to_dict())["campaign"]
            run_worker(service.url, campaign=campaign_id)

            status = client.status(campaign_id)
            assert status["complete"] is True
            assert status["counts"] == {"done": 4}
            assert status["robustness"]["lease_claims"] == 4

            service_json = client.artifact(campaign_id, "json")
            service_csv = client.artifact(campaign_id, "csv")
            bench = json.loads(client.artifact(campaign_id, "bench"))
            assert bench["name"].endswith(spec.name)

        local = run_campaign(spec, jobs=1)
        assert normalized_artifact_json(service_json) == (
            normalized_artifact_json(local.to_json())
        )
        assert normalized_artifact_csv(service_csv) == (
            normalized_artifact_csv(local.to_csv())
        )

    def test_two_workers_split_the_jobs_without_double_work(self, tmp_path):
        spec = probe_spec(count=6, sleep=0.05)
        with ServiceThread(root=str(tmp_path), poll=0.02) as service:
            client = ServiceClient(service.url)
            campaign_id = client.submit(spec.to_dict())["campaign"]
            results = {}

            def work(name):
                results[name] = run_worker(
                    service.url, campaign=campaign_id, worker_id=name
                )

            workers = [
                threading.Thread(target=work, args=(f"w{index}",))
                for index in range(2)
            ]
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join(timeout=60)
            assert client.status(campaign_id)["complete"] is True
            executed = [results[name]["executed"] for name in sorted(results)]
            assert sum(executed) == 6
            # The attempt sidecars prove exactly-once execution.
            state_dir = tmp_path / "campaigns" / campaign_id / "state"
            store = JobStore(str(state_dir), owner="inspector")
            for job in spec.jobs:
                records = store.attempts(job.job_id)
                finished = [
                    record
                    for record in records
                    if record.get("status") == "ok"
                ]
                assert len(finished) == 1, (job.job_id, records)

    def test_transient_failure_retries_over_http(self, tmp_path):
        marker = tmp_path / "flaky.marker"
        spec = CampaignSpec(
            name="retry",
            jobs=[
                CampaignJob(
                    "flaky", "probe", {"value": 7, "fail_marker": str(marker)}
                ),
                CampaignJob("steady", "probe", {"value": 8}),
            ],
        )
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)
        with ServiceThread(
            root=str(tmp_path / "root"), poll=0.02, retry_policy=policy
        ) as service:
            client = ServiceClient(service.url)
            campaign_id = client.submit(spec.to_dict())["campaign"]
            counters = run_worker(service.url, campaign=campaign_id)
            assert counters == {"executed": 2, "failed": 1, "discarded": 0}
            status = client.status(campaign_id)
            assert status["complete"] is True
            assert status["counts"] == {"done": 2}
            assert status["robustness"]["retries"] == 1
            assert status["robustness"]["failures_transient"] == 1
            state_dir = tmp_path / "root" / "campaigns" / campaign_id / "state"
            statuses = [
                record["status"]
                for record in JobStore(
                    str(state_dir), owner="inspector"
                ).attempts("flaky")
            ]
            assert statuses == ["retry", "ok"]
            # The committed state records the real attempt count.
            flaky_state = json.loads(
                (state_dir / "flaky.json").read_text(encoding="utf-8")
            )
            assert flaky_state["attempts"] == 2
            assert flaky_state["owner"].startswith("remote:")

    def test_permanent_failure_finishes_terminally(self, tmp_path, monkeypatch):
        def _bad_parameters(params, task_jobs):
            raise ValueError("bad parameters")

        monkeypatch.setitem(JOB_KINDS, "bad", _bad_parameters)
        spec = CampaignSpec(name="perm", jobs=[CampaignJob("bad", "bad", {})])
        with ServiceThread(root=str(tmp_path), poll=0.02) as service:
            client = ServiceClient(service.url)
            campaign_id = client.submit(spec.to_dict())["campaign"]

            events = []

            def watch():
                for event, data in ServiceClient(service.url).events(
                    campaign_id
                ):
                    events.append((event, data))

            watcher = threading.Thread(target=watch, daemon=True)
            watcher.start()
            time.sleep(0.1)

            counters = run_worker(service.url, campaign=campaign_id)
            assert counters["failed"] == 1
            watcher.join(timeout=30)
            assert not watcher.is_alive()

            status = client.status(campaign_id)
            assert status["complete"] is True
            assert status["counts"] == {"error": 1}
            assert status["robustness"]["failures_permanent"] == 1
            assert "retries" not in status["robustness"]
            failed = [data for event, data in events if event == "failed"]
            assert failed and failed[0]["status"] == "error"
            assert "bad parameters" in failed[0]["error"]
            document = json.loads(client.artifact(campaign_id, "json"))
            assert document["results"][0]["status"] == "error"


class TestLeaseSafety:
    def test_commit_under_a_reclaimed_lease_is_discarded(self, tmp_path):
        """The 409 path: a slow worker's result never lands twice.

        Worker ``a`` claims and goes silent (no heartbeats); after the TTL
        a second worker reclaims the job and finishes it.  When ``a``
        finally uploads, the coordinator must refuse the commit — the
        job's state is the reclaiming worker's, exactly once.
        """
        spec = probe_spec(count=1, name="lease")
        with ServiceThread(
            root=str(tmp_path), poll=0.02, lease_ttl=0.2
        ) as service:
            client = ServiceClient(service.url)
            campaign_id = client.submit(spec.to_dict())["campaign"]
            job_id = spec.jobs[0].job_id

            ticket = client.claim(campaign_id, "a")
            assert ticket["job"]["job_id"] == job_id
            time.sleep(0.8)  # three missed heartbeats: the lease expires

            stolen = client.claim(campaign_id, "b")
            assert stolen["job"]["job_id"] == job_id
            committed = client.complete(
                campaign_id, job_id, "b", seconds=0.1, payload={"value": 0}
            )
            assert committed["committed"] is True

            with pytest.raises(ServiceError) as info:
                client.complete(
                    campaign_id,
                    job_id,
                    "a",
                    seconds=9.9,
                    payload={"value": 666},
                )
            assert info.value.status == 409

            status = client.status(campaign_id)
            assert status["complete"] is True
            assert status["robustness"]["lease_lost_discards"] == 1
            assert status["robustness"]["worker_reclaims"] == 1
            # The reclaim is on the record, and b's payload won.
            state_dir = tmp_path / "campaigns" / campaign_id / "state"
            records = JobStore(str(state_dir), owner="inspector").attempts(
                job_id
            )
            assert any(record.get("reclaimed") for record in records)
            document = json.loads(client.artifact(campaign_id, "json"))
            assert document["results"][0]["payload"] == {"value": 0}
            state = json.loads(
                (state_dir / f"{job_id}.json").read_text(encoding="utf-8")
            )
            assert state["owner"] == "remote:b"

    def test_heartbeat_of_a_lost_lease_reports_409(self, tmp_path):
        spec = probe_spec(count=1, name="beat")
        with ServiceThread(
            root=str(tmp_path), poll=0.02, lease_ttl=0.2
        ) as service:
            client = ServiceClient(service.url)
            campaign_id = client.submit(spec.to_dict())["campaign"]
            job_id = spec.jobs[0].job_id
            client.claim(campaign_id, "a")
            assert "expires" in client.heartbeat(campaign_id, job_id, "a")
            time.sleep(0.8)
            client.claim(campaign_id, "b")
            with pytest.raises(ServiceError) as info:
                client.heartbeat(campaign_id, job_id, "a")
            assert info.value.status == 409


class TestRestart:
    def test_coordinator_restart_recovers_campaigns_and_state(self, tmp_path):
        """Kill the coordinator mid-campaign; a successor picks it all up.

        Finished jobs, the spec registry and dedupe identity live on disk;
        the replacement coordinator serves the half-done campaign, dedupes
        a resubmission onto it, and a worker finishes only the remainder.
        """
        spec = probe_spec(count=3, name="restart")
        root = str(tmp_path)
        with ServiceThread(root=root, poll=0.02) as service:
            client = ServiceClient(service.url)
            campaign_id = client.submit(spec.to_dict())["campaign"]
            counters = run_worker(
                service.url, campaign=campaign_id, max_jobs=1
            )
            assert counters["executed"] == 1

        with ServiceThread(root=root, poll=0.02) as service:
            client = ServiceClient(service.url)
            resubmitted = client.submit(spec.to_dict())
            assert resubmitted["campaign"] == campaign_id
            assert resubmitted["created"] is False
            status = client.status(campaign_id)
            assert status["counts"]["done"] == 1
            counters = run_worker(service.url, campaign=campaign_id)
            assert counters["executed"] == 2  # only the unfinished jobs
            assert client.status(campaign_id)["complete"] is True
            service_json = client.artifact(campaign_id, "json")

        local = run_campaign(spec, jobs=1)
        assert normalized_artifact_json(service_json) == (
            normalized_artifact_json(local.to_json())
        )

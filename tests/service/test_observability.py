"""Service observability: /metrics, cancel, SSE metrics, stitched traces."""

import threading
import time

from repro.obs.metrics import reset_metrics
from repro.obs.trace import (
    TRACE_DIR_ENV_VAR,
    TRACE_ENV_VAR,
    job_span_id,
    load_trace,
    reset_trace_state,
)
from repro.obs.trace import span as trace_span
from repro.scenarios.campaign import CampaignJob, CampaignSpec
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread
from repro.service.worker import WorkerAgent


def probe_spec(count=3, name="obs", **extra):
    return CampaignSpec(
        name=name,
        jobs=[
            CampaignJob(f"probe_{index}", "probe", {"value": index, **extra})
            for index in range(count)
        ],
    )


def run_worker(url, campaign=None, max_jobs=None, **kwargs):
    kwargs.setdefault("poll", 0.02)
    kwargs.setdefault("remote_cache", False)
    kwargs.setdefault("log", None)
    agent = WorkerAgent(url, **kwargs)
    return agent.run(campaign=campaign, once=True, max_jobs=max_jobs)


def watch_events(url, campaign_id, collected):
    for event, data in ServiceClient(url).events(campaign_id):
        collected.append((event, data))


class TestMetricsEndpoint:
    def test_scrape_and_sse_metrics_frames(self, tmp_path):
        reset_metrics()
        spec = probe_spec(count=2, name="metered")
        with ServiceThread(root=str(tmp_path), poll=0.02) as service:
            client = ServiceClient(service.url)
            text = client.metrics()
            # The scrape itself is the first counted request.
            assert "# TYPE repro_service_requests_total counter" in text
            assert "# TYPE repro_service_campaigns gauge" in text

            campaign_id = client.submit(spec.to_dict())["campaign"]
            events = []
            watcher = threading.Thread(
                target=watch_events,
                args=(service.url, campaign_id, events),
                daemon=True,
            )
            watcher.start()
            time.sleep(0.1)  # at least one pre-completion metrics frame
            counters = run_worker(service.url, campaign=campaign_id)
            assert counters["executed"] == 2
            client.wait(campaign_id, timeout=30)
            watcher.join(timeout=30)
            assert not watcher.is_alive()

            text = client.metrics()
            # Claim requests include the trailing "done" polls: >= one per job.
            claims = next(
                float(line.rsplit(" ", 1)[1])
                for line in text.splitlines()
                if line.startswith(
                    f'repro_service_claims_total{{campaign="{campaign_id}"}}'
                )
            )
            assert claims >= 2
            assert (
                f'repro_service_jobs_total{{campaign="{campaign_id}",'
                f'status="ok"}} 2' in text
            )
            assert "repro_service_campaigns 1" in text

        # The SSE stream carried live metrics frames mid-campaign, shaped
        # like the snapshot a concurrent scrape would report.
        metrics_frames = [data for event, data in events if event == "metrics"]
        assert metrics_frames
        frame = metrics_frames[-1]
        assert frame["campaign"] == campaign_id
        assert "repro_service_requests_total" in frame["metrics"]
        # First and last frames keep their historical shape.
        assert events[0][0] == "snapshot"
        assert events[-1][0] == "campaign"
        assert events[-1][1]["status"] == "complete"


class TestCancel:
    def test_cancel_stops_claims_and_closes_streams(self, tmp_path):
        spec = probe_spec(count=3, name="cancelme", sleep=0.0)
        with ServiceThread(root=str(tmp_path), poll=0.02) as service:
            client = ServiceClient(service.url)
            campaign_id = client.submit(spec.to_dict())["campaign"]
            events = []
            watcher = threading.Thread(
                target=watch_events,
                args=(service.url, campaign_id, events),
                daemon=True,
            )
            watcher.start()
            time.sleep(0.1)

            reply = client.cancel(campaign_id)
            assert reply == {"campaign": campaign_id, "cancelled": True}

            # No further claims succeed: workers drain away immediately.
            ticket = client.claim(campaign_id, "w1")
            assert ticket.get("done") is True
            assert ticket.get("cancelled") is True

            status = client.wait(campaign_id, timeout=30)
            assert status["cancelled"] is True
            assert status["complete"] is False  # jobs never ran

            watcher.join(timeout=30)
            assert not watcher.is_alive()
            assert events[-1][0] == "campaign"
            assert events[-1][1]["status"] == "cancelled"

            listing = client.campaigns()["campaigns"]
            (entry,) = [e for e in listing if e["campaign"] == campaign_id]
            assert entry["cancelled"] is True
            assert entry["complete"] is False
            assert entry["jobs"] == 3

    def test_cancel_survives_restart(self, tmp_path):
        """The cancel marker is persisted: a restarted coordinator keeps it."""
        spec = probe_spec(count=2, name="sticky")
        with ServiceThread(root=str(tmp_path)) as service:
            client = ServiceClient(service.url)
            campaign_id = client.submit(spec.to_dict())["campaign"]
            client.cancel(campaign_id)
        with ServiceThread(root=str(tmp_path)) as service:
            client = ServiceClient(service.url)
            assert client.status(campaign_id)["cancelled"] is True
            assert client.claim(campaign_id, "w1").get("cancelled") is True


class TestDistributedTrace:
    def test_two_worker_campaign_stitches_one_trace(self, tmp_path, monkeypatch):
        """Client -> coordinator -> two workers: one trace, fully parented.

        The client span's traceparent rides the submission request; the
        coordinator derives the campaign span under it and hands each
        claim ticket the job's deterministic traceparent; worker attempt
        spans parent under those.  The merged trace is a single tree.
        """
        trace_directory = tmp_path / "trace"
        monkeypatch.setenv(TRACE_ENV_VAR, "1")
        monkeypatch.setenv(TRACE_DIR_ENV_VAR, str(trace_directory))
        reset_trace_state()
        spec = probe_spec(count=4, name="traced")
        try:
            with ServiceThread(root=str(tmp_path / "root"), poll=0.02) as service:
                with trace_span("client", campaign=spec.name) as client_span:
                    client = ServiceClient(service.url)
                    campaign_id = client.submit(spec.to_dict())["campaign"]
                    workers = [
                        threading.Thread(
                            target=run_worker,
                            args=(service.url,),
                            kwargs={
                                "campaign": campaign_id,
                                "worker_id": f"tracer-{index}",
                            },
                        )
                        for index in range(2)
                    ]
                    for thread in workers:
                        thread.start()
                    status = client.wait(campaign_id, timeout=60)
                    for thread in workers:
                        thread.join(timeout=30)
            assert status["complete"] is True
        finally:
            reset_trace_state()

        records = load_trace(str(trace_directory))
        trace_id = client_span.trace_id
        assert {record["trace"] for record in records} == {trace_id}

        (campaign_record,) = [r for r in records if r["name"] == "campaign"]
        assert campaign_record["span"] == job_span_id(
            trace_id, f"campaign:{campaign_id}"
        )
        assert campaign_record["parent"] == client_span.span_id
        assert campaign_record["attrs"]["status"] == "complete"
        assert not campaign_record.get("unfinished")

        job_records = [r for r in records if r["name"] == "job"]
        assert len(job_records) == 4
        for record in job_records:
            assert record["parent"] == campaign_record["span"]
            assert record["span"] == job_span_id(
                trace_id, record["attrs"]["job"]
            )
            assert record["attrs"]["status"] == "ok"

        attempts = [r for r in records if r["name"] == "attempt"]
        assert len(attempts) == 4  # one attempt per job, no faults
        job_spans = {record["span"] for record in job_records}
        assert all(record["parent"] in job_spans for record in attempts)
        assert all(not record.get("unfinished") for record in attempts)

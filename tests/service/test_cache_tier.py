"""Tests for the shared cross-worker synthesis-cache tier."""

import time

import pytest

from repro.ga.pinopt import (
    CACHE_DIR_ENV_VAR,
    PinAssignmentProblem,
    SynthesisDiskCache,
    resolve_synthesis_cache,
)
from repro.service.cache import CACHE_URL_ENV_VAR, RemoteCacheTier
from repro.service.client import ServiceClient
from repro.service.protocol import ServiceError, cache_fingerprint
from repro.service.server import ServiceThread


@pytest.fixture
def service(tmp_path):
    with ServiceThread(root=str(tmp_path / "service-root")) as thread:
        yield thread


class TestCacheEndpoints:
    def test_put_then_get_round_trips(self, service):
        client = ServiceClient(service.url)
        fingerprint = cache_fingerprint("fast", "lib", (4, 0x1234))
        client.cache_put(
            fingerprint,
            {
                "effort": "fast",
                "library": "lib",
                "signature": [4, 0x1234],
                "area": 42.5,
            },
        )
        entry = client.cache_get(fingerprint)
        assert entry["area"] == 42.5
        assert entry["signature"] == [4, 0x1234]
        stats = client.cache_stats()
        assert stats["puts"] == 1
        assert stats["get_hits"] == 1
        assert stats["entries"] == 1

    def test_get_miss_is_404(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError) as info:
            client.cache_get("0" * 32)
        assert info.value.status == 404
        assert client.cache_stats()["get_misses"] == 1

    def test_put_with_mismatched_fingerprint_is_rejected(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError) as info:
            client.cache_put(
                "0" * 32,
                {
                    "effort": "fast",
                    "library": "lib",
                    "signature": [1],
                    "area": 1.0,
                },
            )
        assert info.value.status == 400
        with pytest.raises(ServiceError) as info:
            client.cache_put(
                cache_fingerprint("fast", "lib", (1,)), {"effort": "fast"}
            )
        assert info.value.status == 400

    def test_entries_survive_a_coordinator_restart(self, tmp_path):
        """The tier is the ordinary disk-cache format under the root."""
        root = str(tmp_path)
        fingerprint = cache_fingerprint("fast", "lib", (7, 99))
        entry = {
            "effort": "fast",
            "library": "lib",
            "signature": [7, 99],
            "area": 17.25,
        }
        with ServiceThread(root=root) as service:
            ServiceClient(service.url).cache_put(fingerprint, entry)
        # The entry landed in plain SynthesisDiskCache segments.
        reloaded = SynthesisDiskCache(str(tmp_path / "cache"))
        assert reloaded.get("fast", "lib", (7, 99)) == 17.25
        with ServiceThread(root=root) as service:
            fetched = ServiceClient(service.url).cache_get(fingerprint)
            assert fetched["area"] == 17.25


class TestRemoteCacheTier:
    def test_write_behind_put_reaches_the_coordinator(self, service):
        tier = RemoteCacheTier(service.url)
        tier.put("fast", "lib", (4, 0x1234), 42.5)
        assert tier.flush(timeout=10.0)
        assert tier.remote_stats()["puts"] == 1
        assert ServiceClient(service.url).cache_stats()["puts"] == 1
        # The entry also landed locally: a re-get never hits the network.
        assert tier.get("fast", "lib", (4, 0x1234)) == 42.5
        assert tier.remote_stats()["hits"] == 0

    def test_read_through_get_populates_the_local_store(self, service):
        seeder = RemoteCacheTier(service.url)
        seeder.put("fast", "lib", (4, 0x1234), 42.5)
        assert seeder.flush(timeout=10.0)

        fresh = RemoteCacheTier(service.url)
        assert fresh.get("fast", "lib", (4, 0x1234)) == 42.5
        assert fresh.remote_stats() == {
            "hits": 1,
            "misses": 0,
            "puts": 0,
            "errors": 0,
        }
        # Second read is local; the signature crossed the wire once.
        assert fresh.get("fast", "lib", (4, 0x1234)) == 42.5
        assert fresh.remote_stats()["hits"] == 1
        assert fresh.hits == 2
        # A put of a remotely-served entry is not re-uploaded.
        fresh.put("fast", "lib", (4, 0x1234), 42.5)
        assert fresh.flush(timeout=10.0)
        assert fresh.remote_stats()["puts"] == 0

    def test_remote_miss_returns_none(self, service):
        tier = RemoteCacheTier(service.url)
        assert tier.get("fast", "lib", (1, 2)) is None
        assert tier.remote_stats()["misses"] == 1

    def test_network_failure_degrades_to_local_only(self, tmp_path):
        tier = RemoteCacheTier(
            "http://127.0.0.1:1", timeout=0.5  # nothing listens here
        )
        tier.put("fast", "lib", (1,), 5.0)
        assert tier.get("fast", "lib", (1,)) == 5.0  # local, no network
        assert tier.get("fast", "lib", (2,)) is None
        deadline = time.monotonic() + 10.0
        while (
            tier.remote_stats()["errors"] < 2
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)  # the failed upload is asynchronous
        assert tier.remote_stats()["errors"] == 2  # one get, one put

    def test_local_disk_store_fronts_the_tier(self, service, tmp_path):
        local = SynthesisDiskCache(str(tmp_path / "near"))
        tier = RemoteCacheTier(service.url, local=local)
        tier.put("fast", "lib", (3,), 9.0)
        assert tier.flush(timeout=10.0)
        assert local.get("fast", "lib", (3,)) == 9.0
        assert len(tier) == 1
        # A remote hit is written through into the near store.
        seeder = RemoteCacheTier(service.url)
        seeder.put("fast", "lib", (4,), 11.0)
        assert seeder.flush(timeout=10.0)
        assert tier.get("fast", "lib", (4,)) == 11.0
        assert local.get("fast", "lib", (4,)) == 11.0


class TestEnvironmentWiring:
    def test_resolve_synthesis_cache_prefers_the_remote_tier(
        self, service, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(CACHE_URL_ENV_VAR, service.url)
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "near"))
        cache = resolve_synthesis_cache()
        assert isinstance(cache, RemoteCacheTier)
        assert cache.url == service.url
        assert isinstance(cache.local, SynthesisDiskCache)
        assert RemoteCacheTier.active() is cache
        assert RemoteCacheTier.from_environment() is cache  # shared per URL

    def test_resolve_synthesis_cache_without_url_is_the_disk_cache(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(CACHE_URL_ENV_VAR, raising=False)
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        assert resolve_synthesis_cache() is None
        assert RemoteCacheTier.active() is None
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        assert isinstance(resolve_synthesis_cache(), SynthesisDiskCache)

    def test_problem_cache_stats_report_remote_traffic(
        self, service, two_sboxes, rng, monkeypatch
    ):
        """``remote_*`` counters surface per-problem deltas, like disk ones.

        The first problem misses remotely and uploads its syntheses; a
        problem constructed afterwards (same process, warm tier) reports
        zero new traffic for repeated genotypes — everything is local now.
        """
        monkeypatch.setenv(CACHE_URL_ENV_VAR, service.url)
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        first = PinAssignmentProblem(two_sboxes)
        assert isinstance(first.disk_cache, RemoteCacheTier)
        genotype = first.random_genotype(rng)
        first.evaluate(genotype)
        stats = first.cache_stats()
        assert stats["remote_misses"] >= 1
        first.disk_cache.flush(timeout=10.0)
        assert first.cache_stats()["remote_puts"] >= 1

        second = PinAssignmentProblem(two_sboxes)
        second.evaluate(genotype)
        stats = second.cache_stats()
        assert stats["disk_hits"] == 1
        assert stats["remote_misses"] == 0
        assert stats["remote_puts"] == 0

    def test_fresh_process_tier_hits_the_coordinator(
        self, service, two_sboxes, rng, monkeypatch
    ):
        """A cold tier (new worker) gets remote hits for known signatures."""
        monkeypatch.setenv(CACHE_URL_ENV_VAR, service.url)
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        warm = PinAssignmentProblem(two_sboxes)
        genotype = warm.random_genotype(rng)
        warm.evaluate(genotype)
        warm.disk_cache.flush(timeout=10.0)

        # Simulate a different worker process: same URL, empty local store.
        cold_tier = RemoteCacheTier(service.url)
        monkeypatch.setitem(RemoteCacheTier._SHARED, service.url, cold_tier)
        problem = PinAssignmentProblem(two_sboxes)
        assert problem.disk_cache is cold_tier
        problem.evaluate(genotype)
        stats = problem.cache_stats()
        assert stats["remote_hits"] >= 1
        assert stats["remote_misses"] == 0

"""Unit tests for the service wire protocol (identity, SSE, normalisers)."""

import json

import pytest

from repro.scenarios.campaign import CampaignJob, CampaignSpec, run_campaign
from repro.service.protocol import (
    cache_fingerprint,
    campaign_fingerprint,
    canonical_json,
    normalized_artifact_csv,
    normalized_artifact_json,
    parse_sse,
    sse_event,
)


def probe_spec(count=3, name="proto"):
    return CampaignSpec(
        name=name,
        jobs=[
            CampaignJob(f"probe_{index}", "probe", {"value": index})
            for index in range(count)
        ],
    )


class TestFingerprints:
    def test_campaign_fingerprint_is_deterministic(self):
        spec = probe_spec()
        first = campaign_fingerprint(spec.to_dict())
        second = campaign_fingerprint(probe_spec().to_dict())
        assert first == second
        assert first.startswith("c")
        assert len(first) == 13

    def test_campaign_fingerprint_ignores_key_order(self):
        """Submitters serialising the same spec differently still dedupe."""
        data = probe_spec().to_dict()
        shuffled = json.loads(canonical_json(data))
        reordered = {key: shuffled[key] for key in reversed(list(shuffled))}
        assert campaign_fingerprint(data) == campaign_fingerprint(reordered)

    def test_different_specs_get_different_campaigns(self):
        base = campaign_fingerprint(probe_spec().to_dict())
        assert campaign_fingerprint(probe_spec(count=4).to_dict()) != base
        assert campaign_fingerprint(probe_spec(name="other").to_dict()) != base

    def test_cache_fingerprint_is_a_pure_function_of_the_key(self):
        first = cache_fingerprint("fast", "lib", (4, 0x1234))
        assert cache_fingerprint("fast", "lib", [4, 0x1234]) == first
        assert cache_fingerprint("best", "lib", (4, 0x1234)) != first
        assert cache_fingerprint("fast", "other", (4, 0x1234)) != first
        assert cache_fingerprint("fast", "lib", (4, 0x1235)) != first
        assert len(first) == 32


class TestSse:
    def test_round_trip(self):
        frames = sse_event("claim", {"job": "a", "owner": "w1"}) + sse_event(
            "done", {"job": "a"}
        )
        events = list(parse_sse(iter(frames.split(b"\n"))))
        # splitlines drops the terminators; re-add empties via split("\n").
        assert events == [
            ("claim", {"job": "a", "owner": "w1"}),
            ("done", {"job": "a"}),
        ]

    def test_keepalive_comments_are_skipped(self):
        stream = (
            b": keepalive\n\n"
            + sse_event("snapshot", {"jobs": {}})
            + b": keepalive\n\n"
        )
        events = list(parse_sse(iter(stream.split(b"\n"))))
        assert events == [("snapshot", {"jobs": {}})]

    def test_garbage_data_is_dropped_not_raised(self):
        stream = b"event: broken\ndata: {not json\n\n" + sse_event(
            "ok", {"x": 1}
        )
        events = list(parse_sse(iter(stream.split(b"\n"))))
        assert events == [("ok", {"x": 1})]


class TestArtifactNormalisation:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_campaign(probe_spec())

    def test_json_zeroes_only_timing_and_provenance(self, outcome):
        normalized = json.loads(normalized_artifact_json(outcome.to_json()))
        assert normalized["total_seconds"] == 0.0
        assert normalized["robustness"] == {}
        assert normalized["jobs"] == 0
        assert set(normalized["job_seconds"].values()) <= {0.0}
        for row in normalized["results"]:
            assert row["seconds"] == 0.0
            assert row["cached"] is False
        # The payloads — the actual results — survive untouched.
        original = json.loads(outcome.to_json())
        assert [row["payload"] for row in normalized["results"]] == [
            row["payload"] for row in original["results"]
        ]

    def test_normalisation_is_idempotent(self, outcome):
        once = normalized_artifact_json(outcome.to_json())
        assert normalized_artifact_json(once) == once

    def test_csv_zeroes_seconds_and_cached_columns(self, outcome):
        normalized = normalized_artifact_csv(outcome.to_csv())
        header = normalized.splitlines()[0].split(",")
        seconds_column = header.index("seconds")
        cached_column = header.index("cached")
        for line in normalized.splitlines()[1:]:
            cells = line.split(",")
            assert cells[seconds_column] == "0"
            assert cells[cached_column] == "0"

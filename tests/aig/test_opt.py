"""Unit tests for the AIG optimisation passes (balance, rewrite, refactor)."""

import random

import pytest

from repro.aig import Aig, aig_from_function, aig_from_tables, balance, refactor, rewrite, strash
from repro.logic import BoolFunction, TruthTable


def random_function(rng, num_vars, num_outputs):
    tables = [TruthTable(num_vars, rng.getrandbits(1 << num_vars)) for _ in range(num_outputs)]
    return BoolFunction(tables)


class TestBalance:
    def test_balance_reduces_depth_of_chain(self):
        aig = Aig("chain")
        literals = [aig.add_input() for _ in range(8)]
        current = literals[0]
        for literal in literals[1:]:
            current = aig.and_(current, literal)
        aig.add_output(current, "y")
        assert aig.depth() == 7
        balanced = balance(aig)
        assert balanced.depth() == 3
        assert balanced.output_tables() == aig.output_tables()

    def test_balance_preserves_function(self, present):
        aig = aig_from_function(present)
        balanced = balance(aig)
        assert balanced.to_bool_function().lookup_table() == present.lookup_table()


class TestRewrite:
    def test_rewrite_preserves_function_on_random_circuits(self):
        rng = random.Random(17)
        for _ in range(8):
            function = random_function(rng, 5, 2)
            aig = aig_from_function(function)
            rewritten = rewrite(aig)
            assert rewritten.to_bool_function().outputs == function.outputs
            assert rewritten.num_ands <= aig.num_ands

    def test_rewrite_removes_redundant_structure(self):
        # Build (a & b) | (a & b) written as two separate cones via mux logic.
        aig = Aig()
        a = aig.add_input()
        b = aig.add_input()
        c = aig.add_input()
        left = aig.and_(a, b)
        right = aig.and_(b, a)
        aig.add_output(aig.or_(aig.and_(left, c), aig.and_(right, Aig.negate(c))), "y")
        rewritten = rewrite(aig)
        # (ab)c | (ab)~c == ab: the rewrite should find a much smaller form.
        assert rewritten.num_ands <= 2
        assert rewritten.output_tables()[0] == (
            TruthTable.variable(0, 3) & TruthTable.variable(1, 3)
        )

    def test_zero_gain_rewrite_keeps_function(self, present):
        aig = aig_from_function(present)
        rewritten = rewrite(aig, zero_gain=True)
        assert rewritten.to_bool_function().lookup_table() == present.lookup_table()


class TestRefactor:
    def test_refactor_preserves_function(self):
        rng = random.Random(23)
        for _ in range(5):
            function = random_function(rng, 6, 2)
            aig = aig_from_function(function)
            refactored = refactor(aig)
            assert refactored.to_bool_function().outputs == function.outputs
            assert refactored.num_ands <= aig.num_ands

    def test_refactor_collapses_sop_friendly_logic(self):
        # f = a&b | a&c | a&d built as a deep mux tree: refactor should shrink it.
        a, b, c, d = (TruthTable.variable(k, 4) for k in range(4))
        target = (a & b) | (a & c) | (a & d)
        aig = aig_from_tables([target])
        refactored = refactor(aig)
        assert refactored.output_tables()[0] == target
        assert refactored.num_ands <= aig.num_ands


class TestStrash:
    def test_strash_equals_compact(self, present):
        aig = aig_from_function(present)
        assert strash(aig).num_ands == aig.compact().num_ands

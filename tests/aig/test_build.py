"""Unit tests for AIG construction from tables, expressions, and netlists."""

import random

import pytest

from repro.aig import aig_from_expression, aig_from_function, aig_from_netlist, aig_from_tables
from repro.logic import BoolFunction, TruthTable, parse_expression
from repro.netlist import extract_function


class TestFromTables:
    def test_single_output_equivalence(self):
        rng = random.Random(5)
        for num_vars in (2, 3, 4, 5):
            table = TruthTable(num_vars, rng.getrandbits(1 << num_vars))
            aig = aig_from_tables([table])
            assert aig.output_tables()[0] == table

    def test_multi_output_sharing(self):
        # Two outputs that share a sub-function should share AIG nodes.
        a = TruthTable.variable(0, 3)
        b = TruthTable.variable(1, 3)
        c = TruthTable.variable(2, 3)
        shared = a & b
        separate_a = aig_from_tables([shared | c])
        separate_b = aig_from_tables([shared & ~c])
        combined = aig_from_tables([shared | c, shared & ~c])
        assert combined.num_ands < separate_a.num_ands + separate_b.num_ands

    def test_constant_outputs(self):
        aig = aig_from_tables(
            [TruthTable.constant(2, True), TruthTable.constant(2, False)]
        )
        assert aig.num_ands == 0
        tables = aig.output_tables()
        assert tables[0].is_constant_one()
        assert tables[1].is_constant_zero()

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            aig_from_tables([TruthTable.constant(2, True), TruthTable.constant(3, True)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aig_from_tables([])

    def test_names_preserved(self):
        aig = aig_from_tables(
            [TruthTable.variable(0, 2)], input_names=["p", "q"], output_names=["out"]
        )
        assert aig.input_names == ["p", "q"]
        assert aig.output_names == ["out"]


class TestFromFunctionAndExpression:
    def test_from_function_matches_lookup(self, present):
        aig = aig_from_function(present)
        assert aig.to_bool_function().lookup_table() == present.lookup_table()

    def test_from_expression(self):
        expression = parse_expression("(a & b) | (~a & c)")
        aig = aig_from_expression(expression, ["a", "b", "c"])
        table = aig.output_tables()[0]
        va, vb, vc = (TruthTable.variable(k, 3) for k in range(3))
        assert table == (va & vb) | (~va & vc)

    def test_from_expression_unbound_variable(self):
        expression = parse_expression("a & missing")
        with pytest.raises(KeyError):
            aig_from_expression(expression, ["a"])


class TestFromNetlist:
    def test_roundtrip_function(self, present, present_netlist):
        aig = aig_from_netlist(present_netlist)
        assert aig.num_inputs == 4
        assert aig.to_bool_function().lookup_table() == present.lookup_table()

    def test_netlist_to_aig_to_function(self, merged_two, merged_two_synthesis):
        aig = aig_from_netlist(merged_two_synthesis.netlist)
        extracted = extract_function(merged_two_synthesis.netlist)
        assert aig.to_bool_function().lookup_table() == extracted.lookup_table()

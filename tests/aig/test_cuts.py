"""Unit tests for cut enumeration, cut functions, and MFFC computation."""

import pytest

from repro.aig import Aig, collect_cone_cut, cut_function, enumerate_cuts, mffc_size
from repro.logic import TruthTable


@pytest.fixture
def chain_aig():
    """y = ((a & b) & c) & d — a pure AND chain."""
    aig = Aig("chain")
    a = aig.add_input("a")
    b = aig.add_input("b")
    c = aig.add_input("c")
    d = aig.add_input("d")
    ab = aig.and_(a, b)
    abc = aig.and_(ab, c)
    abcd = aig.and_(abc, d)
    aig.add_output(abcd, "y")
    return aig


class TestEnumerateCuts:
    def test_trivial_cut_always_first(self, chain_aig):
        cuts = enumerate_cuts(chain_aig)
        for node in chain_aig.and_nodes():
            assert cuts[node][0] == frozenset({node})

    def test_leaf_limit_respected(self, chain_aig):
        cuts = enumerate_cuts(chain_aig, max_leaves=3)
        for node, node_cuts in cuts.items():
            for cut in node_cuts:
                assert len(cut) <= 3 or cut == frozenset({node})

    def test_root_has_full_input_cut(self, chain_aig):
        cuts = enumerate_cuts(chain_aig, max_leaves=4)
        root = chain_aig.and_nodes()[-1]
        input_nodes = frozenset(
            Aig.node(chain_aig.input_literal(k)) for k in range(4)
        )
        assert input_nodes in cuts[root]

    def test_max_cuts_per_node(self, chain_aig):
        cuts = enumerate_cuts(chain_aig, max_cuts_per_node=2)
        for node_cuts in cuts.values():
            assert len(node_cuts) <= 2


class TestCutFunction:
    def test_function_over_inputs(self, chain_aig):
        root = chain_aig.and_nodes()[-1]
        input_nodes = frozenset(
            Aig.node(chain_aig.input_literal(k)) for k in range(4)
        )
        table, leaves = cut_function(chain_aig, root, input_nodes)
        assert len(leaves) == 4
        expected = TruthTable.constant(4, True)
        for var in range(4):
            expected = expected & TruthTable.variable(var, 4)
        assert table == expected

    def test_function_over_intermediate_cut(self, chain_aig):
        nodes = chain_aig.and_nodes()
        ab_node, abc_node, root = nodes
        d_node = Aig.node(chain_aig.input_literal(3))
        table, leaves = cut_function(chain_aig, root, frozenset({abc_node, d_node}))
        assert table == TruthTable.variable(0, 2) & TruthTable.variable(1, 2)

    def test_leaf_outside_cone_rejected(self, chain_aig):
        root = chain_aig.and_nodes()[-1]
        with pytest.raises(ValueError):
            cut_function(chain_aig, root, frozenset({Aig.node(chain_aig.input_literal(0))}))


class TestMffc:
    def test_chain_mffc_is_whole_cone(self, chain_aig):
        root = chain_aig.and_nodes()[-1]
        input_nodes = frozenset(Aig.node(chain_aig.input_literal(k)) for k in range(4))
        refs = chain_aig.reference_counts()
        assert mffc_size(chain_aig, root, input_nodes, refs) == 3

    def test_shared_node_excluded_from_mffc(self):
        aig = Aig()
        a = aig.add_input()
        b = aig.add_input()
        c = aig.add_input()
        shared = aig.and_(a, b)
        root = aig.and_(shared, c)
        aig.add_output(root, "y")
        aig.add_output(shared, "z")  # shared has an external reference
        refs = aig.reference_counts()
        leaves = frozenset({Aig.node(a), Aig.node(b), Aig.node(c)})
        assert mffc_size(aig, Aig.node(root), leaves, refs) == 1

    def test_reference_counts_not_mutated(self, chain_aig):
        root = chain_aig.and_nodes()[-1]
        refs = chain_aig.reference_counts()
        snapshot = dict(refs)
        leaves = frozenset(Aig.node(chain_aig.input_literal(k)) for k in range(4))
        mffc_size(chain_aig, root, leaves, refs)
        assert refs == snapshot


class TestConeCut:
    def test_cone_cut_bounded(self, chain_aig):
        root = chain_aig.and_nodes()[-1]
        cut = collect_cone_cut(chain_aig, root, max_leaves=4)
        assert len(cut) <= 4
        # With 4 leaves allowed the cone reaches the primary inputs.
        assert all(not chain_aig.is_and_node(leaf) for leaf in cut)

    def test_cone_cut_small_budget(self, chain_aig):
        root = chain_aig.and_nodes()[-1]
        cut = collect_cone_cut(chain_aig, root, max_leaves=2)
        assert len(cut) <= 2

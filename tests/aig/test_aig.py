"""Unit tests for the AIG data structure."""

import pytest

from repro.aig import FALSE_LIT, TRUE_LIT, Aig, AigError
from repro.logic import TruthTable


@pytest.fixture
def xor_aig():
    aig = Aig("xor")
    a = aig.add_input("a")
    b = aig.add_input("b")
    aig.add_output(aig.xor_(a, b), "y")
    return aig


class TestConstruction:
    def test_simplification_rules(self):
        aig = Aig()
        a = aig.add_input()
        assert aig.and_(a, FALSE_LIT) == FALSE_LIT
        assert aig.and_(FALSE_LIT, a) == FALSE_LIT
        assert aig.and_(a, TRUE_LIT) == a
        assert aig.and_(TRUE_LIT, a) == a
        assert aig.and_(a, a) == a
        assert aig.and_(a, Aig.negate(a)) == FALSE_LIT
        assert aig.num_ands == 0

    def test_structural_hashing(self):
        aig = Aig()
        a = aig.add_input()
        b = aig.add_input()
        first = aig.and_(a, b)
        second = aig.and_(b, a)
        assert first == second
        assert aig.num_ands == 1

    def test_or_xor_mux(self):
        aig = Aig()
        a = aig.add_input()
        b = aig.add_input()
        s = aig.add_input()
        aig.add_output(aig.or_(a, b), "or")
        aig.add_output(aig.xor_(a, b), "xor")
        aig.add_output(aig.mux_(s, a, b), "mux")
        tables = aig.output_tables()
        va = TruthTable.variable(0, 3)
        vb = TruthTable.variable(1, 3)
        vs = TruthTable.variable(2, 3)
        assert tables[0] == va | vb
        assert tables[1] == va ^ vb
        assert tables[2] == (vs & va) | (~vs & vb)

    def test_and_many_or_many(self):
        aig = Aig()
        literals = [aig.add_input() for _ in range(5)]
        aig.add_output(aig.and_many(literals), "and")
        aig.add_output(aig.or_many(literals), "or")
        aig.add_output(aig.and_many([]), "true")
        aig.add_output(aig.or_many([]), "false")
        tables = aig.output_tables()
        assert tables[0].count_ones() == 1
        assert (~tables[1]).count_ones() == 1
        assert tables[2].is_constant_one()
        assert tables[3].is_constant_zero()

    def test_invalid_literal_rejected(self):
        aig = Aig()
        a = aig.add_input()
        with pytest.raises(AigError):
            aig.and_(a, 999)
        with pytest.raises(AigError):
            aig.add_output(999)

    def test_fanins_of_non_and_rejected(self, xor_aig):
        with pytest.raises(AigError):
            xor_aig.fanins(0)


class TestAnalysis:
    def test_counts(self, xor_aig):
        assert xor_aig.num_inputs == 2
        assert xor_aig.num_outputs == 1
        assert xor_aig.num_ands == 3

    def test_levels_and_depth(self, xor_aig):
        assert xor_aig.depth() == 2
        levels = xor_aig.levels()
        assert levels[0] == 0
        assert all(levels[Aig.node(xor_aig.input_literal(k))] == 0 for k in range(2))

    def test_reference_counts(self, xor_aig):
        counts = xor_aig.reference_counts()
        output_node = Aig.node(xor_aig.outputs[0])
        assert counts[output_node] == 1

    def test_evaluate_word(self, xor_aig):
        assert [xor_aig.evaluate_word(w) for w in range(4)] == [0, 1, 1, 0]

    def test_to_bool_function(self, xor_aig):
        function = xor_aig.to_bool_function()
        assert function.num_inputs == 2
        assert function.lookup_table() == [0, 1, 1, 0]


class TestCompaction:
    def test_dead_nodes_removed(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        useful = aig.and_(a, b)
        aig.and_(a, Aig.negate(b))  # dangling
        aig.add_output(useful, "y")
        assert aig.num_ands == 2
        compacted = aig.compact()
        assert compacted.num_ands == 1
        assert compacted.num_live_ands() == 1
        assert compacted.output_tables() == aig.output_tables()

    def test_compact_preserves_names(self, xor_aig):
        compacted = xor_aig.compact()
        assert compacted.input_names == xor_aig.input_names
        assert compacted.output_names == xor_aig.output_names

    def test_repr(self, xor_aig):
        assert "ands=3" in repr(xor_aig)

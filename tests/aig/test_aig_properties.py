"""Property-based tests: the synthesis passes never change the function."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import aig_from_tables, balance, refactor, rewrite
from repro.logic import TruthTable
from repro.synth import map_to_cells
from repro.netlist import extract_function


def table_strategy(num_vars):
    return st.builds(
        TruthTable,
        st.just(num_vars),
        st.integers(min_value=0, max_value=(1 << (1 << num_vars)) - 1),
    )


def multi_output(num_vars, num_outputs):
    return st.lists(table_strategy(num_vars), min_size=num_outputs, max_size=num_outputs)


@given(multi_output(4, 2))
@settings(max_examples=25, deadline=None)
def test_build_then_optimize_preserves_function(tables):
    aig = aig_from_tables(tables)
    assert aig.output_tables() == list(tables)
    optimized = rewrite(balance(aig))
    assert optimized.output_tables() == list(tables)


@given(multi_output(5, 1))
@settings(max_examples=15, deadline=None)
def test_refactor_preserves_function(tables):
    aig = aig_from_tables(tables)
    assert refactor(aig).output_tables() == list(tables)


@given(multi_output(4, 2))
@settings(max_examples=15, deadline=None)
def test_mapping_preserves_function(tables):
    aig = rewrite(balance(aig_from_tables(tables)))
    netlist = map_to_cells(aig)
    function = extract_function(netlist)
    assert list(function.outputs) == list(tables)


@given(multi_output(4, 1))
@settings(max_examples=20, deadline=None)
def test_optimization_never_increases_and_count(tables):
    aig = aig_from_tables(tables)
    optimized = rewrite(balance(aig))
    assert optimized.num_ands <= aig.num_ands

"""Reproduction of the Fig. 3 observation: pin placement changes sharing.

The paper's Fig. 3 argues that aligning the inputs of f0 = (AB+CD)E and
f1 = (FG+HI)+J lets the whole sub-circuit AB+CD be shared, while a scrambled
placement forces duplicated logic.  These tests measure that effect with the
real synthesiser.
"""

import random

import pytest

from repro.logic import BoolFunction, expression_to_table, parse_expression
from repro.merge import PinAssignment, merge_functions
from repro.synth import synthesize


@pytest.fixture(scope="module")
def figure3_functions():
    variables = ["a", "b", "c", "d", "e"]
    f0 = expression_to_table(parse_expression("(a&b | c&d) & e"), variables)
    f1 = expression_to_table(parse_expression("(a&b | c&d) | e"), variables)
    return [BoolFunction([f0], name="f0"), BoolFunction([f1], name="f1")]


def _area(functions, assignment):
    design = merge_functions(functions, assignment)
    return synthesize(design.function).area


class TestFigure3:
    def test_aligned_assignment_allows_sharing(self, figure3_functions):
        aligned = PinAssignment.identity(2, 5, 1)
        scrambled = PinAssignment(
            input_perms=((0, 1, 2, 3, 4), (2, 0, 1, 3, 4)),
            output_perms=((0,), (0,)),
        )
        aligned_area = _area(figure3_functions, aligned)
        scrambled_area = _area(figure3_functions, scrambled)
        assert aligned_area <= scrambled_area

    def test_aligned_assignment_is_among_the_best(self, figure3_functions):
        aligned_area = _area(figure3_functions, PinAssignment.identity(2, 5, 1))
        rng = random.Random(2)
        random_areas = [
            _area(figure3_functions, PinAssignment.random(2, 5, 1, rng)) for _ in range(8)
        ]
        # The aligned assignment exploits the shared AB+CD cone, so it should
        # be at least as good as the typical random assignment.
        assert aligned_area <= sorted(random_areas)[len(random_areas) // 2]

    def test_pin_assignment_spread_exists(self, figure3_functions):
        rng = random.Random(4)
        areas = {
            _area(figure3_functions, PinAssignment.random(2, 5, 1, rng)) for _ in range(10)
        }
        # If every assignment synthesised to the same area there would be
        # nothing for Phase II to optimise.
        assert len(areas) > 1

"""Unit tests for pin assignments."""

import random

import pytest

from repro.merge import PinAssignment
from repro.sboxes import optimal_sboxes


class TestConstruction:
    def test_identity(self):
        assignment = PinAssignment.identity(3, 4, 2)
        assert assignment.num_functions == 3
        assert assignment.num_inputs == 4
        assert assignment.num_outputs == 2
        assert all(perm == (0, 1, 2, 3) for perm in assignment.input_perms)

    def test_for_functions(self, two_sboxes):
        assignment = PinAssignment.for_functions(two_sboxes)
        assert assignment.num_functions == 2
        assert assignment.num_inputs == 4
        assert assignment.num_outputs == 4

    def test_for_functions_shape_mismatch(self, two_sboxes, des_pair):
        with pytest.raises(ValueError):
            PinAssignment.for_functions([two_sboxes[0], des_pair[0]])

    def test_for_functions_empty(self):
        with pytest.raises(ValueError):
            PinAssignment.for_functions([])

    def test_invalid_permutation_rejected(self):
        with pytest.raises(ValueError):
            PinAssignment(((0, 0, 1, 2),), ((0, 1, 2, 3),))
        with pytest.raises(ValueError):
            PinAssignment(((0, 1),), ())
        with pytest.raises(ValueError):
            PinAssignment((), ())

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            PinAssignment(((0, 1), (0, 1, 2)), ((0,), (0,)))

    def test_random_is_valid(self):
        rng = random.Random(5)
        for _ in range(20):
            assignment = PinAssignment.random(3, 5, 2, rng)
            for perm in assignment.input_perms:
                assert sorted(perm) == list(range(5))
            for perm in assignment.output_perms:
                assert sorted(perm) == list(range(2))


class TestGenotype:
    def test_roundtrip(self):
        rng = random.Random(9)
        assignment = PinAssignment.random(4, 4, 4, rng)
        genes = assignment.to_genotype()
        assert len(genes) == 4 * (4 + 4)
        rebuilt = PinAssignment.from_genotype(genes, 4, 4, 4)
        assert rebuilt == assignment
        assert rebuilt.canonical_key() == tuple(genes)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            PinAssignment.from_genotype([0, 1, 2], 2, 4, 4)


class TestApply:
    def test_identity_apply_is_noop(self, two_sboxes):
        assignment = PinAssignment.for_functions(two_sboxes)
        applied = assignment.apply(two_sboxes)
        assert [f.lookup_table() for f in applied] == [f.lookup_table() for f in two_sboxes]

    def test_apply_permutes_behaviour(self, two_sboxes):
        # Move input 0 to position 1 for the first function only.
        assignment = PinAssignment(
            ((1, 0, 2, 3), (0, 1, 2, 3)),
            ((0, 1, 2, 3), (0, 1, 2, 3)),
        )
        applied = assignment.apply(two_sboxes)
        original = two_sboxes[0]
        permuted = applied[0]
        # Evaluating the permuted function on a swapped input word must match
        # the original on the unswapped word.
        for word in range(16):
            swapped = (word & 0b1100) | ((word & 1) << 1) | ((word >> 1) & 1)
            assert permuted.evaluate_word(swapped) == original.evaluate_word(word)
        # The second function is untouched.
        assert applied[1].lookup_table() == two_sboxes[1].lookup_table()

    def test_apply_output_permutation(self, two_sboxes):
        assignment = PinAssignment(
            ((0, 1, 2, 3), (0, 1, 2, 3)),
            ((3, 2, 1, 0), (0, 1, 2, 3)),
        )
        applied = assignment.apply(two_sboxes)
        for word in range(16):
            original = two_sboxes[0].evaluate_word(word)
            reversed_bits = int(f"{original:04b}"[::-1], 2)
            assert applied[0].evaluate_word(word) == reversed_bits

    def test_apply_count_mismatch(self, two_sboxes):
        assignment = PinAssignment.identity(3, 4, 4)
        with pytest.raises(ValueError):
            assignment.apply(two_sboxes)

    def test_apply_shape_mismatch(self, des_pair):
        assignment = PinAssignment.identity(2, 4, 4)
        with pytest.raises(ValueError):
            assignment.apply(des_pair)

"""Unit tests for Phase I: the merged multi-function design."""

import pytest

from repro.logic import BoolFunction
from repro.merge import PinAssignment, merge_functions, naive_merged_netlist, num_select_inputs
from repro.netlist import extract_function, validate_netlist
from repro.sboxes import optimal_sboxes


class TestSelectCount:
    @pytest.mark.parametrize("count, selects", [(1, 0), (2, 1), (3, 2), (4, 2), (8, 3), (16, 4)])
    def test_num_select_inputs(self, count, selects):
        assert num_select_inputs(count) == selects

    def test_invalid(self):
        with pytest.raises(ValueError):
            num_select_inputs(0)


class TestMergeFunctions:
    def test_two_functions_shape(self, two_sboxes):
        design = merge_functions(two_sboxes)
        assert design.num_data_inputs == 4
        assert design.num_selects == 1
        assert design.function.num_inputs == 5
        assert design.function.num_outputs == 4
        assert design.select_input_indices == (4,)

    def test_merged_behaviour_matches_each_function(self, four_sboxes):
        design = merge_functions(four_sboxes)
        for select in range(4):
            expected = design.function_for_select(select)
            for word in range(16):
                merged_word = word | (select << 4)
                assert design.function.evaluate_word(merged_word) == expected.evaluate_word(word)

    def test_select_out_of_range(self, two_sboxes):
        design = merge_functions(two_sboxes)
        with pytest.raises(ValueError):
            design.function_for_select(2)

    def test_non_power_of_two_clamps(self):
        functions = optimal_sboxes(3)
        design = merge_functions(functions)
        assert design.num_selects == 2
        # Select value 3 falls back to the last function.
        assert design.function_for_select(3).lookup_table() == functions[2].lookup_table()

    def test_assignment_changes_merged_function(self, two_sboxes):
        identity = merge_functions(two_sboxes)
        permuted = merge_functions(
            two_sboxes,
            PinAssignment(
                ((0, 1, 2, 3), (1, 0, 2, 3)),
                ((0, 1, 2, 3), (0, 1, 2, 3)),
            ),
        )
        assert identity.function != permuted.function

    def test_single_function(self, present):
        design = merge_functions([present])
        assert design.num_selects == 0
        assert design.function.outputs == present.outputs

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_functions([])

    def test_input_names(self, two_sboxes):
        design = merge_functions(two_sboxes)
        assert design.function.input_names == ("i[0]", "i[1]", "i[2]", "i[3]", "sel[0]")


class TestNaiveMergedNetlist:
    def test_structure_and_function(self, two_sboxes, library):
        netlist = naive_merged_netlist(two_sboxes, library=library)
        assert validate_netlist(netlist) == []
        assert "sel[0]" in netlist.primary_inputs
        assert netlist.cell_histogram().get("MUX2", 0) == 4
        extracted = extract_function(netlist)
        design = merge_functions(two_sboxes)
        assert extracted.lookup_table() == design.function.lookup_table()

    def test_naive_is_larger_than_shared_synthesis(self, two_sboxes, merged_two_synthesis, library):
        naive = naive_merged_netlist(two_sboxes, library=library)
        # The whole point of Phase I: synthesising the merged description
        # shares logic and beats the "two copies + muxes" structure.
        assert merged_two_synthesis.area < naive.area()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            naive_merged_netlist([])

"""Unit tests for the designer-side plausibility verification."""

import pytest

from repro.attacks import verify_viable_functions
from repro.logic import TruthTable


class TestVerifyViableFunctions:
    def test_mapping_passes_exhaustive_check(self, camo_mapping_two, merged_two):
        report = verify_viable_functions(camo_mapping_two, merged_two)
        assert report.all_realisable
        assert report.total == 2
        assert report.realised == [0, 1]
        assert report.failed == []
        assert "OK" in report.summary()

    def test_mapping_passes_sat_check(self, camo_mapping_two, merged_two):
        report = verify_viable_functions(camo_mapping_two, merged_two, use_sat=True)
        assert report.all_realisable

    def test_corrupted_configuration_is_detected(self, camo_mapping_two, merged_two):
        # Sabotage one instance's configuration table and check the report
        # notices that some select value no longer realises its function.
        victim = camo_mapping_two.camouflaged_instances()[0]
        original = dict(camo_mapping_two.instance_configs[victim])
        try:
            num_pins = camo_mapping_two.netlist.library[
                camo_mapping_two.netlist.instance(victim).cell
            ].num_inputs
            corrupted = {
                key: TruthTable.constant(num_pins, True) for key in original
            }
            camo_mapping_two.instance_configs[victim] = corrupted
            report = verify_viable_functions(camo_mapping_two, merged_two)
            assert not report.all_realisable
            assert report.failed
            assert "FAILED" in report.summary()
        finally:
            camo_mapping_two.instance_configs[victim] = original

    def test_report_details_recorded_on_failure(self, camo_mapping_two, merged_two):
        victim = camo_mapping_two.camouflaged_instances()[-1]
        original = dict(camo_mapping_two.instance_configs[victim])
        try:
            num_pins = camo_mapping_two.netlist.library[
                camo_mapping_two.netlist.instance(victim).cell
            ].num_inputs
            camo_mapping_two.instance_configs[victim] = {
                key: TruthTable.constant(num_pins, False) for key in original
            }
            report = verify_viable_functions(camo_mapping_two, merged_two)
            if report.failed:
                assert all(select in report.details for select in report.failed)
        finally:
            camo_mapping_two.instance_configs[victim] = original

"""Unit tests for the oracle-guided (DIP-based) SAT attack extension."""

import pytest

from repro.attacks.oracle_guided import OracleGuidedAttack, attack_mapping
from repro.camo import CamouflageLibrary, camouflage_cell
from repro.logic import TruthTable
from repro.netlist import Netlist, extract_function
from repro.flow import obfuscate_with_assignment
from repro.logic import BoolFunction


@pytest.fixture
def single_camo_nand(library):
    """One camouflaged NAND2 feeding the only output."""
    camo_nand = camouflage_cell(library["NAND2"])
    camo_library = CamouflageLibrary([camo_nand])
    merged = camo_library.as_cell_library(include=library)
    netlist = Netlist("tiny", merged)
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_output("y")
    netlist.add_instance("CAMO_NAND2", [a, b], output="y", name="u_camo")
    return netlist, {"u_camo": list(camo_nand.plausible)}


class TestOracleGuidedAttackSmall:
    @pytest.mark.parametrize(
        "true_function",
        [
            lambda a, b: 1 - (a & b),  # NAND
            lambda a, b: 1 - a,        # ~A
            lambda a, b: 1,            # constant 1
        ],
    )
    def test_recovers_true_behaviour(self, single_camo_nand, true_function):
        netlist, plausible = single_camo_nand
        attack = OracleGuidedAttack(netlist, plausible, max_queries=16)

        def oracle(word):
            return true_function(word & 1, (word >> 1) & 1)

        result = attack.run(oracle)
        assert result.success
        assert result.num_queries <= 4
        assert result.recovered_function == [oracle(word) for word in range(4)]
        # The witness configuration must reproduce the oracle exactly.
        realised = extract_function(netlist, cell_functions=result.configuration)
        assert realised.lookup_table() == result.recovered_function

    def test_query_budget_respected(self, single_camo_nand):
        netlist, plausible = single_camo_nand
        attack = OracleGuidedAttack(netlist, plausible, max_queries=0)
        result = attack.run(lambda word: 1)
        assert not result.success
        assert result.num_queries == 0

    def test_empty_plausible_set_rejected(self, single_camo_nand):
        netlist, _ = single_camo_nand
        with pytest.raises(ValueError):
            OracleGuidedAttack(netlist, {"u_camo": []})


class TestAttackAgainstMapping:
    def test_recovers_configured_viable_function(self, library):
        # Two tiny 2-input / 1-output viable functions keep the DIP loop fast.
        f_and = BoolFunction([TruthTable.variable(0, 2) & TruthTable.variable(1, 2)], name="and")
        f_or = BoolFunction([TruthTable.variable(0, 2) | TruthTable.variable(1, 2)], name="or")
        result = obfuscate_with_assignment([f_and, f_or], library=library, effort="fast")
        outcome = attack_mapping(result.mapping, true_select=1, max_queries=32)
        assert outcome.success
        view = result.assignment.apply([f_and, f_or])[1]
        assert outcome.recovered_function == view.lookup_table()
        # An oracle-equipped adversary defeats camouflaging with few queries —
        # which is exactly why the paper's threat model excludes oracle access.
        assert outcome.num_queries <= 4

"""Unit tests for the oracle-guided (DIP-based) SAT attack extension."""

import pytest

from repro.attacks.oracle_guided import OracleGuidedAttack, attack_mapping
from repro.camo import CamouflageLibrary, camouflage_cell
from repro.logic import TruthTable
from repro.netlist import Netlist, extract_function
from repro.flow import obfuscate_with_assignment
from repro.logic import BoolFunction


@pytest.fixture
def single_camo_nand(library):
    """One camouflaged NAND2 feeding the only output."""
    camo_nand = camouflage_cell(library["NAND2"])
    camo_library = CamouflageLibrary([camo_nand])
    merged = camo_library.as_cell_library(include=library)
    netlist = Netlist("tiny", merged)
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_output("y")
    netlist.add_instance("CAMO_NAND2", [a, b], output="y", name="u_camo")
    return netlist, {"u_camo": list(camo_nand.plausible)}


class TestOracleGuidedAttackSmall:
    @pytest.mark.parametrize(
        "true_function",
        [
            lambda a, b: 1 - (a & b),  # NAND
            lambda a, b: 1 - a,        # ~A
            lambda a, b: 1,            # constant 1
        ],
    )
    def test_recovers_true_behaviour(self, single_camo_nand, true_function):
        netlist, plausible = single_camo_nand
        attack = OracleGuidedAttack(netlist, plausible, max_queries=16)

        def oracle(word):
            return true_function(word & 1, (word >> 1) & 1)

        result = attack.run(oracle)
        assert result.success
        assert result.num_queries <= 4
        assert result.recovered_function == [oracle(word) for word in range(4)]
        # The witness configuration must reproduce the oracle exactly.
        realised = extract_function(netlist, cell_functions=result.configuration)
        assert realised.lookup_table() == result.recovered_function

    def test_converges_on_exact_query_budget(self, single_camo_nand):
        # Recovering ~a needs exactly two DIPs; a budget of exactly two must
        # therefore succeed (the budget check happens only when another
        # distinguishing input actually remains).
        netlist, plausible = single_camo_nand
        baseline = OracleGuidedAttack(netlist, plausible, max_queries=16)
        needed = baseline.run(lambda word: 1 - (word & 1)).num_queries
        attack = OracleGuidedAttack(netlist, plausible, max_queries=needed)
        result = attack.run(lambda word: 1 - (word & 1))
        assert result.success
        assert result.num_queries == needed
        # One query fewer genuinely fails.
        starved = OracleGuidedAttack(netlist, plausible, max_queries=needed - 1)
        assert not starved.run(lambda word: 1 - (word & 1)).success

    def test_query_budget_respected(self, single_camo_nand):
        netlist, plausible = single_camo_nand
        attack = OracleGuidedAttack(netlist, plausible, max_queries=0)
        result = attack.run(lambda word: 1)
        assert not result.success
        assert result.num_queries == 0

    def test_empty_plausible_set_rejected(self, single_camo_nand):
        netlist, _ = single_camo_nand
        with pytest.raises(ValueError):
            OracleGuidedAttack(netlist, {"u_camo": []})


class TestIncrementalSolverUsage:
    def test_dip_loop_builds_exactly_one_solver(self, single_camo_nand, monkeypatch):
        import repro.attacks.oracle_guided as module

        constructed = []
        real_solver = module.SatSolver

        class CountingSolver(real_solver):
            def __init__(self, *args, **kwargs):
                constructed.append(self)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(module, "SatSolver", CountingSolver)
        netlist, plausible = single_camo_nand
        attack = module.OracleGuidedAttack(netlist, plausible, max_queries=16)
        result = attack.run(lambda word: 1 - (word & (word >> 1) & 1))
        assert result.success
        assert len(constructed) == 1, "the DIP loop must reuse one incremental solver"
        assert constructed[0] is attack.solver
        assert attack.solver.solve_calls >= result.num_queries + 1

    def test_cnf_vars_bounded_across_iterations(self, single_camo_nand):
        netlist, plausible = single_camo_nand
        attack = OracleGuidedAttack(netlist, plausible, max_queries=16)
        vars_before_run = attack.num_cnf_vars
        growth_per_query = []

        def oracle(word):
            growth_per_query.append(attack.num_cnf_vars)
            return 1 - (word & 1)  # ~a

        result = attack.run(oracle)
        assert result.success
        assert result.num_queries >= 2
        # A DIP query itself allocates nothing: the formula at the first
        # oracle call is exactly the once-encoded miter.
        assert growth_per_query[0] == vars_before_run
        # Each observation adds at most a fixed number of variables (two
        # circuit copies), so the per-iteration footprint is bounded and
        # growth is linear, not quadratic.
        per_observation = 2 * len(netlist.topological_order())
        deltas = [
            later - earlier
            for earlier, later in zip(growth_per_query, growth_per_query[1:])
        ]
        assert all(delta <= per_observation for delta in deltas)
        assert attack.num_cnf_vars - vars_before_run <= per_observation * result.num_queries

    def test_constant_true_variable_is_persistent(self, single_camo_nand):
        netlist, plausible = single_camo_nand
        attack = OracleGuidedAttack(netlist, plausible, max_queries=16)
        before = attack.num_cnf_vars
        # Constant-input construction reuses the persistent true variable.
        literals_a = attack._constant_inputs(0b01)
        literals_b = attack._constant_inputs(0b10)
        assert attack.num_cnf_vars == before
        true_vars = {abs(literal) for literal in literals_a.values()}
        true_vars |= {abs(literal) for literal in literals_b.values()}
        assert true_vars == {attack._true_var}

    def test_solver_stats_surfaced(self, single_camo_nand):
        netlist, plausible = single_camo_nand
        attack = OracleGuidedAttack(netlist, plausible, max_queries=16)
        result = attack.run(lambda word: 1)
        assert result.solver_stats["solve_calls"] == attack.solver.solve_calls
        assert result.solver_stats["propagations"] > 0


class TestPresampleTranscript:
    """Transcript pins for the on-by-default presampling phase."""

    @pytest.fixture(scope="class")
    def small_mapping(self, library):
        f_and = BoolFunction(
            [TruthTable.variable(0, 2) & TruthTable.variable(1, 2)], name="and"
        )
        f_xor = BoolFunction(
            [TruthTable.variable(0, 2) ^ TruthTable.variable(1, 2)], name="xor"
        )
        return obfuscate_with_assignment([f_and, f_xor], library=library, effort="fast")

    def test_default_transcript_is_presampled_and_seeded(self, small_mapping, monkeypatch):
        from repro.sim.patterns import RandomPatternSource
        from repro.sim.prefilter import FUZZ_ENV_VAR

        monkeypatch.delenv(FUZZ_ENV_VAR, raising=False)
        first = attack_mapping(small_mapping.mapping, true_select=1, max_queries=32)
        second = attack_mapping(small_mapping.mapping, true_select=1, max_queries=32)
        assert first.success and second.success
        # The fuzz default turns presampling on; the presample words are the
        # seeded distinct stream, capped at the input space, and the whole
        # transcript (presample + DIPs) is reproducible run to run.
        assert len(first.presample_queries) > 0
        num_inputs = len(small_mapping.mapping.netlist.primary_inputs)
        expected_words = RandomPatternSource(101).words(
            num_inputs, 32, distinct=True
        )
        assert first.presample_queries == expected_words
        assert first.presample_queries == second.presample_queries
        assert first.queries == second.queries
        assert first.recovered_function == second.recovered_function

    def test_presample_matches_cold_transcript_function(self, small_mapping, monkeypatch):
        from repro.sim.prefilter import FUZZ_ENV_VAR

        monkeypatch.delenv(FUZZ_ENV_VAR, raising=False)
        presampled = attack_mapping(small_mapping.mapping, true_select=0, max_queries=32)
        cold = attack_mapping(
            small_mapping.mapping, true_select=0, max_queries=32, presample=0
        )
        assert presampled.success and cold.success
        assert presampled.recovered_function == cold.recovered_function
        assert cold.presample_queries == []
        # Full-space presampling replaces DIP queries outright on this tiny
        # workload: the miter UNSAT proof is skipped, not just accelerated.
        assert presampled.total_oracle_queries >= len(presampled.presample_queries)

    def test_opt_out_restores_cold_transcript(self, small_mapping, monkeypatch):
        from repro.sim.prefilter import FUZZ_ENV_VAR

        monkeypatch.setenv(FUZZ_ENV_VAR, "0")
        opted_out = attack_mapping(small_mapping.mapping, true_select=1, max_queries=32)
        cold = attack_mapping(
            small_mapping.mapping, true_select=1, max_queries=32, presample=0
        )
        assert opted_out.presample_queries == []
        assert opted_out.queries == cold.queries
        assert opted_out.recovered_function == cold.recovered_function


class TestSolveBudgetExhaustion:
    def test_budget_exhaustion_reports_timed_out(self, single_camo_nand, monkeypatch):
        from repro.faults import FAULTS_ENV_VAR, reset_fault_state
        from repro.sim.prefilter import FUZZ_ENV_VAR

        netlist, plausible = single_camo_nand
        # Every solver call returns UNKNOWN: the attack must surface the
        # exhaustion as timed_out=False-success instead of claiming the
        # camouflage "withstood" the attack.
        monkeypatch.setenv(FUZZ_ENV_VAR, "0")  # no presample shortcut
        monkeypatch.setenv(FAULTS_ENV_VAR, "solver_unknown:count=0")
        reset_fault_state()
        try:
            attack = OracleGuidedAttack(netlist, plausible, max_queries=16)
            result = attack.run(lambda word: 1 - (word & 1))
            assert not result.success
            assert result.timed_out
            assert result.num_queries == 0  # partial progress is reported
        finally:
            monkeypatch.delenv(FAULTS_ENV_VAR)
            reset_fault_state()

    def test_unbudgeted_attack_never_times_out(self, single_camo_nand):
        netlist, plausible = single_camo_nand
        attack = OracleGuidedAttack(netlist, plausible, max_queries=16)
        result = attack.run(lambda word: 1 - (word & 1))
        assert result.success
        assert not result.timed_out


class TestAttackAgainstMapping:
    def test_recovers_configured_viable_function(self, library):
        # Two tiny 2-input / 1-output viable functions keep the DIP loop fast.
        f_and = BoolFunction([TruthTable.variable(0, 2) & TruthTable.variable(1, 2)], name="and")
        f_or = BoolFunction([TruthTable.variable(0, 2) | TruthTable.variable(1, 2)], name="or")
        result = obfuscate_with_assignment([f_and, f_or], library=library, effort="fast")
        outcome = attack_mapping(result.mapping, true_select=1, max_queries=32)
        assert outcome.success
        view = result.assignment.apply([f_and, f_or])[1]
        assert outcome.recovered_function == view.lookup_table()
        # An oracle-equipped adversary defeats camouflaging with few queries —
        # which is exactly why the paper's threat model excludes oracle access.
        assert outcome.num_queries <= 4

"""Tests for the wide-netlist (windowed) oracle-guided attack path."""

import pytest

from repro.netlist.generate import random_netlist as build_random_netlist
from repro.attacks.oracle_guided import (
    OracleGuidedAttack,
    attack_netlist,
    attack_windowed,
)
from repro.flow.target import obfuscate_netlist
from repro.ga.engine import GAParameters
from repro.netlist.simulate import extract_function


TINY_GA = GAParameters(population_size=4, generations=1, seed=1)


@pytest.fixture(scope="module")
def wide_result(library):
    """A 24-input windowed obfuscation (camouflage-only, fast to attack)."""
    netlist = build_random_netlist(
        5, library, num_inputs=24, num_cells=18, num_outputs=4
    )
    result = obfuscate_netlist(
        netlist, max_window_inputs=6, decoys_per_window=0, seed=3,
    )
    assert result.verification.ok
    return result


class TestWindowedAttack:
    def test_wide_attack_succeeds_end_to_end(self, wide_result):
        outcome = attack_windowed(wide_result, max_queries=64, presample=32)
        assert outcome.success
        # The wide path never materialises the exponential lookup table.
        assert outcome.recovered_function == []
        assert outcome.total_oracle_queries == 32 + outcome.num_queries
        # The recovered configuration is drawn from the plausible families.
        plausible = wide_result.instance_plausible()
        for name, table in outcome.configuration.items():
            assert table in plausible[name]

    def test_wide_attack_deterministic(self, wide_result):
        first = attack_windowed(wide_result, max_queries=64, presample=16)
        second = attack_windowed(wide_result, max_queries=64, presample=16)
        assert first.queries == second.queries
        assert first.presample_queries == second.presample_queries
        assert first.success == second.success

    def test_budget_exhaustion_reports_failure(self, wide_result):
        outcome = attack_windowed(wide_result, max_queries=0, presample=0)
        assert not outcome.success or outcome.num_queries == 0

    def test_small_netlist_keeps_exact_recovery(self, library):
        """Below the width limit the classic exhaustive audit still runs."""
        netlist = build_random_netlist(11, library, num_cells=12)
        result = obfuscate_netlist(
            netlist, max_window_inputs=5, decoys_per_window=0,
            ga_parameters=TINY_GA, seed=2,
        )
        outcome = attack_windowed(result, max_queries=128, presample=16)
        assert outcome.success
        assert (
            outcome.recovered_function
            == extract_function(netlist).lookup_table()
        )

    def test_oracle_batch_equivalent_to_per_word(self, library):
        """run() produces the same transcript with and without oracle_batch."""
        netlist = build_random_netlist(11, library, num_cells=12)
        result = obfuscate_netlist(
            netlist, max_window_inputs=5, decoys_per_window=0,
            ga_parameters=TINY_GA, seed=2,
        )
        truth = extract_function(
            result.netlist, cell_functions=result.true_configuration
        ).lookup_table()
        plausible = result.instance_plausible()

        plain = OracleGuidedAttack(
            result.netlist, plausible, max_queries=64, presample=8
        ).run(lambda word: truth[word])
        batched = OracleGuidedAttack(
            result.netlist, plausible, max_queries=64, presample=8
        ).run(
            lambda word: truth[word],
            oracle_batch=lambda words: [truth[w] for w in words],
        )
        assert plain.queries == batched.queries
        assert plain.presample_queries == batched.presample_queries
        assert plain.success == batched.success
        assert plain.recovered_function == batched.recovered_function


class TestAttackNetlist:
    def test_attack_netlist_on_stitched(self, wide_result):
        outcome = attack_netlist(
            wide_result.netlist,
            wide_result.instance_plausible(),
            wide_result.true_configuration,
            max_queries=64,
            presample=16,
        )
        assert outcome.success

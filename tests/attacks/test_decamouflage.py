"""Unit tests for the SAT-based adversary (decamouflaging oracle)."""

import pytest

from repro.attacks import PlausibleFunctionOracle, is_function_plausible
from repro.camo import camouflage_cell
from repro.logic import BoolFunction, TruthTable
from repro.netlist import Netlist, standard_cell_library
from repro.sboxes import optimal_sboxes


@pytest.fixture
def tiny_camo_netlist(library):
    """One camouflaged NAND2: plausible behaviours are NAND, ~a, ~b, 0, 1."""
    camo_nand = camouflage_cell(library["NAND2"])
    from repro.camo import CamouflageLibrary

    camo_library = CamouflageLibrary([camo_nand])
    merged = camo_library.as_cell_library(include=library)
    netlist = Netlist("tiny", merged)
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_output("y")
    netlist.add_instance("CAMO_NAND2", [a, b], output="y", name="u_camo")
    plausible = {"u_camo": list(camo_nand.plausible)}
    return netlist, plausible


class TestOracleOnTinyCircuit:
    def test_plausible_candidates(self, tiny_camo_netlist):
        netlist, plausible = tiny_camo_netlist
        oracle = PlausibleFunctionOracle(netlist, plausible)
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        for table in (~(a & b), ~a, ~b, TruthTable.constant(2, True), TruthTable.constant(2, False)):
            candidate = BoolFunction([table], name="candidate")
            result = oracle.is_plausible(candidate)
            assert result.plausible
            assert result.witness["u_camo"] == table

    def test_implausible_candidates(self, tiny_camo_netlist):
        netlist, plausible = tiny_camo_netlist
        oracle = PlausibleFunctionOracle(netlist, plausible)
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        for table in (a, b, a & b, a ^ b):
            assert not oracle.is_plausible(BoolFunction([table]))

    def test_interface_validation(self, tiny_camo_netlist):
        netlist, plausible = tiny_camo_netlist
        oracle = PlausibleFunctionOracle(netlist, plausible)
        with pytest.raises(ValueError):
            oracle.is_plausible(BoolFunction([TruthTable.variable(0, 3)]))
        with pytest.raises(ValueError):
            oracle.is_plausible(
                BoolFunction([TruthTable.variable(0, 2), TruthTable.variable(1, 2)])
            )

    def test_empty_plausible_set_rejected(self, tiny_camo_netlist):
        netlist, _ = tiny_camo_netlist
        with pytest.raises(ValueError):
            PlausibleFunctionOracle(netlist, {"u_camo": []})

    def test_any_interpretation_search(self, tiny_camo_netlist):
        netlist, plausible = tiny_camo_netlist
        oracle = PlausibleFunctionOracle(netlist, plausible)
        a = TruthTable.variable(0, 2)
        # ~a is plausible as-is; a is not plausible under any input relabelling
        # either (the family contains no positive projection).
        assert oracle.is_plausible_under_any_interpretation(BoolFunction([~a]))
        assert not oracle.is_plausible_under_any_interpretation(BoolFunction([a]))

    def test_max_permutations_cap(self, tiny_camo_netlist):
        netlist, plausible = tiny_camo_netlist
        oracle = PlausibleFunctionOracle(netlist, plausible)
        a = TruthTable.variable(0, 2)
        result = oracle.is_plausible_under_any_interpretation(
            BoolFunction([~a]), max_permutations=0
        )
        assert not result.plausible


class TestIncrementalOracle:
    def test_queries_share_one_persistent_solver(self, tiny_camo_netlist):
        # prefilter=False: this test pins the solver call count, which the
        # simulation pre-filter would legitimately reduce (REPRO_FUZZ must
        # not change the outcome of the tier-1 suite).
        netlist, plausible = tiny_camo_netlist
        oracle = PlausibleFunctionOracle(netlist, plausible, prefilter=False)
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        oracle.is_plausible(BoolFunction([~a]))
        solver = oracle._solver
        assert solver is not None
        vars_after_first = solver.num_vars
        oracle.is_plausible(BoolFunction([~(a & b)]))
        oracle.is_plausible(BoolFunction([a]))
        # Same solver, same encoding: plain queries never grow the formula.
        assert oracle._solver is solver
        assert solver.num_vars == vars_after_first
        assert solver.solve_calls == 3
        assert oracle.solver_stats()["solve_calls"] == 3

    def test_verdicts_stable_across_interleaved_queries(self, tiny_camo_netlist):
        # Assumption-based queries must not contaminate one another.
        netlist, plausible = tiny_camo_netlist
        oracle = PlausibleFunctionOracle(netlist, plausible)
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        for _ in range(3):
            assert oracle.is_plausible(BoolFunction([~a]))
            assert not oracle.is_plausible(BoolFunction([a]))
            assert oracle.is_plausible(BoolFunction([~(a & b)]))
            assert not oracle.is_plausible(BoolFunction([a ^ b]))

    def test_enumerate_witnesses(self, tiny_camo_netlist):
        netlist, plausible = tiny_camo_netlist
        oracle = PlausibleFunctionOracle(netlist, plausible)
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        # Exactly one plausible behaviour realises each candidate here.
        witnesses = oracle.enumerate_witnesses(BoolFunction([~a]))
        assert [w["u_camo"] for w in witnesses] == [~a]
        assert oracle.enumerate_witnesses(BoolFunction([a])) == []
        # The blocking clauses of a finished enumeration are retired: later
        # queries and enumerations see the full configuration space again.
        assert oracle.is_plausible(BoolFunction([~a]))
        again = oracle.enumerate_witnesses(BoolFunction([~a]))
        assert [w["u_camo"] for w in again] == [~a]
        # A limit caps the enumeration.
        assert len(oracle.enumerate_witnesses(BoolFunction([~(a & b)]), limit=1)) == 1


class TestOracleOnObfuscatedDesign:
    def test_both_viable_functions_plausible(self, small_obfuscation):
        mapping = small_obfuscation.mapping
        views = small_obfuscation.assignment.apply(small_obfuscation.viable_functions)
        oracle = PlausibleFunctionOracle.from_mapping(mapping)
        outcome = oracle.is_plausible(views[1])
        assert outcome.plausible
        # The witness configuration must cover every camouflaged instance.
        assert set(outcome.witness) == set(mapping.camouflaged_instances())

    def test_wrapper_function(self, small_obfuscation):
        views = small_obfuscation.assignment.apply(small_obfuscation.viable_functions)
        assert is_function_plausible(small_obfuscation.mapping, views[0])

    def test_unrelated_function_not_plausible(self, small_obfuscation):
        # A third S-box that was never merged should (virtually always) be
        # implausible under the designer's pin view.
        other = optimal_sboxes(3)[2]
        view = other  # identity interpretation
        result = is_function_plausible(small_obfuscation.mapping, view)
        assert not result.plausible

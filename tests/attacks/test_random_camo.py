"""Unit tests for the random-camouflaging baseline."""

import pytest

from repro.attacks import random_camouflage_experiment, randomly_camouflage
from repro.camo.cells import CAMO_PREFIX
from repro.netlist import extract_function


class TestRandomlyCamouflage:
    def test_fraction_zero_keeps_everything_ordinary(self, present_netlist):
        circuit = randomly_camouflage(present_netlist, fraction=0.0, seed=1)
        assert circuit.camouflaged_instances == []
        assert circuit.netlist.num_instances() == present_netlist.num_instances()

    def test_fraction_one_camouflages_everything_possible(self, present_netlist):
        circuit = randomly_camouflage(present_netlist, fraction=1.0, seed=1)
        camo_count = sum(
            1 for inst in circuit.netlist.instances if inst.cell.startswith(CAMO_PREFIX)
        )
        assert camo_count == len(circuit.camouflaged_instances)
        assert camo_count >= present_netlist.num_instances() - _non_camouflageable(present_netlist)

    def test_behaviour_unchanged(self, present, present_netlist):
        circuit = randomly_camouflage(present_netlist, fraction=0.6, seed=2)
        assert extract_function(circuit.netlist).lookup_table() == present.lookup_table()
        # Area is unchanged because camouflaged cells are look-alikes.
        assert circuit.area() == pytest.approx(present_netlist.area())

    def test_true_configuration_covers_camouflaged_instances(self, present_netlist):
        circuit = randomly_camouflage(present_netlist, fraction=0.5, seed=3)
        assert set(circuit.true_configuration) == set(circuit.camouflaged_instances)

    def test_deterministic_given_seed(self, present_netlist):
        first = randomly_camouflage(present_netlist, fraction=0.5, seed=9)
        second = randomly_camouflage(present_netlist, fraction=0.5, seed=9)
        assert first.camouflaged_instances == second.camouflaged_instances

    def test_invalid_fraction(self, present_netlist):
        with pytest.raises(ValueError):
            randomly_camouflage(present_netlist, fraction=1.5)


class TestRandomCamouflageExperiment:
    def test_true_function_stays_plausible_others_ruled_out(
        self, present, present_netlist, two_sboxes
    ):
        other = two_sboxes[1]
        experiment = random_camouflage_experiment(
            present_netlist, [present, other], fraction=0.5, seed=3
        )
        assert experiment.plausible[0] is True
        assert experiment.plausible[1] is False
        assert experiment.num_plausible == 1


def _non_camouflageable(netlist):
    return sum(1 for inst in netlist.instances if inst.cell == "BUF")

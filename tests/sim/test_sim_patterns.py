"""Unit tests for pattern batches, random sources, and replay buffers."""

import pytest

from repro._bitops import variable_pattern
from repro.sim import PatternBatch, RandomPatternSource, ReplayBuffer


class TestPatternBatch:
    def test_from_words_roundtrip(self):
        words = [0b101, 0b010, 0b111, 0b000, 0b101]
        batch = PatternBatch.from_words(3, words)
        assert batch.num_inputs == 3
        assert batch.num_patterns == 5
        assert batch.words() == words
        assert [batch.word_at(k) for k in range(5)] == words

    def test_lane_layout(self):
        batch = PatternBatch.from_words(2, [0b01, 0b10, 0b11])
        # Input 0 is set in patterns 0 and 2; input 1 in patterns 1 and 2.
        assert batch.lane(0) == 0b101
        assert batch.lane(1) == 0b110
        assert batch.mask == 0b111

    def test_exhaustive_is_truth_table_order(self):
        batch = PatternBatch.exhaustive(3)
        assert batch.num_patterns == 8
        for var in range(3):
            assert batch.lane(var) == variable_pattern(var, 3)
        assert batch.words() == list(range(8))

    def test_exhaustive_zero_inputs(self):
        batch = PatternBatch.exhaustive(0)
        assert batch.num_patterns == 1
        assert batch.words() == [0]

    def test_random_is_deterministic(self):
        first = PatternBatch.random(5, 32, seed=9)
        second = PatternBatch.random(5, 32, seed=9)
        other = PatternBatch.random(5, 32, seed=10)
        assert first.words() == second.words()
        assert first.words() != other.words()

    def test_word_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PatternBatch.from_words(2, [4])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            PatternBatch.from_words(2, [])


class TestRandomPatternSource:
    def test_stream_is_deterministic(self):
        a = RandomPatternSource(3)
        b = RandomPatternSource(3)
        assert a.batch(4, 16).words() == b.batch(4, 16).words()
        # Successive draws differ but stay aligned between the two streams.
        assert a.batch(4, 16).words() == b.batch(4, 16).words()
        assert a.batches_drawn == 2

    def test_distinct_words(self):
        source = RandomPatternSource(1)
        words = source.words(4, 10, distinct=True)
        assert len(words) == len(set(words)) == 10

    def test_distinct_words_capped_at_space(self):
        source = RandomPatternSource(1)
        words = source.words(3, 100, distinct=True)
        assert sorted(words) == list(range(8))


class TestReplayBuffer:
    def test_deduplicates_and_orders_recent_first(self):
        buffer = ReplayBuffer()
        assert buffer.add(3)
        assert not buffer.add(3)
        buffer.extend([7, 1])
        assert buffer.words() == [1, 7, 3]
        assert 7 in buffer and 2 not in buffer

    def test_capacity_evicts_oldest(self):
        buffer = ReplayBuffer(capacity=2)
        buffer.extend([1, 2, 3])
        assert buffer.words() == [3, 2]
        # The evicted word can be re-added.
        assert buffer.add(1)

    def test_batch_filters_out_of_range_words(self):
        buffer = ReplayBuffer()
        buffer.extend([1, 300, 2])
        batch = buffer.batch(4)
        assert batch is not None
        assert sorted(batch.words()) == [1, 2]

    def test_empty_batch_is_none(self):
        assert ReplayBuffer().batch(4) is None

"""Unit tests for the packed word-parallel simulation engines."""

import random

import pytest

from repro.logic import TruthTable
from repro.netlist import Netlist, NetlistError, extract_function, simulate_assignment
from repro.sim import (
    AigSimulator,
    NetlistSimulator,
    PatternBatch,
    simulate_batch,
    simulate_words,
    sweep_select_space,
)
from repro.sim.engine import evaluate_table_lanes
from repro.synth import synthesize


class TestEvaluateTableLanes:
    @pytest.mark.parametrize("bits", range(16))
    def test_all_two_input_functions(self, bits):
        table = TruthTable(2, bits)
        batch = PatternBatch.exhaustive(2)
        lane = evaluate_table_lanes(bits, 2, [batch.lane(0), batch.lane(1)], batch.mask)
        assert lane == bits  # exhaustive lanes reproduce the table itself

    def test_constant_cells(self):
        mask = 0b1111
        assert evaluate_table_lanes(0, 3, [0, 0, 0], mask) == 0
        assert evaluate_table_lanes(0xFF, 3, [0, 0, 0], mask) == mask
        # Zero-arity constants take the value of their single table row.
        assert evaluate_table_lanes(1, 0, [], mask) == mask
        assert evaluate_table_lanes(0, 0, [], mask) == 0

    def test_matches_pointwise_evaluation(self):
        rng = random.Random(5)
        for _ in range(25):
            arity = rng.randrange(1, 5)
            bits = rng.getrandbits(1 << arity)
            table = TruthTable(arity, bits)
            words = [rng.getrandbits(arity) for _ in range(17)]
            batch = PatternBatch.from_words(arity, words)
            lane = evaluate_table_lanes(bits, arity, list(batch.lanes), batch.mask)
            for position, word in enumerate(words):
                expected = table.evaluate([(word >> var) & 1 for var in range(arity)])
                assert (lane >> position) & 1 == expected


@pytest.fixture
def majority_netlist(library):
    netlist = Netlist("maj", library)
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    c = netlist.add_input("c")
    netlist.add_output("y")
    ab = netlist.add_instance("AND2", [a, b]).output
    ac = netlist.add_instance("AND2", [a, c]).output
    bc = netlist.add_instance("AND2", [b, c]).output
    netlist.add_instance("OR3", [ab, ac, bc], output="y")
    return netlist


class TestNetlistSimulator:
    def test_simulate_words_matches_rowwise(self, majority_netlist):
        words = list(range(8)) + [3, 5]
        outputs = simulate_words(majority_netlist, words)
        for word, output in zip(words, outputs):
            bits = [(word >> k) & 1 for k in range(3)]
            assert output == (1 if sum(bits) >= 2 else 0)

    def test_net_lanes_cover_every_net(self, majority_netlist):
        batch = PatternBatch.exhaustive(3)
        lanes = simulate_batch(majority_netlist, batch)
        for net in majority_netlist.nets():
            assert net in lanes

    def test_extract_function_matches_legacy(self, majority_netlist):
        packed = NetlistSimulator(majority_netlist).extract_function()
        legacy = extract_function(majority_netlist)
        assert packed.lookup_table() == legacy.lookup_table()
        assert packed.input_names == legacy.input_names
        assert packed.output_names == legacy.output_names

    def test_cell_function_overrides(self, majority_netlist):
        simulator = NetlistSimulator(majority_netlist)
        or3 = next(i for i in majority_netlist.instances if i.cell == "OR3")
        override = {or3.name: TruthTable.constant(3, True)}
        outputs = simulator.simulate_words(list(range(8)), override)
        assert outputs == [1] * 8
        # Construction-level overrides apply to every call; call-level wins.
        pinned = NetlistSimulator(majority_netlist, cell_functions=override)
        assert pinned.simulate_words([0]) == [1]
        assert pinned.simulate_words([0], {or3.name: TruthTable.constant(3, False)}) == [0]

    def test_batch_width_mismatch_rejected(self, majority_netlist):
        with pytest.raises(NetlistError):
            NetlistSimulator(majority_netlist).output_lanes(PatternBatch.exhaustive(2))

    def test_override_arity_mismatch_rejected(self, majority_netlist):
        override = {majority_netlist.instances[0].name: TruthTable.constant(4, True)}
        with pytest.raises(NetlistError):
            NetlistSimulator(majority_netlist).simulate_words([0], override)

    def test_empty_word_list(self, majority_netlist):
        assert NetlistSimulator(majority_netlist).simulate_words([]) == []


class TestAigSimulator:
    def test_matches_word_evaluation(self, present):
        aig = synthesize(present, effort="fast").aig
        simulator = AigSimulator(aig)
        words = list(range(16))
        assert simulator.simulate_words(words) == [aig.evaluate_word(w) for w in words]
        # The Aig convenience method routes through the same engine.
        assert aig.evaluate_words(words) == simulator.simulate_words(words)

    def test_batch_width_mismatch_rejected(self, present):
        aig = synthesize(present, effort="fast").aig
        with pytest.raises(ValueError):
            AigSimulator(aig).output_lanes(PatternBatch.exhaustive(2))


class TestSelectSweep:
    def test_matches_per_select_extraction(self, camo_mapping_two, merged_two):
        tables = sweep_select_space(
            camo_mapping_two.netlist,
            camo_mapping_two.select_order,
            camo_mapping_two.instance_selects,
            camo_mapping_two.instance_configs,
        )
        assert len(tables) == 1 << len(camo_mapping_two.select_order)
        for select_value in range(len(merged_two.viable_functions)):
            configuration = camo_mapping_two.configuration_for_select(select_value)
            reference = extract_function(
                camo_mapping_two.netlist,
                cell_functions=configuration.as_cell_functions(),
            ).lookup_table()
            assert tables[select_value] == reference

    def test_mapping_method_delegates(self, camo_mapping_two):
        direct = sweep_select_space(
            camo_mapping_two.netlist,
            camo_mapping_two.select_order,
            camo_mapping_two.instance_selects,
            camo_mapping_two.instance_configs,
        )
        assert camo_mapping_two.realised_lookup_tables() == direct

"""Sharded-vs-unsharded equivalence: verdicts must not depend on ``jobs``.

Sharding fans contiguous slices of a pattern batch out over worker
processes; everything observable — output lanes, extracted functions, fuzz
verdicts, counterexample words, replay-buffer contents, presample DIP sets —
must be bit-identical for every ``jobs`` value.  The suite drives randomized
netlists through jobs ∈ {1, 2, 4} with the shard threshold forced low so the
multi-shard path actually runs (the host may have a single CPU; the pool
falls back gracefully, which is itself part of the contract).
"""

import random

import pytest

from repro.logic import BoolFunction, TruthTable
from repro.netlist import Netlist, extract_function, standard_cell_library
from repro.sim import NetlistSimulator, PatternBatch, ReplayBuffer
from repro.sim.prefilter import fuzz_netlist_vs_function, fuzz_netlist_vs_netlist
from repro.sim.shard import (
    resolve_shards,
    sharded_extract_function,
    sharded_first_difference_vs_function,
    sharded_output_lanes,
)

JOBS_SWEEP = (1, 2, 4)


def random_netlist(rng, library, num_inputs=6, num_outputs=3, num_cells=24):
    """A random connected netlist over the standard cell library."""
    netlist = Netlist("rand", library)
    nets = [netlist.add_input(f"i{k}") for k in range(num_inputs)]
    cells = [cell for cell in library.cells() if cell.num_inputs >= 1]
    for index in range(num_cells):
        cell = rng.choice(cells)
        inputs = [rng.choice(nets) for _ in range(cell.num_inputs)]
        output = f"w{index}"
        netlist.add_instance(cell.name, inputs, output=output)
        nets.append(output)
    for k in range(num_outputs):
        netlist.add_output(nets[-(k + 1)])
    return netlist


@pytest.fixture(scope="module")
def shard_library():
    return standard_cell_library()


@pytest.fixture(autouse=True)
def fake_cpus(monkeypatch):
    """Force real worker processes even on a single-CPU host."""
    import repro.parallel as parallel_module

    monkeypatch.setattr(parallel_module, "available_cpus", lambda: 4)


class TestPatternBatchSharding:
    def test_slice_preserves_words(self):
        batch = PatternBatch.random(5, 37, seed=9)
        piece = batch.slice(10, 7)
        assert piece.num_patterns == 7
        assert piece.words() == batch.words()[10:17]

    def test_slice_bounds_checked(self):
        batch = PatternBatch.random(4, 8, seed=1)
        with pytest.raises(ValueError):
            batch.slice(4, 5)
        with pytest.raises(ValueError):
            batch.slice(-1, 2)
        with pytest.raises(ValueError):
            batch.slice(0, 0)

    def test_split_reassembles_exactly(self):
        batch = PatternBatch.random(6, 100, seed=2)
        shards = batch.split(7)
        assert sum(piece.num_patterns for _, piece in shards) == 100
        words = []
        for offset, piece in shards:
            assert len(words) == offset
            words.extend(piece.words())
        assert words == batch.words()

    def test_split_clamps_to_pattern_count(self):
        batch = PatternBatch.random(4, 3, seed=3)
        shards = batch.split(16)
        assert len(shards) == 3
        assert all(piece.num_patterns == 1 for _, piece in shards)
        with pytest.raises(ValueError):
            batch.split(0)

    def test_zero_input_batches_survive(self):
        # 0-input workloads must not crash any constructor or the splitter.
        exhaustive = PatternBatch.exhaustive(0)
        assert exhaustive.num_patterns == 1
        randomized = PatternBatch.random(0, 5, seed=1)
        assert randomized.words() == [0] * 5
        shards = randomized.split(8)
        assert len(shards) == 5

    def test_zero_input_random_source(self):
        from repro.sim import RandomPatternSource

        source = RandomPatternSource(3)
        assert source.words(0, 4) == [0, 0, 0, 0]
        assert source.words(0, 4, distinct=True) == [0]

    def test_resolve_shards_thresholds(self):
        assert resolve_shards(10_000, 1) == 1
        assert resolve_shards(100, 4) == 1  # too narrow to be worth forking
        assert resolve_shards(10_000, 4, min_shard_patterns=1024) == 4
        assert resolve_shards(3000, 4, min_shard_patterns=1024) == 2
        assert resolve_shards(10_000, 4, min_shard_patterns=0) == 4


class TestShardedLanes:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_output_lanes_identical_across_jobs(self, shard_library, seed):
        netlist = random_netlist(random.Random(seed), shard_library)
        batch = PatternBatch.random(6, 257, seed=seed + 10)
        reference = NetlistSimulator(netlist).output_lanes(batch)
        for jobs in JOBS_SWEEP:
            lanes = sharded_output_lanes(
                netlist, batch, jobs=jobs, min_shard_patterns=16
            )
            assert lanes == reference

    @pytest.mark.parametrize("seed", [4, 5])
    def test_extract_function_identical_across_jobs(self, shard_library, seed):
        netlist = random_netlist(random.Random(seed), shard_library)
        reference = extract_function(netlist)
        for jobs in JOBS_SWEEP:
            extracted = sharded_extract_function(
                netlist, jobs=jobs, min_shard_patterns=4
            )
            assert extracted.lookup_table() == reference.lookup_table()

    def test_first_difference_is_global_minimum(self, shard_library):
        netlist = random_netlist(random.Random(7), shard_library)
        truth = extract_function(netlist)
        # Flip one high row so the difference sits in a late shard, then also
        # an early row: the earliest position must always win.
        for flipped_rows in ([40], [40, 3], [63]):
            tables = []
            for table in truth.outputs:
                tables.append(table)
            bits = tables[0].bits
            for row in flipped_rows:
                bits ^= 1 << row
            candidate = BoolFunction(
                [TruthTable(6, bits)] + list(tables[1:]), name="flipped"
            )
            batch = PatternBatch.exhaustive(6)
            for jobs in JOBS_SWEEP:
                position = sharded_first_difference_vs_function(
                    netlist, candidate, batch, exhaustive=True,
                    jobs=jobs, min_shard_patterns=4,
                )
                assert position == min(flipped_rows)


class TestShardedFuzzVerdicts:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_fuzz_vs_function_verdicts_and_replay(self, shard_library, seed):
        rng = random.Random(seed)
        netlist = random_netlist(rng, shard_library)
        truth = extract_function(netlist)
        wrong_bits = truth.outputs[0].bits ^ (1 << rng.randrange(64))
        wrong = BoolFunction(
            [TruthTable(6, wrong_bits)] + list(truth.outputs[1:]), name="wrong"
        )
        for candidate in (truth, wrong):
            outcomes = []
            replays = []
            for jobs in JOBS_SWEEP:
                replay = ReplayBuffer()
                outcome = fuzz_netlist_vs_function(
                    netlist, candidate, replay=replay, jobs=jobs
                )
                outcomes.append(outcome)
                replays.append(list(replay))
            assert len({o.refuted for o in outcomes}) == 1
            assert len({o.proven for o in outcomes}) == 1
            assert len({o.counterexample for o in outcomes}) == 1
            assert all(words == replays[0] for words in replays)

    def test_wide_random_fuzz_identical_across_jobs(self, shard_library):
        # Wide (14-input) circuits leave the exhaustive regime: the fuzz
        # batch is random, and with a low shard threshold it actually forks.
        rng = random.Random(21)
        netlist = random_netlist(rng, shard_library, num_inputs=14, num_cells=40)
        truth_zero = BoolFunction(
            [TruthTable(14, 0) for _ in netlist.primary_outputs], name="zero"
        )
        results = []
        for jobs in JOBS_SWEEP:
            replay = ReplayBuffer()
            outcome = fuzz_netlist_vs_function(
                netlist, truth_zero, patterns=4096, replay=replay, jobs=jobs
            )
            results.append((outcome.counterexample, outcome.patterns, list(replay)))
        assert all(result == results[0] for result in results)

    def test_fuzz_vs_netlist_identical_across_jobs(self, shard_library):
        rng = random.Random(31)
        netlist_a = random_netlist(rng, shard_library)
        netlist_b = random_netlist(rng, shard_library)
        results = []
        for jobs in JOBS_SWEEP:
            replay = ReplayBuffer()
            outcome = fuzz_netlist_vs_netlist(
                netlist_a, netlist_b, replay=replay, jobs=jobs
            )
            results.append((outcome.counterexample, outcome.proven, list(replay)))
        assert all(result == results[0] for result in results)


class TestShardedPresample:
    def test_presample_dip_sets_identical_across_jobs(self, small_obfuscation):
        from repro.attacks.oracle_guided import attack_mapping

        mapping = small_obfuscation.mapping
        transcripts = []
        for jobs in JOBS_SWEEP:
            outcome = attack_mapping(
                mapping, true_select=1, max_queries=64, presample=16, jobs=jobs
            )
            assert outcome.success
            transcripts.append(
                (
                    outcome.presample_queries,
                    outcome.queries,
                    outcome.recovered_function,
                )
            )
        assert all(entry == transcripts[0] for entry in transcripts)

"""Tests for the select-dimension sharding of the camouflage sweep.

The historical ``sweep_select_space`` refused combined (data + select)
widths beyond ``SWEEP_WIDTH_LIMIT``.  It now shards the select dimension
into blocks that fit the packed width and fans them over the worker pool;
these tests pin that the sharded path is bit-identical to the single-pass
path by shrinking the limit so both are cheap to compute.
"""

import pytest

import repro.sim.engine as engine
from repro.camo.config import sweep_configurations
from repro.merge.merged import merge_functions
from repro.sboxes.optimal4 import optimal_sboxes
from repro.sim.engine import sweep_select_space
from repro.sim.shard import sharded_sweep_select_space
from repro.synth.script import synthesize
from repro.techmap.mapper import camouflage_map


@pytest.fixture(scope="module")
def mapping_and_width():
    """A Phase III mapping of two merged S-boxes (4 data + 1 select)."""
    design = merge_functions(optimal_sboxes(2))
    synthesis = synthesize(design.function, effort="fast")
    select_nets = [f"sel[{k}]" for k in range(design.num_selects)]
    mapping = camouflage_map(synthesis.netlist, select_nets)
    return mapping, design


class TestShardedSweep:
    def test_sharded_matches_single_pass(self, mapping_and_width):
        mapping, _ = mapping_and_width
        reference = sweep_select_space(
            mapping.netlist,
            mapping.select_order,
            mapping.instance_selects,
            mapping.instance_configs,
        )
        sharded = sharded_sweep_select_space(
            mapping.netlist,
            mapping.select_order,
            mapping.instance_selects,
            mapping.instance_configs,
        )
        assert sharded == reference

    def test_width_limit_lifted(self, mapping_and_width, monkeypatch):
        """Widths beyond the packed limit now shard instead of raising."""
        mapping, _ = mapping_and_width
        reference = sweep_select_space(
            mapping.netlist,
            mapping.select_order,
            mapping.instance_selects,
            mapping.instance_configs,
        )
        # Shrink the limit below the real combined width (4 data + selects):
        # the sweep must transparently fall over to select-block sharding.
        monkeypatch.setattr(engine, "SWEEP_WIDTH_LIMIT", 4)
        for jobs in (1, 2):
            sharded = sweep_select_space(
                mapping.netlist,
                mapping.select_order,
                mapping.instance_selects,
                mapping.instance_configs,
                jobs=jobs,
            )
            assert sharded == reference

    def test_data_width_beyond_limit_still_raises(
        self, mapping_and_width, monkeypatch
    ):
        mapping, _ = mapping_and_width
        monkeypatch.setattr(engine, "SWEEP_WIDTH_LIMIT", 3)  # < 4 data inputs
        with pytest.raises(ValueError, match="data variables"):
            sweep_select_space(
                mapping.netlist,
                mapping.select_order,
                mapping.instance_selects,
                mapping.instance_configs,
            )

    def test_sweep_configurations_delegates(self, mapping_and_width, monkeypatch):
        mapping, design = mapping_and_width
        reference = mapping.realised_lookup_tables()
        monkeypatch.setattr(engine, "SWEEP_WIDTH_LIMIT", 4)
        tables = sweep_configurations(
            mapping.netlist,
            mapping.select_order,
            mapping.instance_selects,
            mapping.instance_configs,
            jobs=2,
        )
        assert tables == reference
        # And the realised tables still match each configured extraction.
        permuted = design.assignment.apply(list(design.viable_functions))
        for select in range(len(permuted)):
            assert tables[select] == permuted[select].lookup_table()

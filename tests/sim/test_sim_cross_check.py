"""Cross-checks: packed engine vs row-by-row reference, fuzz vs SAT verdicts.

These are the regression guarantees of the sim subsystem: the word-parallel
engine must agree with :func:`repro.netlist.simulate.simulate_assignment`
bit-for-bit on arbitrary netlists, and every fuzz-before-SAT path must
return exactly the verdict the solver returns.
"""

import random

import pytest

from repro.attacks import PlausibleFunctionOracle
from repro.logic import BoolFunction, TruthTable
from repro.netlist import Netlist, simulate_assignment, standard_cell_library
from repro.sat import check_netlist_function
from repro.sim import NetlistSimulator, PatternBatch


def random_netlist(rng, library, num_inputs=4, num_instances=12, name="rand"):
    """Grow a random DAG netlist over the standard-cell library."""
    netlist = Netlist(name, library)
    nets = [netlist.add_input(f"i{k}") for k in range(num_inputs)]
    cells = [cell for cell in library.cells() if cell.num_inputs >= 1]
    for _ in range(num_instances):
        cell = rng.choice(cells)
        inputs = [rng.choice(nets) for _ in range(cell.num_inputs)]
        nets.append(netlist.add_instance(cell.name, inputs).output)
    outputs = rng.sample(nets[num_inputs:], min(3, num_instances))
    for index, net in enumerate(outputs):
        netlist.add_output(net)
    return netlist


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_packed_engine_matches_rowwise_reference(seed, library):
    rng = random.Random(seed)
    netlist = random_netlist(rng, library, num_inputs=4, num_instances=15)
    simulator = NetlistSimulator(netlist)
    batch = PatternBatch.exhaustive(4)
    lanes = simulator.output_lanes(batch)
    for word in range(16):
        assignment = {f"i{k}": (word >> k) & 1 for k in range(4)}
        values = simulate_assignment(netlist, assignment)
        for out_index, net in enumerate(netlist.primary_outputs):
            assert (lanes[out_index] >> word) & 1 == values[net], (
                f"mismatch at word {word}, output {net} (seed {seed})"
            )


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_packed_engine_matches_rowwise_with_overrides(seed, library):
    rng = random.Random(seed)
    netlist = random_netlist(rng, library, num_inputs=3, num_instances=10)
    # Override a random subset of instances with random same-arity tables.
    overrides = {}
    for instance in netlist.instances:
        if rng.random() < 0.4:
            arity = len(instance.inputs)
            overrides[instance.name] = TruthTable(arity, rng.getrandbits(1 << arity))
    simulator = NetlistSimulator(netlist)
    words = [rng.getrandbits(3) for _ in range(20)]
    packed = simulator.simulate_words(words, overrides)
    for word, output in zip(words, packed):
        assignment = {f"i{k}": (word >> k) & 1 for k in range(3)}
        values = simulate_assignment(netlist, assignment, cell_functions=overrides)
        expected = 0
        for out_index, net in enumerate(netlist.primary_outputs):
            expected |= values[net] << out_index
        assert output == expected


@pytest.mark.parametrize("seed", [21, 22, 23])
def test_fuzz_equivalence_verdicts_match_sat(seed, library):
    rng = random.Random(seed)
    netlist = random_netlist(rng, library, num_inputs=4, num_instances=12)
    from repro.netlist import extract_function

    truth = extract_function(netlist)
    wrong = BoolFunction(
        [~table if index == 0 else table for index, table in enumerate(truth.outputs)]
    )
    for candidate in (truth, wrong):
        with_fuzz = check_netlist_function(netlist, candidate, prefilter=True)
        without = check_netlist_function(netlist, candidate, prefilter=False)
        assert bool(with_fuzz) == bool(without)
        if not with_fuzz:
            # The fuzz counterexample must genuinely distinguish the pair.
            word = 0
            for index, net in enumerate(netlist.primary_inputs):
                word |= with_fuzz.counterexample[net] << index
            realised = extract_function(netlist)
            assert realised.evaluate_word(word) != candidate.evaluate_word(word)


class TestOraclePrefilterVerdictEquality:
    def test_verdicts_identical_on_obfuscated_design(self, small_obfuscation):
        mapping = small_obfuscation.mapping
        views = small_obfuscation.assignment.apply(small_obfuscation.viable_functions)
        from repro.sboxes import optimal_sboxes

        others = optimal_sboxes(4)[2:]
        eager = PlausibleFunctionOracle.from_mapping(mapping, prefilter=False)
        fuzzed = PlausibleFunctionOracle.from_mapping(mapping, prefilter=True)
        for candidate in list(views) + list(others):
            assert bool(eager.is_plausible(candidate)) == bool(
                fuzzed.is_plausible(candidate)
            )

    def test_fuzz_witness_is_exact(self, small_obfuscation):
        from repro.netlist import extract_function

        mapping = small_obfuscation.mapping
        view = small_obfuscation.assignment.apply(
            small_obfuscation.viable_functions
        )[0]
        oracle = PlausibleFunctionOracle.from_mapping(mapping, prefilter=True)
        outcome = oracle.is_plausible(view)
        assert outcome.plausible
        realised = extract_function(mapping.netlist, cell_functions=outcome.witness)
        assert realised.lookup_table() == view.lookup_table()


class TestPresampledAttack:
    def test_presample_recovers_identical_function(self, small_obfuscation):
        from repro.attacks.oracle_guided import attack_mapping

        mapping = small_obfuscation.mapping
        default = attack_mapping(mapping, true_select=1, max_queries=64, presample=0)
        fuzzed = attack_mapping(mapping, true_select=1, max_queries=64, presample=32)
        assert default.success and fuzzed.success
        assert default.recovered_function == fuzzed.recovered_function
        # Full-space presampling removes every DIP query.
        assert fuzzed.num_queries == 0
        assert fuzzed.total_oracle_queries == 1 << len(mapping.netlist.primary_inputs)
        # The replayed words are recorded for reuse.
        assert len(fuzzed.presample_queries) > 0

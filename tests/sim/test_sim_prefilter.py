"""Unit tests for the fuzz-before-SAT pre-filters."""

import pytest

from repro.logic import BoolFunction, TruthTable
from repro.netlist import Netlist
from repro.sim import ReplayBuffer, fuzz_enabled
from repro.sim.prefilter import (
    FUZZ_ENV_VAR,
    fuzz_netlist_vs_function,
    fuzz_netlist_vs_netlist,
    possibility_refute,
)


@pytest.fixture
def and_netlist(library):
    netlist = Netlist("and", library)
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_output("y")
    netlist.add_instance("AND2", [a, b], output="y")
    return netlist


class TestFuzzEnabled:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.delenv(FUZZ_ENV_VAR, raising=False)
        assert fuzz_enabled(True) is True
        assert fuzz_enabled(False) is False
        # Fuzz-before-SAT is on by default; REPRO_FUZZ opts *out*.
        assert fuzz_enabled(None) is True

    def test_environment_variable_opts_out(self, monkeypatch):
        monkeypatch.setenv(FUZZ_ENV_VAR, "1")
        assert fuzz_enabled(None) is True
        assert fuzz_enabled(False) is False
        for value in ("0", "false", "no", "off", " OFF "):
            monkeypatch.setenv(FUZZ_ENV_VAR, value)
            assert fuzz_enabled(None) is False
            assert fuzz_enabled(True) is True


class TestFuzzNetlistVsFunction:
    def test_small_space_is_complete(self, and_netlist):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        outcome = fuzz_netlist_vs_function(and_netlist, BoolFunction([a & b]))
        assert outcome.proven and not outcome.refuted

    def test_counterexample_is_genuine(self, and_netlist):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        outcome = fuzz_netlist_vs_function(and_netlist, BoolFunction([a | b]))
        assert outcome.refuted
        word = outcome.counterexample
        bits = [word & 1, (word >> 1) & 1]
        assert (bits[0] & bits[1]) != (bits[0] | bits[1])

    def test_counterexample_feeds_replay_buffer(self, and_netlist):
        replay = ReplayBuffer()
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        outcome = fuzz_netlist_vs_function(
            and_netlist, BoolFunction([a | b]), replay=replay
        )
        assert outcome.counterexample in replay


class TestFuzzNetlistVsNetlist:
    def test_equivalent_and_inequivalent(self, and_netlist, library):
        other = Netlist("and2", library)
        a = other.add_input("a")
        b = other.add_input("b")
        other.add_output("y")
        nand = other.add_instance("NAND2", [a, b]).output
        other.add_instance("INV", [nand], output="y")
        assert fuzz_netlist_vs_netlist(and_netlist, other).proven

        or_netlist = Netlist("or", library)
        a = or_netlist.add_input("a")
        b = or_netlist.add_input("b")
        or_netlist.add_output("y")
        or_netlist.add_instance("OR2", [a, b], output="y")
        assert fuzz_netlist_vs_netlist(and_netlist, or_netlist).refuted

    def test_interface_mismatch_rejected(self, and_netlist, library):
        wide = Netlist("wide", library)
        for name in ("a", "b", "c"):
            wide.add_input(name)
        wide.add_output("y")
        wide.add_instance("AND3", ["a", "b", "c"], output="y")
        with pytest.raises(ValueError):
            fuzz_netlist_vs_netlist(and_netlist, wide)


class TestPossibilityRefute:
    @pytest.fixture
    def camo_nand_netlist(self, library):
        from repro.camo import CamouflageLibrary, camouflage_cell

        camo_nand = camouflage_cell(library["NAND2"])
        merged = CamouflageLibrary([camo_nand]).as_cell_library(include=library)
        netlist = Netlist("tiny", merged)
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.add_output("y")
        netlist.add_instance("CAMO_NAND2", [a, b], output="y", name="u_camo")
        return netlist, {"u_camo": list(camo_nand.plausible)}

    def test_never_refutes_plausible_candidates(self, camo_nand_netlist):
        netlist, plausible = camo_nand_netlist
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        # Every member of the plausible family must survive the filter.
        for table in plausible["u_camo"]:
            assert possibility_refute(netlist, plausible, BoolFunction([table])) is None
        # AND is not in the family, but 0 and 1 are both achievable at every
        # word, so the (sound, incomplete) filter cannot refute it either.
        assert possibility_refute(netlist, plausible, BoolFunction([a & b])) is None

    def test_refutes_unachievable_outputs(self, library):
        # A plain AND instance (no camouflage freedom at all): any candidate
        # differing anywhere is refuted by the possibility analysis.
        netlist = Netlist("and", library)
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.add_output("y")
        netlist.add_instance("AND2", [a, b], output="y")
        candidate = BoolFunction([TruthTable.variable(0, 2)])
        word = possibility_refute(netlist, {}, candidate)
        assert word is not None
        bits = [word & 1, (word >> 1) & 1]
        assert (bits[0] & bits[1]) != bits[0]

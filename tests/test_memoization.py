"""Correctness of the cross-call memoisation layers added for the parallel
synthesis engine: cached results must be indistinguishable from fresh
computation."""

from __future__ import annotations

import pytest

from repro._bitops import popcount
from repro.aig.build import aig_from_function
from repro.aig.cuts import (
    clear_cut_function_cache,
    cut_function,
    cut_function_cache_size,
    enumerate_cuts,
)
from repro.aig.opt import clear_factored_form_cache, factored_form_cache_size
from repro.sboxes import optimal_sboxes, present_sbox
from repro.synth.script import SynthesisEffort, _apply_pass, optimize_aig, synthesize
from repro.techmap.absfunc import clear_subtree_function_cache, subtree_output_function
from repro.techmap.trees import decompose_into_trees


class TestPopcount:
    def test_matches_bin_count(self):
        for value in [0, 1, 2, 3, 255, 1 << 40, (1 << 70) - 1, 0xDEADBEEF]:
            assert popcount(value) == bin(value).count("1")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(-1)


class TestCutFunctionMemo:
    def test_cold_and_warm_results_agree(self):
        aig = aig_from_function(present_sbox()).compact()
        cuts = enumerate_cuts(aig, max_leaves=4)

        clear_cut_function_cache()
        cold = {}
        for node, node_cuts in cuts.items():
            for cut in node_cuts:
                if node in cut:
                    continue
                table, leaves = cut_function(aig, node, cut)
                cold[(node, cut)] = (table.num_vars, table.bits, leaves)
        assert cut_function_cache_size() > 0

        # Second pass is served from the cache and must be identical.
        for (node, cut), (num_vars, bits, leaves) in cold.items():
            table, warm_leaves = cut_function(aig, node, cut)
            assert (table.num_vars, table.bits) == (num_vars, bits)
            assert warm_leaves == leaves

    def test_trivial_cut_returns_projection(self):
        aig = aig_from_function(present_sbox()).compact()
        node = aig.and_nodes()[0]
        table, leaves = cut_function(aig, node, frozenset({node}))
        assert leaves == [node]
        assert table.num_vars == 1
        assert table.bits == 0b10


class TestFactoredFormCache:
    def test_cache_populates_and_synthesis_is_reproducible(self):
        clear_factored_form_cache()
        first = synthesize(present_sbox(), effort="standard")
        assert factored_form_cache_size() > 0
        second = synthesize(present_sbox(), effort="standard")
        assert first.area == second.area
        assert first.and_count == second.and_count
        assert first.pass_trace == second.pass_trace


class TestOptimizeAigPassSkipping:
    @pytest.mark.parametrize("effort", ["fast", "standard", "high"])
    def test_matches_unmemoised_reference(self, effort):
        """The per-pass fixed-point skip must reproduce the naive loop
        exactly: same best AIG, same trace."""
        function = present_sbox()

        trace = []
        optimized = optimize_aig(
            aig_from_function(function), effort=effort, max_rounds=3, trace=trace
        )

        # Reference: the pre-memoisation loop, re-implemented verbatim.
        passes = SynthesisEffort.passes(effort)
        best = aig_from_function(function).compact()
        reference_trace = [("strash", best.num_ands)]
        current = best
        for _ in range(3):
            round_start = best.num_ands
            for pass_name in passes:
                current = _apply_pass(current, pass_name)
                reference_trace.append((pass_name, current.num_ands))
                if current.num_ands < best.num_ands:
                    best = current
            if best.num_ands >= round_start:
                break

        assert trace == reference_trace
        assert optimized.num_ands == best.num_ands
        assert optimized.output_tables() == best.output_tables()

    def test_preserves_function(self):
        function = present_sbox()
        optimized = optimize_aig(aig_from_function(function), effort="standard")
        assert optimized.to_bool_function().outputs == function.outputs


class TestSubtreeFunctionMemo:
    def test_cold_and_warm_results_agree(self):
        design_netlist = synthesize(optimal_sboxes(1)[0], effort="fast").netlist
        trees = decompose_into_trees(design_netlist)
        assert trees, "expected at least one tree"

        clear_subtree_function_cache()
        observations = []
        for tree in trees:
            for instance in tree.instances:
                leaves = [net for net in instance.inputs]
                table = subtree_output_function(
                    design_netlist, [instance], instance.output, leaves
                )
                observations.append((instance.output, leaves, table.bits, table.num_vars))

        for output_net, leaves, bits, num_vars in observations:
            instance = design_netlist.instance(
                design_netlist.driver_of(output_net).name
            )
            table = subtree_output_function(
                design_netlist, [instance], output_net, leaves
            )
            assert (table.bits, table.num_vars) == (bits, num_vars)

    def test_output_net_must_be_produced(self):
        design_netlist = synthesize(optimal_sboxes(1)[0], effort="fast").netlist
        instance = next(iter(design_netlist.topological_order()))
        with pytest.raises(ValueError):
            subtree_output_function(
                design_netlist, [instance], "no_such_net", list(instance.inputs)
            )

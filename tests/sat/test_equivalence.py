"""Unit tests for miter-based equivalence checking."""

import pytest

from repro.logic import BoolFunction, TruthTable
from repro.netlist import Netlist, standard_cell_library
from repro.sat import (
    EquivalenceChecker,
    check_netlist_equivalence,
    check_netlist_function,
)
from repro.synth import synthesize


@pytest.fixture
def and_netlist(library):
    netlist = Netlist("and", library)
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_output("y")
    netlist.add_instance("AND2", [a, b], output="y")
    return netlist


@pytest.fixture
def nand_inv_netlist(library):
    """AND built as INV(NAND(a,b)) — structurally different, same function."""
    netlist = Netlist("and2", library)
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_output("y")
    nand = netlist.add_instance("NAND2", [a, b]).output
    netlist.add_instance("INV", [nand], output="y")
    return netlist


class TestNetlistEquivalence:
    def test_equivalent_structures(self, and_netlist, nand_inv_netlist):
        assert check_netlist_equivalence(and_netlist, nand_inv_netlist)

    def test_inequivalent_structures(self, and_netlist, library):
        or_netlist = Netlist("or", library)
        a = or_netlist.add_input("a")
        b = or_netlist.add_input("b")
        or_netlist.add_output("y")
        or_netlist.add_instance("OR2", [a, b], output="y")
        result = check_netlist_equivalence(and_netlist, or_netlist)
        assert not result
        assert result.counterexample is not None
        # The counterexample must actually distinguish AND from OR.
        values = list(result.counterexample.values())
        assert sum(values) == 1

    def test_interface_mismatch(self, and_netlist, library):
        wide = Netlist("wide", library)
        for name in ("a", "b", "c"):
            wide.add_input(name)
        wide.add_output("y")
        wide.add_instance("AND3", ["a", "b", "c"], output="y")
        with pytest.raises(ValueError):
            check_netlist_equivalence(and_netlist, wide)

    def test_cell_function_overrides(self, and_netlist, nand_inv_netlist):
        # Configure the AND2 instance as constant zero: no longer equivalent.
        instance = and_netlist.instances[0]
        override = {instance.name: TruthTable.constant(2, False)}
        result = check_netlist_equivalence(
            and_netlist, nand_inv_netlist, cell_functions_a=override
        )
        assert not result

    def test_synthesized_vs_function(self, present, present_netlist):
        assert check_netlist_function(present_netlist, present)

    def test_synthesized_vs_wrong_function(self, present_netlist):
        wrong = BoolFunction.from_lookup([(x + 3) % 16 for x in range(16)], 4, 4)
        result = check_netlist_function(present_netlist, wrong)
        assert not result
        assert set(result.counterexample) == set(present_netlist.primary_inputs)

    def test_function_interface_mismatch(self, present_netlist):
        narrow = BoolFunction.from_lookup([0, 1, 2, 3], 2, 2)
        with pytest.raises(ValueError):
            check_netlist_function(present_netlist, narrow)

    def test_two_independent_synthesis_runs_are_equivalent(self, present, library):
        first = synthesize(present, library=library, effort="fast").netlist
        second = synthesize(present, library=library, effort="high").netlist
        assert check_netlist_equivalence(first, second)


class TestReusableChecker:
    def test_many_candidates_one_solver(self, present, present_netlist):
        # prefilter=False: this test pins the *solver* call count, which the
        # fuzz fast path would legitimately reduce (REPRO_FUZZ must not
        # change the outcome of the tier-1 suite).
        checker = EquivalenceChecker(present_netlist, prefilter=False)
        assert checker.check_function(present)
        for shift in (1, 5, 11):
            wrong = BoolFunction.from_lookup(
                [(x + shift) % 16 for x in range(16)], 4, 4
            )
            result = checker.check_function(wrong)
            assert not result
            assert set(result.counterexample) == set(present_netlist.primary_inputs)
        # The original candidate still checks out after the failed miters
        # were retired — the activation literals isolate the checks.
        assert checker.check_function(present)
        stats = checker.solver_stats()
        assert stats["solve_calls"] == 5

    def test_counterexample_distinguishes(self, and_netlist):
        checker = EquivalenceChecker(and_netlist)
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        assert checker.check_function(BoolFunction([a & b]))
        result = checker.check_function(BoolFunction([a | b]))
        assert not result
        values = list(result.counterexample.values())
        assert sum(values) == 1

    def test_interface_validation(self, and_netlist):
        checker = EquivalenceChecker(and_netlist)
        with pytest.raises(ValueError):
            checker.check_function(BoolFunction([TruthTable.variable(0, 3)]))

"""Unit tests for the CDCL SAT solver."""

import itertools
import random

import pytest

from repro.sat import Cnf, SatSolver, solve


def brute_force_satisfiable(num_vars, clauses):
    for bits in range(1 << num_vars):
        assignment = {var: bool((bits >> (var - 1)) & 1) for var in range(1, num_vars + 1)}
        if all(
            any(assignment[abs(lit)] if lit > 0 else not assignment[abs(lit)] for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def model_satisfies(model, clauses):
    return all(
        any(model.get(abs(lit), False) if lit > 0 else not model.get(abs(lit), False)
            for lit in clause)
        for clause in clauses
    )


class TestBasicCases:
    def test_empty_formula_is_sat(self):
        assert solve(Cnf(0)).satisfiable

    def test_single_unit(self):
        cnf = Cnf(1)
        cnf.add_clause([1])
        result = solve(cnf)
        assert result.satisfiable
        assert result.model[1] is True

    def test_contradicting_units(self):
        cnf = Cnf(1)
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert not solve(cnf).satisfiable

    def test_empty_clause_unsat(self):
        cnf = Cnf(1)
        cnf.add_clause([])
        assert not solve(cnf).satisfiable

    def test_tautological_clause_dropped(self):
        cnf = Cnf(2)
        cnf.add_clause([1, -1])
        cnf.add_clause([2])
        result = solve(cnf)
        assert result.satisfiable
        assert result.model[2] is True

    def test_pigeonhole_3_into_2_unsat(self):
        # Variables p[i][j]: pigeon i in hole j (i in 0..2, j in 0..1).
        cnf = Cnf(6)
        var = lambda i, j: 1 + i * 2 + j
        for i in range(3):
            cnf.add_clause([var(i, 0), var(i, 1)])
        for j in range(2):
            for i1, i2 in itertools.combinations(range(3), 2):
                cnf.add_clause([-var(i1, j), -var(i2, j)])
        assert not solve(cnf).satisfiable

    def test_xor_chain_sat(self):
        # (x1 xor x2), (x2 xor x3), forcing alternation; satisfiable.
        cnf = Cnf(3)
        for a, b in ((1, 2), (2, 3)):
            cnf.add_clause([a, b])
            cnf.add_clause([-a, -b])
        result = solve(cnf)
        assert result.satisfiable
        assert result.model[1] != result.model[2]
        assert result.model[2] != result.model[3]


class TestAssumptions:
    def test_assumptions_restrict_models(self):
        cnf = Cnf(2)
        cnf.add_clause([1, 2])
        result = solve(cnf, assumptions=[-1])
        assert result.satisfiable
        assert result.model[1] is False
        assert result.model[2] is True

    def test_conflicting_assumptions(self):
        cnf = Cnf(2)
        cnf.add_clause([1, 2])
        cnf.add_clause([-2])
        assert not solve(cnf, assumptions=[-1]).satisfiable

    def test_reusable_solver_with_different_assumptions(self):
        cnf = Cnf(2)
        cnf.add_clause([1, 2])
        solver = SatSolver(cnf)
        assert solver.solve(assumptions=[1]).satisfiable
        assert solver.solve(assumptions=[-1]).satisfiable
        cnf2 = Cnf(1)
        cnf2.add_clause([1])
        solver2 = SatSolver(cnf2)
        assert not solver2.solve(assumptions=[-1]).satisfiable


class TestRandomisedAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_3sat_instances(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            num_vars = rng.randint(2, 9)
            num_clauses = rng.randint(1, 4 * num_vars)
            cnf = Cnf(num_vars)
            clauses = []
            for _ in range(num_clauses):
                width = rng.randint(1, min(3, num_vars))
                variables = rng.sample(range(1, num_vars + 1), width)
                clause = [v if rng.random() < 0.5 else -v for v in variables]
                clauses.append(clause)
                cnf.add_clause(clause)
            result = solve(cnf)
            assert result.satisfiable == brute_force_satisfiable(num_vars, clauses)
            if result.satisfiable:
                assert model_satisfies(result.model, clauses)

    def test_statistics_populated(self):
        rng = random.Random(99)
        cnf = Cnf(12)
        for _ in range(50):
            variables = rng.sample(range(1, 13), 3)
            cnf.add_clause([v if rng.random() < 0.5 else -v for v in variables])
        result = solve(cnf)
        assert result.propagations > 0
        assert result.decisions >= 0

"""Unit tests for the CDCL SAT solver."""

import itertools
import random

import pytest

from repro.sat import Cnf, SatSolver, solve


def brute_force_satisfiable(num_vars, clauses):
    for bits in range(1 << num_vars):
        assignment = {var: bool((bits >> (var - 1)) & 1) for var in range(1, num_vars + 1)}
        if all(
            any(assignment[abs(lit)] if lit > 0 else not assignment[abs(lit)] for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def model_satisfies(model, clauses):
    return all(
        any(model.get(abs(lit), False) if lit > 0 else not model.get(abs(lit), False)
            for lit in clause)
        for clause in clauses
    )


class TestBasicCases:
    def test_empty_formula_is_sat(self):
        assert solve(Cnf(0)).satisfiable

    def test_single_unit(self):
        cnf = Cnf(1)
        cnf.add_clause([1])
        result = solve(cnf)
        assert result.satisfiable
        assert result.model[1] is True

    def test_contradicting_units(self):
        cnf = Cnf(1)
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert not solve(cnf).satisfiable

    def test_empty_clause_unsat(self):
        cnf = Cnf(1)
        cnf.add_clause([])
        assert not solve(cnf).satisfiable

    def test_tautological_clause_dropped(self):
        cnf = Cnf(2)
        cnf.add_clause([1, -1])
        cnf.add_clause([2])
        result = solve(cnf)
        assert result.satisfiable
        assert result.model[2] is True

    def test_pigeonhole_3_into_2_unsat(self):
        # Variables p[i][j]: pigeon i in hole j (i in 0..2, j in 0..1).
        cnf = Cnf(6)
        var = lambda i, j: 1 + i * 2 + j
        for i in range(3):
            cnf.add_clause([var(i, 0), var(i, 1)])
        for j in range(2):
            for i1, i2 in itertools.combinations(range(3), 2):
                cnf.add_clause([-var(i1, j), -var(i2, j)])
        assert not solve(cnf).satisfiable

    def test_xor_chain_sat(self):
        # (x1 xor x2), (x2 xor x3), forcing alternation; satisfiable.
        cnf = Cnf(3)
        for a, b in ((1, 2), (2, 3)):
            cnf.add_clause([a, b])
            cnf.add_clause([-a, -b])
        result = solve(cnf)
        assert result.satisfiable
        assert result.model[1] != result.model[2]
        assert result.model[2] != result.model[3]


class TestAssumptions:
    def test_assumptions_restrict_models(self):
        cnf = Cnf(2)
        cnf.add_clause([1, 2])
        result = solve(cnf, assumptions=[-1])
        assert result.satisfiable
        assert result.model[1] is False
        assert result.model[2] is True

    def test_conflicting_assumptions(self):
        cnf = Cnf(2)
        cnf.add_clause([1, 2])
        cnf.add_clause([-2])
        assert not solve(cnf, assumptions=[-1]).satisfiable

    def test_reusable_solver_with_different_assumptions(self):
        cnf = Cnf(2)
        cnf.add_clause([1, 2])
        solver = SatSolver(cnf)
        assert solver.solve(assumptions=[1]).satisfiable
        assert solver.solve(assumptions=[-1]).satisfiable
        cnf2 = Cnf(1)
        cnf2.add_clause([1])
        solver2 = SatSolver(cnf2)
        assert not solver2.solve(assumptions=[-1]).satisfiable


class TestIncrementalInterface:
    def test_add_clause_after_solve_and_resolve(self):
        solver = SatSolver()
        x = solver.new_var()
        y = solver.new_var()
        solver.add_clause([x, y])
        assert solver.solve().satisfiable
        # Narrow the formula step by step on the same live solver.
        solver.add_clause([-x])
        result = solver.solve()
        assert result.satisfiable
        assert result.model[x] is False
        assert result.model[y] is True
        solver.add_clause([-y])
        assert not solver.solve().satisfiable

    def test_add_clause_auto_grows_variables(self):
        solver = SatSolver()
        solver.add_clause([5, -7])
        assert solver.num_vars == 7
        assert solver.solve().satisfiable

    def test_follow_mode_mirrors_cnf_growth(self):
        cnf = Cnf()
        solver = SatSolver(cnf, follow=True)
        a = cnf.new_var()
        b = cnf.new_var()
        cnf.add_clause([a, b])
        assert solver.solve().satisfiable
        cnf.add_clause([-a])
        cnf.add_clause([-b])
        assert not solver.solve().satisfiable

    def test_unsat_under_assumptions_is_recoverable(self):
        solver = SatSolver()
        x = solver.new_var()
        y = solver.new_var()
        solver.add_clause([x, y])
        solver.add_clause([-x, y])
        # UNSAT only because of the assumptions...
        assert not solver.solve(assumptions=[-y]).satisfiable
        # ...so the solver stays usable and the formula is still SAT.
        assert solver.solve().satisfiable
        assert solver.solve(assumptions=[y]).satisfiable

    def test_outright_unsat_is_permanent(self):
        solver = SatSolver()
        x = solver.new_var()
        solver.add_clause([x])
        solver.add_clause([-x])
        assert not solver.solve().satisfiable
        assert not solver.solve(assumptions=[x]).satisfiable
        # Adding more clauses cannot resurrect an UNSAT database.
        solver.add_clause([solver.new_var()])
        assert not solver.solve().satisfiable

    def test_trivially_unsat_on_empty_clause_addition(self):
        solver = SatSolver()
        solver.new_var()
        solver.add_clause([])
        assert not solver.solve().satisfiable

    def test_level_zero_propagation_on_addition(self):
        solver = SatSolver()
        x, y, z = solver.new_var(), solver.new_var(), solver.new_var()
        solver.add_clause([x])
        solver.add_clause([-x, y])  # unit under the level-0 assignment
        solver.add_clause([-y, z])
        result = solver.solve()
        assert result.satisfiable
        assert result.model[x] and result.model[y] and result.model[z]
        # Contradicting the propagated chain closes the formula for good.
        solver.add_clause([-z])
        assert not solver.solve().satisfiable

    def test_activation_literal_miter_pattern(self):
        # An activation-guarded constraint "x != y" is switched on and off
        # purely through assumptions — the pattern the attack stack uses.
        solver = SatSolver()
        x, y, act = solver.new_var(), solver.new_var(), solver.new_var()
        solver.add_clause([-act, x, y])
        solver.add_clause([-act, -x, -y])
        solver.add_clause([x])  # pin x true
        enabled = solver.solve(assumptions=[act])
        assert enabled.satisfiable
        assert enabled.model[x] != enabled.model[y]
        solver.add_clause([y])  # now x == y is forced
        assert not solver.solve(assumptions=[act]).satisfiable
        # Disabled (or retired with a permanent unit) the miter is inert.
        assert solver.solve(assumptions=[-act]).satisfiable
        solver.add_clause([-act])
        assert solver.solve().satisfiable

    def test_per_call_statistics_reset_cumulative_kept(self):
        rng = random.Random(5)
        solver = SatSolver()
        for _ in range(60):
            variables = rng.sample(range(1, 13), 3)
            solver.add_clause([v if rng.random() < 0.5 else -v for v in variables])
        first = solver.solve()
        second = solver.solve()
        assert solver.solve_calls == 2
        # Per-call statistics are deltas; cumulative counters only grow.
        assert solver.propagations >= first.propagations + second.propagations
        stats = solver.stats()
        assert stats["solve_calls"] == 2
        assert stats["propagations"] == solver.propagations
        assert stats["num_vars"] == solver.num_vars

    def test_incremental_matches_from_scratch(self):
        # Adding clauses one by one must agree with a fresh solve of the
        # accumulated formula at every step.
        rng = random.Random(11)
        for _ in range(20):
            num_vars = rng.randint(3, 8)
            incremental = SatSolver()
            incremental.reserve_vars(num_vars)
            clauses = []
            for _ in range(rng.randint(4, 3 * num_vars)):
                width = rng.randint(1, 3)
                variables = rng.sample(range(1, num_vars + 1), width)
                clause = [v if rng.random() < 0.5 else -v for v in variables]
                clauses.append(clause)
                incremental.add_clause(clause)
                expected = brute_force_satisfiable(num_vars, clauses)
                result = incremental.solve()
                assert result.satisfiable == expected
                if result.satisfiable:
                    assert model_satisfies(result.model, clauses)
                # Interleave a solve under random assumptions: it must agree
                # with brute force over the formula plus assumption units,
                # and must not corrupt later assumption-free solves.
                assumed = [
                    v if rng.random() < 0.5 else -v
                    for v in rng.sample(range(1, num_vars + 1), rng.randint(1, 2))
                ]
                assumed_clauses = clauses + [[literal] for literal in assumed]
                under = incremental.solve(assumptions=assumed)
                assert under.satisfiable == brute_force_satisfiable(
                    num_vars, assumed_clauses
                )
                if under.satisfiable:
                    assert model_satisfies(under.model, assumed_clauses)
                if not expected:
                    break


class TestRandomisedAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_3sat_instances(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            num_vars = rng.randint(2, 9)
            num_clauses = rng.randint(1, 4 * num_vars)
            cnf = Cnf(num_vars)
            clauses = []
            for _ in range(num_clauses):
                width = rng.randint(1, min(3, num_vars))
                variables = rng.sample(range(1, num_vars + 1), width)
                clause = [v if rng.random() < 0.5 else -v for v in variables]
                clauses.append(clause)
                cnf.add_clause(clause)
            result = solve(cnf)
            assert result.satisfiable == brute_force_satisfiable(num_vars, clauses)
            if result.satisfiable:
                assert model_satisfies(result.model, clauses)

    def test_statistics_populated(self):
        rng = random.Random(99)
        cnf = Cnf(12)
        for _ in range(50):
            variables = rng.sample(range(1, 13), 3)
            cnf.add_clause([v if rng.random() < 0.5 else -v for v in variables])
        result = solve(cnf)
        assert result.propagations > 0
        assert result.decisions >= 0

"""Tests for the restart-strategy knob (geometric default, Luby opt-in)."""

import random

import pytest

from repro.sat import RESTART_ENV_VAR, RESTART_STRATEGIES, SatSolver
from repro.sat.solver import SatResult


def _hard_random_formula(solver, seed=9, num_vars=30, num_clauses=128):
    rng = random.Random(seed)
    solver.reserve_vars(num_vars)
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        solver.add_clause(
            [v if rng.random() < 0.5 else -v for v in variables]
        )


class TestRestartStrategies:
    def test_names_exported(self):
        assert set(RESTART_STRATEGIES) == {"geometric", "luby"}

    def test_default_is_geometric(self):
        assert SatSolver().restart_strategy == "geometric"

    def test_env_var_selects_strategy(self, monkeypatch):
        monkeypatch.setenv(RESTART_ENV_VAR, "luby")
        assert SatSolver().restart_strategy == "luby"
        # An explicit argument beats the environment.
        assert (
            SatSolver(restart_strategy="geometric").restart_strategy
            == "geometric"
        )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            SatSolver(restart_strategy="fibonacci")

    @pytest.mark.parametrize("strategy", ["geometric", "luby"])
    def test_verdicts_agree_on_random_formulas(self, strategy):
        for seed in range(6):
            reference = SatSolver()
            _hard_random_formula(reference, seed=seed)
            expected = reference.solve().satisfiable

            solver = SatSolver(restart_strategy=strategy)
            _hard_random_formula(solver, seed=seed)
            result = solver.solve()
            assert isinstance(result, SatResult)
            assert result.satisfiable == expected

    def test_restart_counter_in_stats(self):
        solver = SatSolver(restart_strategy="luby")
        _hard_random_formula(solver, seed=3, num_vars=40, num_clauses=180)
        solver.solve()
        stats = solver.stats()
        assert stats["restarts"] == solver.restarts
        assert solver.restarts >= 0

    def test_luby_schedule_is_reluctant_doubling(self):
        # The (u, v) recurrence from Knuth: v walks 1 1 2 1 1 2 4 ...
        u, v = 1, 1
        sequence = []
        for _ in range(15):
            sequence.append(v)
            if (u & -u) == v:
                u, v = u + 1, 1
            else:
                v <<= 1
        assert sequence == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]

"""Unit tests for CNF formulas and DIMACS I/O."""

import pytest

from repro.sat import Cnf


class TestCnf:
    def test_new_var_and_names(self):
        cnf = Cnf()
        x = cnf.new_var("x")
        y = cnf.new_var()
        assert x == 1 and y == 2
        assert cnf.var("x") == 1
        assert cnf.has_var("x")
        assert not cnf.has_var("z")
        assert cnf.names() == {"x": 1}
        with pytest.raises(KeyError):
            cnf.var("z")
        with pytest.raises(ValueError):
            cnf.new_var("x")

    def test_add_clause_validation(self):
        cnf = Cnf(2)
        cnf.add_clause([1, -2])
        with pytest.raises(ValueError):
            cnf.add_clause([0])
        with pytest.raises(ValueError):
            cnf.add_clause([3])
        assert cnf.num_clauses == 1

    def test_empty_clause_kept(self):
        cnf = Cnf(1)
        cnf.add_clause([])
        assert cnf.num_clauses == 1
        assert cnf.clauses[0] == ()

    def test_add_clauses_and_unit(self):
        cnf = Cnf(3)
        cnf.add_clauses([[1, 2], [-2, 3]])
        cnf.extend_unit(-1)
        assert cnf.num_clauses == 3

    def test_invalid_num_vars(self):
        with pytest.raises(ValueError):
            Cnf(-1)


class TestDimacs:
    def test_roundtrip(self):
        cnf = Cnf(3)
        cnf.add_clause([1, -2])
        cnf.add_clause([2, 3])
        cnf.add_clause([-1, -3])
        text = cnf.to_dimacs()
        assert text.splitlines()[0] == "p cnf 3 3"
        parsed = Cnf.from_dimacs(text)
        assert parsed.num_vars == 3
        assert parsed.clauses == cnf.clauses

    def test_parse_with_comments(self):
        text = "c a comment\np cnf 2 1\n1 -2 0\n"
        parsed = Cnf.from_dimacs(text)
        assert parsed.num_vars == 2
        assert parsed.clauses == [(1, -2)]

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            Cnf.from_dimacs("1 2 0\n")
        with pytest.raises(ValueError):
            Cnf.from_dimacs("p cnf x y\n")
        with pytest.raises(ValueError):
            Cnf.from_dimacs("")

    def test_repr(self):
        cnf = Cnf(2)
        cnf.add_clause([1, 2])
        assert "clauses=1" in repr(cnf)

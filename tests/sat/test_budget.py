"""Tests for solve budgets: the UNKNOWN verdict and its client contracts."""

import time

import pytest

from repro.faults import FAULTS_ENV_VAR, reset_fault_state
from repro.sat import (
    BUDGET_ENV_VAR,
    Cnf,
    SatSolver,
    SolveBudget,
    SolveBudgetExceeded,
    solve,
)


def pigeonhole(pigeons, holes):
    """PHP(p, h): unsatisfiable for p > h and conflict-heavy to refute."""
    cnf = Cnf(pigeons * holes)
    var = lambda pigeon, hole: pigeon * holes + hole + 1
    for pigeon in range(pigeons):
        cnf.add_clause([var(pigeon, hole) for hole in range(holes)])
    for hole in range(holes):
        for one in range(pigeons):
            for two in range(one + 1, pigeons):
                cnf.add_clause([-var(one, hole), -var(two, hole)])
    return cnf


class TestSolveBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            SolveBudget(max_conflicts=0)
        with pytest.raises(ValueError):
            SolveBudget(max_seconds=-1.0)

    def test_unbounded(self):
        assert SolveBudget().unbounded
        assert not SolveBudget(max_conflicts=5).unbounded

    def test_spec_round_trip(self):
        budget = SolveBudget(max_conflicts=100, max_seconds=2.5)
        assert SolveBudget.from_spec(budget.to_spec()) == budget
        assert SolveBudget.from_spec("propagations=1e6").max_propagations == 10 ** 6

    def test_bad_spec_raises(self):
        with pytest.raises(ValueError):
            SolveBudget.from_spec("gremlins=9")

    def test_scaled(self):
        budget = SolveBudget(max_conflicts=100, max_seconds=1.0)
        doubled = budget.scaled(2.0)
        assert doubled.max_conflicts == 200
        assert doubled.max_seconds == 2.0
        assert doubled.max_propagations is None

    def test_from_environment(self, monkeypatch):
        monkeypatch.delenv(BUDGET_ENV_VAR, raising=False)
        assert SolveBudget.from_environment() is None
        monkeypatch.setenv(BUDGET_ENV_VAR, "conflicts=42")
        assert SolveBudget.from_environment().max_conflicts == 42
        monkeypatch.setenv(BUDGET_ENV_VAR, "  ")
        assert SolveBudget.from_environment() is None


class TestBudgetedSolve:
    def test_conflict_budget_yields_unknown(self):
        cnf = pigeonhole(5, 4)
        result = solve(cnf, budget=SolveBudget(max_conflicts=1))
        assert result.status == "unknown"
        assert result.unknown
        assert not result.satisfiable  # two-valued view stays conservative

    def test_unbudgeted_solve_completes(self):
        result = solve(pigeonhole(5, 4))
        assert result.status == "unsat"
        assert not result.unknown

    def test_propagation_budget(self):
        result = solve(pigeonhole(5, 4), budget=SolveBudget(max_propagations=1))
        assert result.unknown

    def test_wall_clock_budget(self):
        # A microscopic deadline must trip on the first conflict check.
        result = solve(pigeonhole(6, 5), budget=SolveBudget(max_seconds=1e-9))
        assert result.unknown

    def test_generous_budget_reaches_verdict(self):
        result = solve(pigeonhole(4, 3), budget=SolveBudget(max_conflicts=10 ** 6))
        assert result.status == "unsat"

    def test_budget_is_per_call_and_solver_stays_usable(self):
        solver = SatSolver(pigeonhole(5, 4))
        assert solver.solve(budget=SolveBudget(max_conflicts=1)).unknown
        assert solver.budget_exhaustions == 1
        # The same solver, re-asked without a budget, finishes the proof.
        assert solver.solve().status == "unsat"
        assert solver.stats()["budget_exhaustions"] == 1

    def test_budget_none_transcript_identical(self):
        # The budget machinery must be invisible when no budget is given:
        # same verdict, same per-call statistics.
        budgeted = SatSolver(pigeonhole(4, 3))
        plain = SatSolver(pigeonhole(4, 3))
        generous = budgeted.solve(budget=SolveBudget(max_conflicts=10 ** 9))
        bare = plain.solve()
        assert generous.status == bare.status == "unsat"
        assert (generous.conflicts, generous.decisions, generous.propagations) == (
            bare.conflicts,
            bare.decisions,
            bare.propagations,
        )

    def test_solver_unknown_fault_forces_unknown(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "solver_unknown")
        reset_fault_state()
        try:
            cnf = Cnf(1)
            cnf.add_clause([1])
            solver = SatSolver(cnf)
            assert solver.solve().unknown
            assert solver.budget_exhaustions == 1
            assert solver.solve().status == "sat"  # fault count exhausted
        finally:
            monkeypatch.delenv(FAULTS_ENV_VAR)
            reset_fault_state()


class TestClientContracts:
    def test_equivalence_checker_raises_instead_of_guessing(self, monkeypatch):
        from repro.logic import BoolFunction
        from repro.sat.equivalence import check_netlist_function
        from repro.synth import synthesize

        # An UNKNOWN verdict from the miter solve must surface as an
        # exception — coerced to False it would be persisted as "not
        # equivalent".  The injected fault forces the UNKNOWN determin-
        # istically; the prefilter must be off so the check actually
        # reaches the SAT solver (small miters are otherwise fully decided
        # by exhaustive simulation).
        function = BoolFunction.from_lookup(
            [x ^ ((x << 1) & 0xF) ^ 1 for x in range(16)], 4, 4
        )
        netlist = synthesize(function, effort="fast").netlist
        assert check_netlist_function(netlist, function, prefilter=False)
        monkeypatch.setenv(FAULTS_ENV_VAR, "solver_unknown")
        reset_fault_state()
        try:
            with pytest.raises(SolveBudgetExceeded):
                check_netlist_function(netlist, function, prefilter=False)
        finally:
            monkeypatch.delenv(FAULTS_ENV_VAR)
            reset_fault_state()

    def test_plausibility_oracle_raises_instead_of_guessing(self, monkeypatch):
        from repro.attacks.decamouflage import PlausibleFunctionOracle
        from repro.evaluation.workloads import workload_functions
        from repro.flow.obfuscate import obfuscate
        from repro.ga.engine import GAParameters

        functions = workload_functions("PRESENT", 2)
        flow = obfuscate(
            functions,
            ga_parameters=GAParameters(
                population_size=4, generations=1, seed=1
            ),
            fitness_effort="fast",
            final_effort="fast",
        )
        views = flow.assignment.apply(list(functions))
        oracle = PlausibleFunctionOracle.from_mapping(flow.mapping, prefilter=False)
        assert oracle.is_plausible(views[0])
        monkeypatch.setenv(FAULTS_ENV_VAR, "solver_unknown:count=0")
        reset_fault_state()
        try:
            # A plausibility verdict must never be guessed from UNKNOWN.
            fresh = PlausibleFunctionOracle.from_mapping(
                flow.mapping, prefilter=False
            )
            with pytest.raises(SolveBudgetExceeded):
                fresh.is_plausible(views[1])
        finally:
            monkeypatch.delenv(FAULTS_ENV_VAR)
            reset_fault_state()

"""Unit tests for the Tseitin circuit-to-CNF encoders."""

import random

import pytest

from repro.logic import TruthTable
from repro.netlist import Netlist, standard_cell_library
from repro.sat import Cnf, encode_function, encode_netlist, equality_clauses, solve


class TestEncodeFunction:
    def _assert_encodes(self, function):
        """The CNF must be satisfiable exactly on rows consistent with f."""
        num_vars = function.num_vars
        for row in range(1 << num_vars):
            for out_value in (0, 1):
                cnf = Cnf()
                inputs = [cnf.new_var() for _ in range(num_vars)]
                output = cnf.new_var()
                encode_function(cnf, function, inputs, output)
                for var_index, literal in enumerate(inputs):
                    cnf.add_clause([literal if (row >> var_index) & 1 else -literal])
                cnf.add_clause([output if out_value else -output])
                expected = function.value_at(row) == out_value
                assert solve(cnf).satisfiable == expected

    def test_random_functions(self):
        rng = random.Random(13)
        for num_vars in (1, 2, 3):
            for _ in range(4):
                self._assert_encodes(TruthTable(num_vars, rng.getrandbits(1 << num_vars)))

    def test_constants(self):
        self._assert_encodes(TruthTable.constant(2, True))
        self._assert_encodes(TruthTable.constant(2, False))

    def test_arity_mismatch(self):
        cnf = Cnf()
        with pytest.raises(ValueError):
            encode_function(cnf, TruthTable.constant(2, True), [cnf.new_var()], cnf.new_var())

    def test_equality_clauses(self):
        cnf = Cnf()
        a = cnf.new_var()
        b = cnf.new_var()
        equality_clauses(cnf, a, b)
        cnf.add_clause([a])
        cnf.add_clause([-b])
        assert not solve(cnf).satisfiable


class TestEncodeNetlist:
    def test_netlist_encoding_agrees_with_simulation(self, present, present_netlist):
        from repro.netlist import simulate_word

        cnf = Cnf()
        net_vars = encode_netlist(cnf, present_netlist, prefix="p.")
        # Force input word 0b1010 and check the outputs are forced to S(0b1010).
        word = 0b1010
        for index, net in enumerate(present_netlist.primary_inputs):
            literal = net_vars[net]
            cnf.add_clause([literal if (word >> index) & 1 else -literal])
        result = solve(cnf)
        assert result.satisfiable
        expected = simulate_word(present_netlist, word)
        for index, net in enumerate(present_netlist.primary_outputs):
            literal = net_vars[net]
            value = result.model.get(abs(literal), False)
            if literal < 0:
                value = not value
            assert int(value) == (expected >> index) & 1

    def test_cell_function_override(self, library):
        netlist = Netlist("t", library)
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.add_output("y")
        instance = netlist.add_instance("AND2", [a, b], output="y")
        cnf = Cnf()
        override = {instance.name: TruthTable.constant(2, True)}
        net_vars = encode_netlist(cnf, netlist, cell_functions=override)
        cnf.add_clause([-net_vars["y"]])  # demand y = 0, impossible with the override
        assert not solve(cnf).satisfiable

    def test_shared_inputs_between_circuits(self, library):
        netlist = Netlist("t", library)
        a = netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_instance("INV", [a], output="y")
        cnf = Cnf()
        vars_first = encode_netlist(cnf, netlist, prefix="x.")
        vars_second = encode_netlist(
            cnf, netlist, prefix="z.", input_literals={"a": vars_first["a"]}
        )
        # Same input variable: the two copies must always agree, so forcing
        # them to differ is unsatisfiable.
        cnf.add_clause([vars_first["y"], vars_second["y"]])
        cnf.add_clause([-vars_first["y"], -vars_second["y"]])
        assert not solve(cnf).satisfiable

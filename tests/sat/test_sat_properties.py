"""Property-based tests for the SAT solver against a brute-force oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import Cnf, solve


@st.composite
def cnf_instances(draw, max_vars=7, max_clauses=20):
    num_vars = draw(st.integers(min_value=1, max_value=max_vars))
    num_clauses = draw(st.integers(min_value=0, max_value=max_clauses))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=min(3, num_vars)))
        variables = draw(
            st.lists(
                st.integers(min_value=1, max_value=num_vars),
                min_size=width, max_size=width, unique=True,
            )
        )
        clause = [
            var if draw(st.booleans()) else -var for var in variables
        ]
        clauses.append(tuple(clause))
    return num_vars, clauses


def brute_force(num_vars, clauses):
    for bits in range(1 << num_vars):
        assignment = {v: bool((bits >> (v - 1)) & 1) for v in range(1, num_vars + 1)}
        if all(
            any(assignment[abs(l)] if l > 0 else not assignment[abs(l)] for l in clause)
            for clause in clauses
        ):
            return True
    return False


@given(cnf_instances())
@settings(max_examples=120, deadline=None)
def test_solver_agrees_with_brute_force(instance):
    num_vars, clauses = instance
    cnf = Cnf(num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    result = solve(cnf)
    assert result.satisfiable == brute_force(num_vars, clauses)


@given(cnf_instances())
@settings(max_examples=80, deadline=None)
def test_models_satisfy_all_clauses(instance):
    num_vars, clauses = instance
    cnf = Cnf(num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    result = solve(cnf)
    if result.satisfiable:
        for clause in clauses:
            assert any(
                result.model.get(abs(literal), False) == (literal > 0) for literal in clause
            )

"""Tests for the unified run-telemetry record."""

import json

import pytest

from repro.telemetry import RunTelemetry, window_hardness_from_payloads


class TestAccumulation:
    def test_count_and_record(self):
        telemetry = RunTelemetry(label="t")
        telemetry.count("solver", "conflicts", 3)
        telemetry.count("solver", "conflicts", 2)
        telemetry.record("solver", "num_vars", 40)
        telemetry.record("solver", "num_vars", 50)
        assert telemetry.get("solver", "conflicts") == 5
        assert telemetry.get("solver", "num_vars") == 50
        assert telemetry.get("missing", "key", default=-1) == -1

    def test_absorb_skips_non_numbers_and_bools(self):
        telemetry = RunTelemetry().absorb(
            "s", {"a": 1, "b": 2.5, "flag": True, "name": "x", "items": [1]}
        )
        assert telemetry.scopes == {"s": {"a": 1, "b": 2.5}}


class TestMergeAndRoundTrip:
    def test_merged_sums_counters_and_unions_scopes(self):
        one = RunTelemetry(label="one")
        one.count("solver", "conflicts", 4)
        one.count("cache", "hits", 1)
        two = RunTelemetry(label="two")
        two.count("solver", "conflicts", 6)
        two.count("window", "decoys", 2)
        merged = one.merged(two)
        assert merged.label == "one"
        assert merged.get("solver", "conflicts") == 10
        assert merged.get("cache", "hits") == 1
        assert merged.get("window", "decoys") == 2
        # Operands are untouched.
        assert one.get("solver", "conflicts") == 4

    def test_merged_label_override(self):
        assert RunTelemetry(label="a").merged(label="b").label == "b"

    def test_json_round_trip(self):
        telemetry = RunTelemetry(label="roundtrip")
        telemetry.count("synth", "passes_executed", 7)
        telemetry.record("synth", "and_final", 31)
        text = telemetry.to_json()
        restored = RunTelemetry.from_json(text)
        assert restored.label == telemetry.label
        assert restored.scopes == telemetry.scopes
        # The JSON itself is plain and sorted (artifact-diff friendly).
        assert json.loads(text)["scopes"]["synth"]["and_final"] == 31

    def test_from_dict_rejects_malformed_scopes(self):
        with pytest.raises(ValueError):
            RunTelemetry.from_dict({"scopes": [1, 2]})
        with pytest.raises(ValueError):
            RunTelemetry.from_dict({"scopes": {"solver": 7}})


class TestAdapters:
    def test_solver_cache_prefilter_adapters(self):
        solver = RunTelemetry.from_solver_stats(
            {"solve_calls": 2, "conflicts": 9}, label="s"
        )
        assert solver.get("solver", "conflicts") == 9
        cache = RunTelemetry.from_cache_stats({"hits": 3, "misses": 1})
        assert cache.get("cache", "hits") == 3
        prefilter = RunTelemetry.from_prefilter_stats({"fuzz_refuted": 5})
        assert prefilter.get("prefilter", "fuzz_refuted") == 5

    def test_ga_history_adapter(self):
        class Generation:
            def __init__(self, evaluations_so_far, cache_hits):
                self.evaluations_so_far = evaluations_so_far
                self.cache_hits = cache_hits

        record = RunTelemetry.from_ga_history(
            [Generation(4, 1), Generation(9, 3)]
        )
        assert record.get("ga", "generations") == 2
        assert record.get("ga", "evaluations") == 9
        assert record.get("ga", "cache_hits") == 3
        assert RunTelemetry.from_ga_history([]).scopes == {}


class TestWindowHardness:
    def test_extraction_from_payloads(self):
        def payload(index, queries, conflicts):
            record = RunTelemetry()
            record.record("window", "attack_queries", queries)
            record.record("window", "solver_conflicts", conflicts)
            return {"index": index, "telemetry": record.to_dict()}

        payloads = [
            payload(0, 3, 10),
            payload(1, 0, 0),  # unmeasured: score 0 is skipped
            {"index": 2},  # no telemetry at all
            {"no_index": True},
        ]
        assert window_hardness_from_payloads(payloads) == {0: 13.0}

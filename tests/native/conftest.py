"""Shared guards for the native-backend differential harness.

Every test in this directory needs the compiled extension; when it is not
built the whole directory skips cleanly (the pure backend is covered by
the ordinary suite).
"""

from __future__ import annotations

import pytest

from repro.backend import native_import_error, native_module


def pytest_collection_modifyitems(config, items):
    if native_module() is not None:
        return
    marker = pytest.mark.skip(
        reason=(
            "native extension not built; run "
            "`python setup.py build_ext --inplace` "
            f"(import error: {native_import_error()})"
        )
    )
    for item in items:
        item.add_marker(marker)

"""Backend dispatch semantics (`repro.backend`, `REPRO_BACKEND`).

These tests run with the extension built (the directory-level guard skips
them otherwise) and use monkeypatching to simulate the missing-extension
case, so both sides of the dispatch are covered from one environment.
"""

from __future__ import annotations

import pytest

from repro import _native, backend
from repro.sat.solver import SatSolver
from repro.sim.engine import NetlistSimulator


class TestActiveBackend:
    def test_auto_prefers_native_when_built(self, monkeypatch):
        monkeypatch.delenv(backend.BACKEND_ENV_VAR, raising=False)
        assert backend.requested_backend() == "auto"
        assert backend.active_backend() == "native"

    def test_env_pure_forces_pure(self, monkeypatch):
        monkeypatch.setenv(backend.BACKEND_ENV_VAR, "pure")
        assert backend.active_backend() == "pure"
        solver = SatSolver()
        assert solver.backend == "pure"
        assert solver._core is None

    def test_env_native_uses_core(self, monkeypatch):
        monkeypatch.setenv(backend.BACKEND_ENV_VAR, "native")
        solver = SatSolver()
        assert solver.backend == "native"
        assert solver._core is not None

    def test_constructor_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(backend.BACKEND_ENV_VAR, "native")
        solver = SatSolver(backend="pure")
        assert solver.backend == "pure"

    def test_invalid_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(backend.BACKEND_ENV_VAR, "turbo")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            backend.requested_backend()
        with pytest.raises(ValueError):
            SatSolver()

    def test_auto_falls_back_when_missing(self, monkeypatch):
        monkeypatch.delenv(backend.BACKEND_ENV_VAR, raising=False)
        monkeypatch.setattr(_native, "core", None)
        monkeypatch.setattr(_native, "IMPORT_ERROR", "No module named 'repro._native._core'")
        assert backend.active_backend() == "pure"
        solver = SatSolver()
        assert solver.backend == "pure"

    def test_forced_native_raises_with_import_error_text(self, monkeypatch):
        monkeypatch.setenv(backend.BACKEND_ENV_VAR, "native")
        monkeypatch.setattr(_native, "core", None)
        monkeypatch.setattr(_native, "IMPORT_ERROR", "No module named 'repro._native._core'")
        with pytest.raises(backend.BackendUnavailable, match="_core"):
            backend.active_backend()
        with pytest.raises(backend.BackendUnavailable):
            SatSolver()


class TestBackendReport:
    def test_report_with_native_available(self, monkeypatch):
        monkeypatch.delenv(backend.BACKEND_ENV_VAR, raising=False)
        report = backend.backend_report()
        assert report["native_available"] is True
        assert report["active"] == "native"
        assert report["fallback_reason"] is None
        assert report["native_module"]

    def test_report_explains_fallback(self, monkeypatch):
        monkeypatch.setenv(backend.BACKEND_ENV_VAR, "native")
        monkeypatch.setattr(_native, "core", None)
        monkeypatch.setattr(_native, "IMPORT_ERROR", "boom: missing .so")
        report = backend.backend_report()
        assert report["native_available"] is False
        assert report["active"] == "unavailable"
        assert "boom: missing .so" in report["fallback_reason"]


class TestSimulatorDispatch:
    def test_simulator_reports_backend(self, make_random_netlist, monkeypatch):
        monkeypatch.delenv(backend.BACKEND_ENV_VAR, raising=False)
        netlist = make_random_netlist(3, num_inputs=3, num_outputs=1, num_cells=6)
        simulator = NetlistSimulator(netlist)
        assert simulator.backend == "native"
        assert simulator._program is not None
        pure_simulator = NetlistSimulator(netlist, backend="pure")
        assert pure_simulator.backend == "pure"
        assert pure_simulator._program is None

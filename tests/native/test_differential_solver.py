"""Differential cross-check: native SolverCore vs the pure CDCL solver.

The compiled core claims *transcript identity*: same verdicts, same
models, and same decision/conflict/propagation counts on every input.
These tests drive both backends in lockstep over the NeuroSAT-style
corpus, incremental interleavings, assumptions, budgets, restarts, and
clause forgetting, asserting exact equality throughout.
"""

from __future__ import annotations

import random

import pytest

from repro.sat.generate import generate_corpus, generate_pair
from repro.sat.solver import SatSolver, SolveBudget

TRANSCRIPT_KEYS = (
    "solve_calls",
    "conflicts",
    "decisions",
    "propagations",
    "restarts",
    "budget_exhaustions",
    "num_vars",
    "num_clauses",
    "learned_clauses",
    "forgotten_clauses",
)


def both(**kwargs):
    return SatSolver(backend="pure", **kwargs), SatSolver(backend="native", **kwargs)


def assert_lockstep(pure, native, assumptions=(), budget=None):
    result_pure = pure.solve(assumptions, budget=budget)
    result_native = native.solve(assumptions, budget=budget)
    assert result_native.status == result_pure.status
    assert result_native.model == result_pure.model
    assert (result_native.conflicts, result_native.decisions, result_native.propagations) == (
        result_pure.conflicts,
        result_pure.decisions,
        result_pure.propagations,
    )
    stats_pure = pure.stats()
    stats_native = native.stats()
    for key in TRANSCRIPT_KEYS:
        assert stats_native[key] == stats_pure[key], key
    return result_pure


class TestCnfPairCorpus:
    """Both backends agree on >= 200 generated sat/unsat pairs."""

    def test_corpus_verdicts_models_and_counts(self):
        corpus = generate_corpus(200, min_vars=5, max_vars=30, seed=2017)
        assert len(corpus) == 200
        for index, pair in enumerate(corpus):
            for clauses, expected in (
                (pair.unsat_clauses, "unsat"),
                (pair.sat_clauses, "sat"),
            ):
                pure, native = both()
                pure.reserve_vars(pair.num_vars)
                native.reserve_vars(pair.num_vars)
                for clause in clauses:
                    pure.add_clause(clause)
                    native.add_clause(clause)
                result = assert_lockstep(pure, native)
                assert result.status == expected, (index, expected)

    def test_single_pair_is_reproducible(self):
        first = generate_pair(20, seed=7)
        second = generate_pair(20, seed=7)
        assert first == second


class TestIncrementalAndAssumptions:
    def test_randomized_incremental_interleavings(self):
        rng = random.Random(424242)
        for trial in range(60):
            num_vars = rng.randint(5, 18)
            pure, native = both()
            for _ in range(rng.randint(2, 4)):
                for _ in range(rng.randint(3, 25)):
                    size = rng.randint(1, min(4, num_vars))
                    variables = rng.sample(range(1, num_vars + 1), size)
                    clause = [
                        variable if rng.random() < 0.5 else -variable
                        for variable in variables
                    ]
                    pure.add_clause(clause)
                    native.add_clause(clause)
                assumptions = []
                if rng.random() < 0.6:
                    chosen = rng.sample(range(1, num_vars + 1), rng.randint(1, 3))
                    assumptions = [
                        variable if rng.random() < 0.5 else -variable
                        for variable in chosen
                    ]
                assert_lockstep(pure, native, assumptions=assumptions)

    def test_assumption_vars_beyond_clause_range(self):
        pure, native = both()
        for solver in (pure, native):
            solver.add_clause([1, 2])
        assert_lockstep(pure, native, assumptions=[-5, 3])

    def test_trivially_unsat_is_permanent_on_both(self):
        pure, native = both()
        for solver in (pure, native):
            solver.add_clause([1])
            solver.add_clause([-1])
        assert_lockstep(pure, native)
        for solver in (pure, native):
            solver.add_clause([2, 3])
        assert_lockstep(pure, native)

    def test_duplicate_and_tautological_clauses(self):
        pure, native = both()
        for solver in (pure, native):
            solver.add_clause([1, 1, 2])
            solver.add_clause([3, -3])
            solver.add_clause([-1, 2])
            solver.add_clause([-2])
        assert_lockstep(pure, native)


class TestBudgets:
    def test_conflict_budget_unknown_parity(self):
        rng = random.Random(11)
        seen_unknown = 0
        for trial in range(40):
            num_vars = rng.randint(12, 24)
            pure, native = both()
            for _ in range(int(num_vars * 4.4)):
                variables = rng.sample(range(1, num_vars + 1), 3)
                clause = [
                    variable if rng.random() < 0.5 else -variable
                    for variable in variables
                ]
                pure.add_clause(clause)
                native.add_clause(clause)
            budget = SolveBudget(max_conflicts=rng.randint(1, 25))
            result = assert_lockstep(pure, native, budget=budget)
            if result.status == "unknown":
                seen_unknown += 1
            # Re-solve without a budget: the warm solvers stay in lockstep.
            assert_lockstep(pure, native)
        assert seen_unknown > 0

    def test_propagation_budget_unknown_parity(self):
        pair = generate_pair(40, seed=3)
        pure, native = both()
        for clause in pair.unsat_clauses:
            pure.add_clause(clause)
            native.add_clause(clause)
        budget = SolveBudget(max_propagations=10)
        assert_lockstep(pure, native, budget=budget)


class TestRestartStrategies:
    @pytest.mark.parametrize("strategy", ["geometric", "luby"])
    def test_restart_transcripts_match(self, strategy):
        pair = generate_pair(60, seed=99)
        pure, native = both(restart_strategy=strategy)
        for clause in pair.unsat_clauses:
            pure.add_clause(clause)
            native.add_clause(clause)
        assert_lockstep(pure, native)


class TestClauseForgetting:
    def test_forgetting_transcripts_match(self):
        rng = random.Random(5150)
        num_vars = 120
        pure, native = both(clause_forget=40)
        for _ in range(int(num_vars * 4.3)):
            variables = rng.sample(range(1, num_vars + 1), 3)
            clause = [
                variable if rng.random() < 0.5 else -variable
                for variable in variables
            ]
            pure.add_clause(clause)
            native.add_clause(clause)
        assert_lockstep(pure, native, budget=SolveBudget(max_conflicts=3000))
        assert pure.stats()["forgotten_clauses"] == native.stats()["forgotten_clauses"]

"""Differential cross-check: native packed lane evaluation vs pure bigints.

`run_netlist`/`run_aig` replace per-net Python-bigint lane arithmetic with
uint64 word arrays; the packed lanes they produce must be bit-identical
for every net/node, batch shape, and cell-function override.
"""

from __future__ import annotations

import random

import pytest

from repro.aig import aig_from_netlist
from repro.logic.truthtable import TruthTable
from repro.netlist.netlist import NetlistError
from repro.sim.engine import AigSimulator, NetlistSimulator
from repro.sim.patterns import PatternBatch


def _random_batches(rng, num_inputs):
    batches = []
    if num_inputs <= 10:
        batches.append(PatternBatch.exhaustive(num_inputs))
    batches.append(
        PatternBatch.random(num_inputs, rng.randint(1, 63), seed=rng.randint(0, 10**6))
    )
    batches.append(
        PatternBatch.random(
            num_inputs, rng.randint(64, 400), seed=rng.randint(0, 10**6)
        )
    )
    return batches


class TestNetlistLanes:
    def test_randomized_netlists_bit_identical(self, make_random_netlist):
        rng = random.Random(1789)
        for trial in range(25):
            netlist = make_random_netlist(
                rng.randint(0, 10**6),
                num_inputs=rng.randint(2, 9),
                num_outputs=rng.randint(1, 4),
                num_cells=rng.randint(3, 45),
            )
            pure = NetlistSimulator(netlist, backend="pure")
            native = NetlistSimulator(netlist, backend="native")
            assert native.backend == "native"
            for batch in _random_batches(rng, len(netlist.primary_inputs)):
                assert pure.net_lanes(batch) == native.net_lanes(batch), trial
                assert pure.output_lanes(batch) == native.output_lanes(batch), trial

    def test_simulate_words_and_extract_function(self, make_random_netlist):
        netlist = make_random_netlist(42, num_inputs=5, num_outputs=3, num_cells=20)
        pure = NetlistSimulator(netlist, backend="pure")
        native = NetlistSimulator(netlist, backend="native")
        words = [3, 0, 31, 17, 8, 25]
        assert pure.simulate_words(words) == native.simulate_words(words)
        assert (
            pure.extract_function().lookup_table()
            == native.extract_function().lookup_table()
        )

    def test_cell_function_overrides(self, make_random_netlist):
        netlist = make_random_netlist(7, num_inputs=4, num_outputs=2, num_cells=15)
        instance = netlist.instances[2]
        arity = len(instance.inputs)
        override = TruthTable(arity, (1 << (1 << arity)) - 2)
        pure = NetlistSimulator(
            netlist, cell_functions={instance.name: override}, backend="pure"
        )
        native = NetlistSimulator(
            netlist, cell_functions={instance.name: override}, backend="native"
        )
        batch = PatternBatch.exhaustive(4)
        assert pure.net_lanes(batch) == native.net_lanes(batch)
        other = netlist.instances[0]
        per_call = {other.name: TruthTable(len(other.inputs), 1)}
        assert pure.net_lanes(batch, per_call) == native.net_lanes(batch, per_call)

    def test_bad_override_raises_same_error(self, make_random_netlist):
        netlist = make_random_netlist(9, num_inputs=3, num_outputs=1, num_cells=8)
        instance = netlist.instances[0]
        wrong_arity = len(instance.inputs) + 1
        bad = {instance.name: TruthTable(wrong_arity, 0)}
        batch = PatternBatch.exhaustive(3)
        native = NetlistSimulator(netlist, backend="native")
        pure = NetlistSimulator(netlist, backend="pure")
        with pytest.raises(NetlistError) as native_error:
            native.net_lanes(batch, bad)
        with pytest.raises(NetlistError) as pure_error:
            pure.net_lanes(batch, bad)
        assert str(native_error.value) == str(pure_error.value)


class TestAigLanes:
    def test_randomized_aigs_bit_identical(self, make_random_netlist):
        rng = random.Random(1793)
        for trial in range(20):
            netlist = make_random_netlist(
                rng.randint(0, 10**6),
                num_inputs=rng.randint(2, 9),
                num_outputs=rng.randint(1, 3),
                num_cells=rng.randint(3, 35),
            )
            aig = aig_from_netlist(netlist)
            pure = AigSimulator(aig, backend="pure")
            native = AigSimulator(aig, backend="native")
            assert native.backend == "native"
            for batch in _random_batches(rng, aig.num_inputs):
                assert pure.node_lanes(batch) == native.node_lanes(batch), trial
                assert pure.output_lanes(batch) == native.output_lanes(batch), trial

    def test_simulate_words(self, make_random_netlist):
        netlist = make_random_netlist(2020, num_inputs=6, num_outputs=2, num_cells=18)
        aig = aig_from_netlist(netlist)
        pure = AigSimulator(aig, backend="pure")
        native = AigSimulator(aig, backend="native")
        words = list(range(0, 64, 5))
        assert pure.simulate_words(words) == native.simulate_words(words)

"""Unit tests for the deterministic fault-injection harness."""

import json
import os

import pytest

from repro.faults import (
    FAULTS_DIR_ENV_VAR,
    FAULTS_ENV_VAR,
    clock_skew_seconds,
    corrupt_text,
    fault_fires,
    fault_param,
    faults_enabled,
    fired_counts,
    reset_fault_state,
)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    monkeypatch.delenv(FAULTS_DIR_ENV_VAR, raising=False)
    reset_fault_state()
    yield
    reset_fault_state()


class TestSpecParsing:
    def test_disabled_by_default(self):
        assert not faults_enabled()
        assert not fault_fires("worker_kill")

    def test_single_fire_by_default(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "solver_unknown")
        assert faults_enabled()
        assert fault_fires("solver_unknown")
        assert not fault_fires("solver_unknown")  # count defaults to 1

    def test_count_and_after(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "solver_unknown:after=2,count=2")
        fires = [fault_fires("solver_unknown") for _ in range(6)]
        assert fires == [False, False, True, True, False, False]

    def test_count_zero_is_unlimited(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "torn_state:count=0")
        assert all(fault_fires("torn_state") for _ in range(5))

    def test_job_substring_filter(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "worker_kill:job=window_0,count=0")
        assert not fault_fires("worker_kill", "table1_DES")
        assert not fault_fires("worker_kill")  # no key = no match
        assert fault_fires("worker_kill", "window_001")

    def test_multiple_entries_and_params(self, monkeypatch):
        monkeypatch.setenv(
            FAULTS_ENV_VAR, "clock_skew:seconds=-30;solver_unknown:count=1"
        )
        assert fault_param("clock_skew", "seconds") == "-30"
        assert clock_skew_seconds() == -30.0
        assert fault_fires("solver_unknown")

    def test_bad_option_raises(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "worker_kill:banana")
        with pytest.raises(ValueError, match="key=value"):
            fault_fires("worker_kill")

    def test_monkeypatched_env_reparses(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "torn_state")
        assert fault_fires("torn_state")
        monkeypatch.setenv(FAULTS_ENV_VAR, "torn_state:count=2")
        assert fault_fires("torn_state")
        assert fault_fires("torn_state")
        assert not fault_fires("torn_state")


class TestOnceMarker:
    def test_once_without_dir_degrades_to_local(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "worker_kill:once")
        assert fault_fires("worker_kill")
        assert not fault_fires("worker_kill")

    def test_once_is_exclusive_across_processes(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FAULTS_ENV_VAR, "worker_kill:once")
        monkeypatch.setenv(FAULTS_DIR_ENV_VAR, str(tmp_path))
        assert fault_fires("worker_kill")
        marker = tmp_path / "worker_kill-0.fired"
        assert marker.exists()
        # A "second process" (fresh parse state, same marker dir) loses the
        # O_EXCL race and must never fire.
        reset_fault_state()
        assert not fault_fires("worker_kill")
        assert not fault_fires("worker_kill")


class TestHelpers:
    def test_corrupt_text_truncates_on_fire(self, monkeypatch):
        text = json.dumps({"payload": list(range(32))})
        monkeypatch.setenv(FAULTS_ENV_VAR, "torn_state:job=hit")
        assert corrupt_text("torn_state", text, "missed") == text
        torn = corrupt_text("torn_state", text, "hit_me")
        assert torn == text[: len(text) // 2]
        # count exhausted: the next write goes through intact.
        assert corrupt_text("torn_state", text, "hit_me") == text

    def test_fired_counts(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "solver_unknown:count=3")
        for _ in range(5):
            fault_fires("solver_unknown")
        assert fired_counts() == {"solver_unknown": 3}

    def test_clock_skew_defaults_to_zero(self, monkeypatch):
        assert clock_skew_seconds() == 0.0
        monkeypatch.setenv(FAULTS_ENV_VAR, "torn_state")
        assert clock_skew_seconds() == 0.0

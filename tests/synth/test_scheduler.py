"""Strategy tests for the pass-scheduler layer.

The ``fixed`` scheduler must be byte-identical to the pre-strategy loop
(frozen here as a reference reimplementation); the ``adaptive`` scheduler is
property-tested: it only ever emits registered passes, always terminates
within its budget, and never changes the computed function.
"""

import pytest

from repro.aig import aig_from_function
from repro.aig.opt import known_passes
from repro.logic import BoolFunction, TruthTable
from repro.sboxes import des_sboxes, optimal_sboxes
from repro.synth import (
    AdaptiveScheduler,
    FixedScheduler,
    SCHEDULER_ENV_VAR,
    SynthesisEffort,
    optimize_aig,
    resolve_scheduler,
    synthesize,
)
from repro.synth.script import _PassCreditStore, _aig_structure_key


def _legacy_optimize_aig(aig, effort="standard", max_rounds=2, trace=None):
    """The pre-strategy ``optimize_aig`` loop, frozen as a reference."""
    from repro.aig.opt import apply_pass

    passes = SynthesisEffort.passes(effort)
    best = aig.compact()
    if trace is not None:
        trace.append(("strash", best.num_ands))
    current = best
    current_key = _aig_structure_key(current)
    last_run = {}
    for _ in range(max_rounds):
        round_start = best.num_ands
        for pass_name in passes:
            memo = last_run.get(pass_name)
            if memo is not None and memo[0] == current_key:
                current, current_key = memo[1], memo[2]
            else:
                current = apply_pass(current, pass_name)
                produced_key = _aig_structure_key(current)
                last_run[pass_name] = (current_key, current, produced_key)
                current_key = produced_key
            if trace is not None:
                trace.append((pass_name, current.num_ands))
            if current.num_ands < best.num_ands:
                best = current
        if best.num_ands >= round_start:
            break
    return best


def _workloads():
    functions = [optimal_sboxes(1)[0], des_sboxes(1)[0]]
    # A lopsided multi-output function exercises the zero-gain passes.
    a = TruthTable.variable(0, 4)
    b = TruthTable.variable(1, 4)
    c = TruthTable.variable(2, 4)
    d = TruthTable.variable(3, 4)
    functions.append(
        BoolFunction([(a & b) | (c & d), a ^ b ^ c, ~(a | (b & c & d))], name="mix")
    )
    return functions


class TestFixedSchedulerByteIdentity:
    @pytest.mark.parametrize("effort", ["fast", "standard", "high"])
    def test_trace_and_result_match_legacy_loop(self, effort):
        for function in _workloads():
            aig = aig_from_function(function)
            legacy_trace, new_trace = [], []
            legacy = _legacy_optimize_aig(aig, effort=effort, trace=legacy_trace)
            current = optimize_aig(aig, effort=effort, trace=new_trace)
            assert new_trace == legacy_trace
            assert _aig_structure_key(current) == _aig_structure_key(legacy)

    def test_default_resolution_is_fixed(self):
        scheduler = resolve_scheduler(None, effort="fast", max_rounds=3)
        assert isinstance(scheduler, FixedScheduler)
        assert scheduler.effort == "fast"
        assert scheduler.max_rounds == 3

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "adaptive")
        assert isinstance(resolve_scheduler(None), AdaptiveScheduler)
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "bogus")
        with pytest.raises(ValueError):
            resolve_scheduler(None)

    def test_unknown_scheduler_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_scheduler("heroic")

    def test_scheduler_instances_pass_through(self):
        scheduler = AdaptiveScheduler(credit=_PassCreditStore())
        assert resolve_scheduler(scheduler) is scheduler


class TestAdaptiveScheduler:
    def _fresh(self, **kwargs):
        # An isolated in-memory credit store: no cross-test contamination.
        return AdaptiveScheduler(credit=_PassCreditStore(), **kwargs)

    def test_only_known_passes_emitted(self):
        registry = set(known_passes())
        for function in _workloads():
            trace = []
            self._fresh().optimize(aig_from_function(function), trace=trace)
            assert trace[0][0] == "strash"
            assert all(name in registry for name, _ in trace[1:])

    def test_terminates_within_budget(self):
        budget = 2 * len(SynthesisEffort.passes("high"))
        for function in _workloads():
            trace = []
            self._fresh().optimize(aig_from_function(function), trace=trace)
            assert len(trace) - 1 <= budget

    def test_function_preserved_and_never_worse_than_strash(self):
        for function in _workloads():
            aig = aig_from_function(function)
            optimized = self._fresh().optimize(aig)
            assert optimized.num_ands <= aig.compact().num_ands
            assert (
                optimized.to_bool_function().lookup_table()
                == function.lookup_table()
            )

    def test_tiny_budget_respected(self):
        trace = []
        self._fresh(max_passes=3).optimize(
            aig_from_function(_workloads()[0]), trace=trace
        )
        assert len(trace) - 1 <= 3

    def test_credit_accumulates_and_drives_selection(self):
        credit = _PassCreditStore()
        scheduler = AdaptiveScheduler(credit=credit)
        scheduler.optimize(aig_from_function(_workloads()[0]))
        assert credit.credit, "an optimisation run must leave gain history"
        for entry in credit.credit.values():
            assert entry["calls"] >= 1
            assert entry["gain"] >= 0.0

    def test_credit_persists_via_cache_dir(self, tmp_path, monkeypatch):
        from repro.ga.pinopt import CACHE_DIR_ENV_VAR

        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        # Distinct shared-store key per tmp_path; seed it through a run.
        _PassCreditStore._shared.pop(str(tmp_path), None)
        scheduler = AdaptiveScheduler()
        scheduler.optimize(aig_from_function(_workloads()[0]))
        path = tmp_path / _PassCreditStore.FILENAME
        assert path.exists()
        reloaded = _PassCreditStore(str(path))
        assert reloaded.credit == scheduler._credit.credit

    def test_corrupt_credit_file_tolerated(self, tmp_path):
        path = tmp_path / _PassCreditStore.FILENAME
        path.write_text("{not json", encoding="utf-8")
        store = _PassCreditStore(str(path))
        assert store.credit == {}


class TestSynthesizeWithScheduler:
    def test_adaptive_keeps_mapped_netlist_correct(self, library):
        function = des_sboxes(1)[0]
        result = synthesize(
            function,
            library=library,
            scheduler=AdaptiveScheduler(credit=_PassCreditStore()),
        )
        from repro.netlist import extract_function

        assert (
            extract_function(result.netlist).lookup_table()
            == function.lookup_table()
        )

    def test_pass_gains_mirror_trace(self, present, library):
        result = synthesize(present, library=library, effort="standard")
        gains = result.pass_gains
        assert len(gains) == len(result.pass_trace) - 1
        counts = [count for _, count in result.pass_trace]
        assert [gain for _, gain in gains] == [
            counts[i] - counts[i + 1] for i in range(len(counts) - 1)
        ]

    def test_result_telemetry_present(self, present, library):
        result = synthesize(present, library=library)
        assert result.telemetry is not None
        assert result.telemetry.get("synth", "passes_scheduled") == len(
            result.pass_trace
        ) - 1
        assert result.telemetry.get("synth", "and_final") == result.and_count

"""Unit tests for the GE area reports."""

import pytest

from repro.netlist import CellLibrary, CellType, Netlist, standard_cell_library
from repro.logic import TruthTable
from repro.synth import area_in_ge, area_report


class TestAreaInGe:
    def test_matches_netlist_area_for_default_library(self, present_netlist):
        assert area_in_ge(present_netlist) == pytest.approx(present_netlist.area())

    def test_normalisation_with_scaled_library(self):
        # A library in um^2 where NAND2 = 2.0 units: GE must divide by 2.
        inv = CellType("INV", ("A",), TruthTable(1, 0b01), 1.4)
        nand2 = CellType("NAND2", ("A", "B"), ~(_var(0) & _var(1)), 2.0)
        library = CellLibrary("um2", [inv, nand2])
        netlist = Netlist("t", library)
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_output("y")
        netlist.add_instance("NAND2", ["a", "b"], output="y")
        assert netlist.area() == pytest.approx(2.0)
        assert area_in_ge(netlist) == pytest.approx(1.0)

    def test_zero_reference_rejected(self):
        nand2 = CellType("NAND2", ("A", "B"), ~(_var(0) & _var(1)), 0.0)
        library = CellLibrary("bad", [nand2])
        netlist = Netlist("t", library)
        with pytest.raises(ValueError):
            area_in_ge(netlist)


class TestAreaReport:
    def test_report_totals(self, present_netlist):
        report = area_report(present_netlist)
        assert report.total_ge == pytest.approx(present_netlist.area())
        assert sum(report.cell_counts.values()) == present_netlist.num_instances()
        assert sum(report.cell_areas.values()) == pytest.approx(present_netlist.area())

    def test_report_text(self, present_netlist):
        text = area_report(present_netlist).to_text()
        assert "total" in text
        for cell in present_netlist.cell_histogram():
            assert cell in text


def _var(index):
    return TruthTable.variable(index, 2)

"""Unit tests for the synthesis scripts (pass sequences + full synthesis)."""

import pytest

from repro.aig import aig_from_function
from repro.logic import BoolFunction
from repro.netlist import extract_function, validate_netlist
from repro.synth import SynthesisEffort, optimize_aig, synthesize


class TestEffortLevels:
    def test_known_levels(self):
        assert SynthesisEffort.passes("fast") == ["balance", "rewrite"]
        assert len(SynthesisEffort.passes("high")) > len(SynthesisEffort.passes("standard"))

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            SynthesisEffort.passes("heroic")

    def test_optimize_unknown_pass_rejected(self, present):
        aig = aig_from_function(present)
        with pytest.raises(ValueError):
            optimize_aig(aig, effort="heroic")


class TestOptimizeAig:
    def test_improves_or_keeps_and_count(self, present):
        aig = aig_from_function(present)
        optimized = optimize_aig(aig, effort="standard")
        assert optimized.num_ands <= aig.num_ands
        assert optimized.to_bool_function().lookup_table() == present.lookup_table()

    def test_trace_records_passes(self, present):
        trace = []
        optimize_aig(aig_from_function(present), effort="fast", trace=trace)
        assert trace[0][0] == "strash"
        assert [name for name, _ in trace[1:3]] == ["balance", "rewrite"]

    def test_early_stop_when_no_progress(self, present):
        trace = []
        optimize_aig(aig_from_function(present), effort="fast", max_rounds=5, trace=trace)
        # With early stopping the trace cannot contain 5 full rounds unless
        # every round kept improving; either way it must terminate and stay
        # bounded.
        assert len(trace) <= 1 + 5 * len(SynthesisEffort.passes("fast"))


class TestSynthesize:
    def test_result_fields_consistent(self, present, library):
        result = synthesize(present, library=library)
        assert result.area == pytest.approx(result.netlist.area())
        assert result.and_count == result.aig.num_ands
        assert validate_netlist(result.netlist) == []
        assert "GE" in repr(result)

    def test_functional_correctness(self, present, library):
        result = synthesize(present, library=library, effort="high")
        assert extract_function(result.netlist).lookup_table() == present.lookup_table()

    def test_effort_ordering(self, merged_two, library):
        fast = synthesize(merged_two.function, library=library, effort="fast")
        high = synthesize(merged_two.function, library=library, effort="high")
        # Higher effort must never be worse than fast by more than rounding.
        assert high.area <= fast.area + 1e-9

    def test_multi_output_naming(self, present, library):
        result = synthesize(present, library=library)
        assert result.netlist.primary_inputs == list(present.input_names)
        assert result.netlist.primary_outputs == list(present.output_names)

"""Unit tests for the standard-cell technology mapper."""

import random

import pytest

from repro.aig import Aig, aig_from_function, aig_from_tables
from repro.logic import BoolFunction, TruthTable
from repro.netlist import CellLibrary, extract_function, standard_cell_library, validate_netlist
from repro.synth import MappingError, map_to_cells


class TestMapping:
    def test_simple_and(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        aig.add_output(aig.and_(a, b), "y")
        netlist = map_to_cells(aig)
        assert validate_netlist(netlist) == []
        assert extract_function(netlist).lookup_table() == [0, 0, 0, 1]
        # One AND2 (or NAND2+INV) should suffice; area must stay small.
        assert netlist.area() <= 2.0

    def test_inverted_output(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        aig.add_output(Aig.negate(aig.and_(a, b)), "y")
        netlist = map_to_cells(aig)
        assert extract_function(netlist).lookup_table() == [1, 1, 1, 0]
        histogram = netlist.cell_histogram()
        assert histogram.get("NAND2", 0) >= 1 or histogram.get("INV", 0) >= 1

    def test_wide_and_uses_multi_input_gate(self):
        aig = Aig()
        literals = [aig.add_input() for _ in range(4)]
        aig.add_output(aig.and_many(literals), "y")
        netlist = map_to_cells(aig)
        histogram = netlist.cell_histogram()
        assert any(cell in histogram for cell in ("AND4", "AND3", "NAND4", "NAND3"))
        assert extract_function(netlist).output(0).count_ones() == 1

    def test_constant_output(self):
        aig = Aig()
        aig.add_input("a")
        aig.add_output(1, "one")
        aig.add_output(0, "zero")
        netlist = map_to_cells(aig)
        function = extract_function(netlist)
        assert function.evaluate_word(0) == 0b01
        assert function.evaluate_word(1) == 0b01

    def test_output_directly_from_input(self):
        aig = Aig()
        a = aig.add_input("a")
        aig.add_output(a, "y")
        aig.add_output(Aig.negate(a), "ny")
        netlist = map_to_cells(aig)
        function = extract_function(netlist)
        assert function.evaluate_word(0) == 0b10
        assert function.evaluate_word(1) == 0b01

    def test_shared_output_literals(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        node = aig.and_(a, b)
        aig.add_output(node, "y0")
        aig.add_output(node, "y1")
        netlist = map_to_cells(aig)
        function = extract_function(netlist)
        assert function.evaluate_word(0b11) == 0b11
        assert function.evaluate_word(0b01) == 0b00

    def test_functional_equivalence_on_random_functions(self):
        rng = random.Random(31)
        for _ in range(10):
            tables = [TruthTable(4, rng.getrandbits(16)) for _ in range(2)]
            aig = aig_from_tables(tables)
            netlist = map_to_cells(aig)
            assert validate_netlist(netlist) == []
            assert list(extract_function(netlist).outputs) == tables

    def test_present_mapping_quality(self, present):
        netlist = map_to_cells(aig_from_function(present))
        # The PRESENT S-box is ~30 GE in the paper's library; our simple-gate
        # mapper should land in the same ballpark (well under 3x).
        assert netlist.area() < 90.0

    def test_missing_cells_rejected(self, present):
        tiny = CellLibrary("tiny", [standard_cell_library()["INV"]])
        with pytest.raises(MappingError):
            map_to_cells(aig_from_function(present), tiny)

    def test_requested_output_names_kept(self, present):
        netlist = map_to_cells(aig_from_function(present))
        assert netlist.primary_outputs == list(present.output_names)

"""Unit tests for multi-output Boolean functions."""

import pytest

from repro.logic import BoolFunction, TruthTable


@pytest.fixture
def swap_function():
    """A 2-in/2-out function that swaps its inputs."""
    return BoolFunction.from_lookup([0b00, 0b10, 0b01, 0b11], 2, 2, name="swap")


class TestConstruction:
    def test_from_lookup_roundtrip(self):
        table = [3, 0, 2, 1]
        function = BoolFunction.from_lookup(table, 2, 2)
        assert function.lookup_table() == table

    def test_from_lookup_length_check(self):
        with pytest.raises(ValueError):
            BoolFunction.from_lookup([0, 1, 2], 2, 2)

    def test_from_lookup_range_check(self):
        with pytest.raises(ValueError):
            BoolFunction.from_lookup([0, 1, 2, 4], 2, 2)

    def test_from_callable(self):
        function = BoolFunction.from_callable(3, 2, lambda x: x % 4)
        assert function.lookup_table() == [x % 4 for x in range(8)]

    def test_requires_at_least_one_output(self):
        with pytest.raises(ValueError):
            BoolFunction([])

    def test_outputs_must_share_inputs(self):
        with pytest.raises(ValueError):
            BoolFunction([TruthTable.variable(0, 2), TruthTable.variable(0, 3)])

    def test_name_length_checks(self):
        with pytest.raises(ValueError):
            BoolFunction([TruthTable.variable(0, 2)], input_names=["a"])
        with pytest.raises(ValueError):
            BoolFunction([TruthTable.variable(0, 2)], output_names=["y", "z"])


class TestEvaluation:
    def test_evaluate_word(self, swap_function):
        assert swap_function.evaluate_word(0b01) == 0b10
        assert swap_function.evaluate_word(0b10) == 0b01

    def test_evaluate_word_range(self, swap_function):
        with pytest.raises(ValueError):
            swap_function.evaluate_word(4)

    def test_output_accessor(self, swap_function):
        assert swap_function.output(0) == TruthTable.variable(1, 2)
        assert swap_function.output(1) == TruthTable.variable(0, 2)

    def test_is_permutation(self, swap_function):
        assert swap_function.is_permutation()
        constant = BoolFunction.from_lookup([0, 0, 0, 0], 2, 2)
        assert not constant.is_permutation()
        non_square = BoolFunction.from_lookup([0, 1, 1, 0], 2, 1)
        assert not non_square.is_permutation()


class TestPinPermutations:
    def test_permute_inputs_semantics(self):
        # f(x0, x1) = x0 (identity on bit 0).
        function = BoolFunction([TruthTable.variable(0, 2)], name="proj")
        permuted = function.permute_inputs([1, 0])
        # Old input 0 moved to slot 1, so the output now follows input 1.
        assert permuted.output(0) == TruthTable.variable(1, 2)

    def test_permute_outputs_semantics(self, swap_function):
        permuted = swap_function.permute_outputs([1, 0])
        assert permuted.output(0) == swap_function.output(1)
        assert permuted.output(1) == swap_function.output(0)

    def test_permute_outputs_invalid(self, swap_function):
        with pytest.raises(ValueError):
            swap_function.permute_outputs([0, 0])

    def test_input_names_follow_permutation(self):
        function = BoolFunction.from_lookup([0, 1, 2, 3], 2, 2)
        permuted = function.permute_inputs([1, 0])
        assert permuted.input_names == (function.input_names[1], function.input_names[0])

    def test_permutation_preserves_behaviour(self, swap_function):
        permuted = swap_function.permute_inputs([1, 0]).permute_outputs([1, 0])
        # Swapping both inputs and outputs of the swap function yields the
        # same function again.
        assert permuted.lookup_table() == swap_function.lookup_table()


class TestMisc:
    def test_rename(self, swap_function):
        renamed = swap_function.rename("other")
        assert renamed.name == "other"
        assert renamed == swap_function  # equality ignores the name

    def test_equality_and_hash(self, swap_function):
        same = BoolFunction.from_lookup([0b00, 0b10, 0b01, 0b11], 2, 2, name="x")
        assert swap_function == same
        assert hash(swap_function) == hash(same)
        assert swap_function != BoolFunction.from_lookup([0, 1, 2, 3], 2, 2)
        assert swap_function != 42

    def test_repr(self, swap_function):
        assert "swap" in repr(swap_function)

"""Unit tests for the packed truth-table representation."""

import pytest

from repro.logic import TruthTable


class TestConstruction:
    def test_constant_zero(self):
        table = TruthTable.constant(3, False)
        assert table.num_vars == 3
        assert table.bits == 0
        assert table.is_constant_zero()

    def test_constant_one(self):
        table = TruthTable.constant(2, True)
        assert table.bits == 0b1111
        assert table.is_constant_one()

    def test_variable_patterns(self):
        assert TruthTable.variable(0, 2).bits == 0b1010
        assert TruthTable.variable(1, 2).bits == 0b1100
        assert TruthTable.variable(2, 3).bits == 0b11110000

    def test_variable_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.variable(2, 2)

    def test_from_values(self):
        table = TruthTable.from_values([0, 1, 1, 0])
        assert table.num_vars == 2
        assert table.bits == 0b0110

    def test_from_values_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TruthTable.from_values([0, 1, 1])

    def test_from_minterms(self):
        table = TruthTable.from_minterms(3, [0, 7])
        assert table.value_at(0) == 1
        assert table.value_at(7) == 1
        assert table.count_ones() == 2

    def test_from_minterms_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.from_minterms(2, [4])

    def test_from_function(self):
        table = TruthTable.from_function(2, lambda a, b: a and not b)
        assert table.values() == [0, 1, 0, 0]

    def test_rejects_oversized_bits(self):
        with pytest.raises(ValueError):
            TruthTable(1, 0b10000)

    def test_rejects_negative_num_vars(self):
        with pytest.raises(ValueError):
            TruthTable(-1, 0)


class TestEvaluation:
    def test_evaluate_matches_value_at(self):
        table = TruthTable.from_values([1, 0, 0, 1, 1, 1, 0, 0])
        for row in range(8):
            assignment = [(row >> var) & 1 for var in range(3)]
            assert table.evaluate(assignment) == table.value_at(row)

    def test_evaluate_wrong_arity(self):
        table = TruthTable.constant(2, True)
        with pytest.raises(ValueError):
            table.evaluate([1])

    def test_minterms_roundtrip(self):
        table = TruthTable.from_minterms(4, [1, 5, 9])
        assert table.minterms() == [1, 5, 9]


class TestConnectives:
    def test_and_or_xor_invert(self):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        assert (a & b).bits == 0b1000
        assert (a | b).bits == 0b1110
        assert (a ^ b).bits == 0b0110
        assert (~a).bits == 0b0101

    def test_de_morgan(self):
        a = TruthTable.variable(0, 3)
        b = TruthTable.variable(2, 3)
        assert ~(a & b) == (~a) | (~b)
        assert ~(a | b) == (~a) & (~b)

    def test_mixed_arity_rejected(self):
        with pytest.raises(ValueError):
            TruthTable.variable(0, 2) & TruthTable.variable(0, 3)

    def test_implies(self):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        assert (a & b).implies(a)
        assert not a.implies(a & b)


class TestCofactorsAndQuantification:
    def test_cofactor_removes_dependence(self):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        function = a & b
        assert function.cofactor(0, 1) == b
        assert function.cofactor(0, 0).is_constant_zero()
        assert not function.cofactor(0, 1).depends_on(0)

    def test_shannon_expansion_identity(self):
        function = TruthTable.from_values([1, 0, 1, 1, 0, 1, 0, 0])
        for var in range(3):
            x = TruthTable.variable(var, 3)
            rebuilt = (x & function.cofactor(var, 1)) | (~x & function.cofactor(var, 0))
            assert rebuilt == function

    def test_exists_forall(self):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        function = a & b
        assert function.exists(0) == b
        assert function.forall(0).is_constant_zero()

    def test_restrict_multiple(self):
        function = TruthTable.from_values([0, 1, 1, 0, 1, 0, 0, 1])
        restricted = function.restrict({0: 1, 2: 0})
        assert restricted.value_at(0b001) == function.value_at(0b001)
        assert not restricted.depends_on(0)
        assert not restricted.depends_on(2)

    def test_support(self):
        a = TruthTable.variable(0, 3)
        c = TruthTable.variable(2, 3)
        assert (a & c).support() == (0, 2)
        assert TruthTable.constant(3, True).support() == ()


class TestStructuralOperations:
    def test_permute_inputs_swap(self):
        a = TruthTable.variable(0, 2)
        permuted = a.permute_inputs([1, 0])
        assert permuted == TruthTable.variable(1, 2)

    def test_permute_inputs_is_inverse_applied_twice(self):
        function = TruthTable.from_values([1, 0, 0, 1, 1, 1, 0, 1])
        permutation = [2, 0, 1]
        inverse = [1, 2, 0]
        assert function.permute_inputs(permutation).permute_inputs(inverse) == function

    def test_permute_inputs_invalid(self):
        with pytest.raises(ValueError):
            TruthTable.variable(0, 2).permute_inputs([0, 0])

    def test_negate_input(self):
        a = TruthTable.variable(0, 2)
        assert a.negate_input(0) == ~a
        b = TruthTable.variable(1, 2)
        assert (a & b).negate_input(1) == (a & ~b)

    def test_extend_preserves_function(self):
        a = TruthTable.variable(0, 1)
        extended = a.extend(3)
        assert extended.num_vars == 3
        assert extended == TruthTable.variable(0, 3)
        with pytest.raises(ValueError):
            extended.extend(2)

    def test_shrink_to_support(self):
        b = TruthTable.variable(1, 3)
        c = TruthTable.variable(2, 3)
        function = b ^ c
        reduced, support = function.shrink_to_support()
        assert support == (1, 2)
        assert reduced.num_vars == 2
        assert reduced == TruthTable.variable(0, 2) ^ TruthTable.variable(1, 2)

    def test_compose(self):
        # f(x0, x1) = x0 & x1 composed with g0 = a|b, g1 = ~a gives (a|b) & ~a.
        f = TruthTable.variable(0, 2) & TruthTable.variable(1, 2)
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        composed = f.compose([a | b, ~a])
        assert composed == (a | b) & ~a

    def test_compose_arity_mismatch(self):
        f = TruthTable.variable(0, 2)
        with pytest.raises(ValueError):
            f.compose([TruthTable.variable(0, 2)])


class TestCofactorFamily:
    def test_nand2_family_matches_figure_1b(self):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        nand = ~(a & b)
        family = set(nand.all_partial_cofactors())
        expected = {nand, ~a, ~b, TruthTable.constant(2, True), TruthTable.constant(2, False)}
        assert family == expected

    def test_family_always_contains_original_and_constants(self):
        function = TruthTable.from_values([0, 1, 1, 1, 0, 0, 1, 0])
        family = set(function.all_partial_cofactors())
        assert function in family
        # A non-constant function fixed on all inputs yields both constants
        # only if both output values occur; this one has both.
        assert TruthTable.constant(3, True) in family
        assert TruthTable.constant(3, False) in family


class TestDunder:
    def test_equality_and_hash(self):
        a = TruthTable.variable(0, 2)
        assert a == TruthTable.variable(0, 2)
        assert hash(a) == hash(TruthTable.variable(0, 2))
        assert a != TruthTable.variable(1, 2)
        assert a != "not a table"

    def test_repr_and_binary_string(self):
        table = TruthTable.from_values([1, 0, 1, 1])
        assert "TruthTable" in repr(table)
        assert table.to_binary_string() == "1011"

"""Property-based tests (hypothesis) for the Boolean-function substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import TruthTable, expression_to_table, factor_table, isop


def tables(max_vars=4):
    """Strategy producing random truth tables of 1..max_vars variables."""
    return st.integers(min_value=1, max_value=max_vars).flatmap(
        lambda n: st.builds(
            TruthTable,
            st.just(n),
            st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
        )
    )


@given(tables())
def test_double_negation(table):
    assert ~(~table) == table


@given(tables())
def test_and_or_absorption(table):
    other = ~table
    assert (table & (table | other)) == table
    assert (table | (table & other)) == table


@given(tables(), st.data())
def test_shannon_expansion(table, data):
    var = data.draw(st.integers(min_value=0, max_value=table.num_vars - 1))
    x = TruthTable.variable(var, table.num_vars)
    rebuilt = (x & table.cofactor(var, 1)) | (~x & table.cofactor(var, 0))
    assert rebuilt == table


@given(tables(), st.data())
def test_cofactor_is_independent_of_variable(table, data):
    var = data.draw(st.integers(min_value=0, max_value=table.num_vars - 1))
    value = data.draw(st.integers(min_value=0, max_value=1))
    assert not table.cofactor(var, value).depends_on(var)


@given(tables(), st.data())
def test_permute_inputs_roundtrip(table, data):
    permutation = data.draw(st.permutations(list(range(table.num_vars))))
    inverse = [0] * table.num_vars
    for old, new in enumerate(permutation):
        inverse[new] = old
    assert table.permute_inputs(permutation).permute_inputs(inverse) == table


@given(tables(), st.data())
def test_permute_inputs_preserves_weight(table, data):
    permutation = data.draw(st.permutations(list(range(table.num_vars))))
    assert table.permute_inputs(permutation).count_ones() == table.count_ones()


@given(tables())
@settings(max_examples=60)
def test_isop_is_exact(table):
    assert isop(table).to_table() == table


@given(tables(max_vars=4))
@settings(max_examples=40, deadline=None)
def test_factoring_preserves_function(table):
    expression = factor_table(table)
    variables = [f"x{index}" for index in range(table.num_vars)]
    assert expression_to_table(expression, variables) == table


@given(tables())
def test_cofactor_family_contains_all_single_cofactors(table):
    family = set(table.all_partial_cofactors())
    for var in range(table.num_vars):
        for value in (0, 1):
            assert table.cofactor(var, value) in family


@given(tables())
def test_support_matches_dependence(table):
    support = set(table.support())
    for var in range(table.num_vars):
        assert (var in support) == table.depends_on(var)

"""Unit tests for the Boolean expression language."""

import pytest

from repro.logic import (
    And,
    Const,
    Not,
    Or,
    TruthTable,
    Var,
    Xor,
    expression_to_table,
    parse_expression,
)


class TestParser:
    @pytest.mark.parametrize(
        "text, variables, expected_bits",
        [
            ("a & b", ["a", "b"], 0b1000),
            ("a | b", ["a", "b"], 0b1110),
            ("a ^ b", ["a", "b"], 0b0110),
            ("~a", ["a"], 0b01),
            ("a & ~b | c", ["a", "b", "c"], None),
            ("0", ["a"], 0b00),
            ("1", ["a"], 0b11),
        ],
    )
    def test_parse_and_evaluate(self, text, variables, expected_bits):
        table = expression_to_table(parse_expression(text), variables)
        if expected_bits is not None:
            assert table.bits == expected_bits
        else:
            # Spot-check (a & ~b | c) on a few rows.
            assert table.evaluate([1, 0, 0]) == 1
            assert table.evaluate([1, 1, 0]) == 0
            assert table.evaluate([0, 0, 1]) == 1

    def test_alternate_operators(self):
        variables = ["a", "b"]
        assert expression_to_table(parse_expression("a * b"), variables) == \
            expression_to_table(parse_expression("a & b"), variables)
        assert expression_to_table(parse_expression("a + b"), variables) == \
            expression_to_table(parse_expression("a | b"), variables)
        assert expression_to_table(parse_expression("!a"), ["a"]) == \
            expression_to_table(parse_expression("~a"), ["a"])

    def test_implicit_and_by_adjacency(self):
        variables = ["a", "b", "c"]
        implicit = expression_to_table(parse_expression("a b c"), variables)
        explicit = expression_to_table(parse_expression("a & b & c"), variables)
        assert implicit == explicit

    def test_precedence_and_parentheses(self):
        variables = ["a", "b", "c"]
        no_parens = expression_to_table(parse_expression("a | b & c"), variables)
        with_parens = expression_to_table(parse_expression("a | (b & c)"), variables)
        assert no_parens == with_parens
        grouped = expression_to_table(parse_expression("(a | b) & c"), variables)
        assert grouped != no_parens

    def test_bracketed_identifiers(self):
        table = expression_to_table(parse_expression("i[0] & i[1]"), ["i[0]", "i[1]"])
        assert table == TruthTable.variable(0, 2) & TruthTable.variable(1, 2)

    def test_paper_fig3_functions_differ(self):
        variables = ["a", "b", "c", "d", "e"]
        f0 = expression_to_table(parse_expression("(a&b | c&d) & e"), variables)
        f1 = expression_to_table(parse_expression("(a&b | c&d) | e"), variables)
        assert f0 != f1
        assert f0.implies(f1)

    @pytest.mark.parametrize("bad", ["", "a &", "(a", "a))", "a @ b", "~"])
    def test_parse_errors(self, bad):
        with pytest.raises(ValueError):
            parse_expression(bad)

    def test_missing_variable_in_order(self):
        with pytest.raises(ValueError):
            expression_to_table(parse_expression("a & b"), ["a"])


class TestAst:
    def test_variables_collection(self):
        expression = parse_expression("(a & b) | ~c | a")
        assert expression.variables() == ("a", "b", "c")

    def test_evaluate_missing_variable(self):
        with pytest.raises(KeyError):
            Var("x").evaluate({})

    def test_operator_overloads(self):
        a, b = Var("a"), Var("b")
        table = expression_to_table((a & b) | ~a, ["a", "b"])
        reference = expression_to_table(parse_expression("(a&b) | ~a"), ["a", "b"])
        assert table == reference
        xor_table = expression_to_table(a ^ b, ["a", "b"])
        assert xor_table == TruthTable.variable(0, 2) ^ TruthTable.variable(1, 2)

    def test_str_roundtrip(self):
        expression = parse_expression("(a & ~b) | (c ^ d)")
        text = str(expression)
        reparsed = parse_expression(text)
        order = ["a", "b", "c", "d"]
        assert expression_to_table(expression, order) == expression_to_table(reparsed, order)

    def test_const_and_not_str(self):
        assert str(Const(1)) == "1"
        assert str(Const(0)) == "0"
        assert str(Not(Var("a"))) == "~a"

    def test_xor_evaluation(self):
        expression = Xor((Var("a"), Var("b"), Var("c")))
        assert expression.evaluate({"a": 1, "b": 1, "c": 1}) == 1
        assert expression.evaluate({"a": 1, "b": 1, "c": 0}) == 0

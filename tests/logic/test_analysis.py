"""Unit tests for the S-box quality measures (DDT, Walsh spectrum, degree)."""

import pytest

from repro.logic import (
    algebraic_degree,
    difference_distribution_table,
    differential_uniformity,
    is_optimal_4bit_sbox,
    linearity,
    nonlinearity,
    walsh_spectrum,
)
from repro.sboxes import PRESENT_SBOX

IDENTITY = list(range(16))
#: An affine S-box: y = x ^ 5.  Linear structures make it maximally weak.
AFFINE = [x ^ 5 for x in range(16)]


class TestDdt:
    def test_row_zero_is_concentrated(self):
        ddt = difference_distribution_table(PRESENT_SBOX, 4, 4)
        assert ddt[0][0] == 16
        assert all(ddt[0][b] == 0 for b in range(1, 16))

    def test_rows_sum_to_input_count(self):
        ddt = difference_distribution_table(PRESENT_SBOX, 4, 4)
        for row in ddt:
            assert sum(row) == 16

    def test_ddt_entries_are_even(self):
        ddt = difference_distribution_table(PRESENT_SBOX, 4, 4)
        for row in ddt:
            assert all(entry % 2 == 0 for entry in row)

    def test_present_differential_uniformity(self):
        assert differential_uniformity(PRESENT_SBOX, 4, 4) == 4

    def test_affine_sbox_is_weak(self):
        assert differential_uniformity(AFFINE, 4, 4) == 16

    def test_lookup_validation(self):
        with pytest.raises(ValueError):
            differential_uniformity([0, 1, 2], 4, 4)
        with pytest.raises(ValueError):
            differential_uniformity([16] + [0] * 15, 4, 4)


class TestWalsh:
    def test_present_linearity(self):
        assert linearity(PRESENT_SBOX, 4, 4) == 8

    def test_present_nonlinearity(self):
        assert nonlinearity(PRESENT_SBOX, 4, 4) == 4

    def test_affine_sbox_linearity_is_maximal(self):
        assert linearity(AFFINE, 4, 4) == 16

    def test_spectrum_zero_mask_column(self):
        spectrum = walsh_spectrum(PRESENT_SBOX, 4, 4)
        # For output mask 0 the correlation with input mask 0 is 2^n.
        assert spectrum[0][0] == 16
        assert all(spectrum[a][0] == 0 for a in range(1, 16))

    def test_parseval_like_energy(self):
        spectrum = walsh_spectrum(PRESENT_SBOX, 4, 4)
        for mask_out in range(1, 16):
            energy = sum(spectrum[a][mask_out] ** 2 for a in range(16))
            assert energy == 16 * 16  # Parseval for a balanced component function


class TestDegreeAndOptimality:
    def test_present_degree(self):
        assert algebraic_degree(PRESENT_SBOX, 4, 4) == 3

    def test_affine_degree(self):
        assert algebraic_degree(AFFINE, 4, 4) == 1

    def test_constant_degree(self):
        assert algebraic_degree([0] * 16, 4, 4) == 0

    def test_present_is_optimal(self):
        assert is_optimal_4bit_sbox(PRESENT_SBOX)

    def test_identity_is_not_optimal(self):
        assert not is_optimal_4bit_sbox(IDENTITY)

    def test_non_bijective_rejected(self):
        assert not is_optimal_4bit_sbox([0] * 16)

    def test_wrong_size_rejected(self):
        assert not is_optimal_4bit_sbox(list(range(8)))

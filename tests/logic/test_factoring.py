"""Unit tests for algebraic factoring of SOP covers."""

import random

import pytest

from repro.logic import (
    TruthTable,
    expression_literal_count,
    expression_to_table,
    factor_cover,
    factor_table,
    isop,
)


def _variables(count):
    return [f"x{index}" for index in range(count)]


class TestFactorTable:
    def test_constants(self):
        zero = factor_table(TruthTable.constant(3, False))
        one = factor_table(TruthTable.constant(3, True))
        assert expression_to_table(zero, _variables(3)).is_constant_zero()
        assert expression_to_table(one, _variables(3)).is_constant_one()

    def test_equivalence_on_random_functions(self):
        rng = random.Random(11)
        for num_vars in (2, 3, 4, 5):
            for _ in range(15):
                table = TruthTable(num_vars, rng.getrandbits(1 << num_vars))
                expression = factor_table(table)
                rebuilt = expression_to_table(expression, _variables(num_vars))
                assert rebuilt == table

    def test_factoring_reduces_literals_of_shared_literal_sop(self):
        # f = a&b | a&c | a&d has 6 SOP literals but factors to a&(b|c|d) = 4.
        a = TruthTable.variable(0, 4)
        b = TruthTable.variable(1, 4)
        c = TruthTable.variable(2, 4)
        d = TruthTable.variable(3, 4)
        table = (a & b) | (a & c) | (a & d)
        cover = isop(table)
        expression = factor_cover(cover)
        assert expression_literal_count(expression) < cover.num_literals()
        assert expression_to_table(expression, _variables(4)) == table

    def test_single_cube_stays_a_cube(self):
        a = TruthTable.variable(0, 3)
        c = TruthTable.variable(2, 3)
        expression = factor_table(a & ~c)
        assert expression_literal_count(expression) == 2

    def test_dont_cares_forwarded(self):
        onset = TruthTable.variable(0, 2) & TruthTable.variable(1, 2)
        dc = TruthTable.variable(0, 2) & ~TruthTable.variable(1, 2)
        expression = factor_table(onset, dc)
        rebuilt = expression_to_table(expression, _variables(2))
        assert onset.implies(rebuilt)
        assert rebuilt.implies(onset | dc)


class TestLiteralCount:
    def test_counts(self):
        expression = factor_table(
            (TruthTable.variable(0, 3) & TruthTable.variable(1, 3))
            | TruthTable.variable(2, 3)
        )
        assert expression_literal_count(expression) == 3

    def test_unknown_node_type_rejected(self):
        with pytest.raises(TypeError):
            expression_literal_count(object())

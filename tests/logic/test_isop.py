"""Unit tests for ISOP extraction and cube covers."""

import random

import pytest

from repro.logic import Cube, TruthTable, cover_to_table, isop


class TestCube:
    def test_literals_and_count(self):
        cube = Cube(positive=0b101, negative=0b010)
        assert set(cube.literals()) == {(0, True), (2, True), (1, False)}
        assert cube.num_literals() == 3

    def test_with_literal(self):
        cube = Cube(0, 0).with_literal(1, True).with_literal(0, False)
        assert cube.positive == 0b10
        assert cube.negative == 0b01

    def test_to_table(self):
        cube = Cube(positive=0b01, negative=0b10)  # x0 & ~x1
        table = cube.to_table(2)
        assert table == TruthTable.variable(0, 2) & ~TruthTable.variable(1, 2)

    def test_empty_cube_is_tautology(self):
        assert Cube(0, 0).to_table(3).is_constant_one()

    def test_contradiction_flag(self):
        assert Cube(0b1, 0b1).contradicts()
        assert not Cube(0b1, 0b10).contradicts()


class TestIsop:
    def test_constant_functions(self):
        zero = isop(TruthTable.constant(3, False))
        assert len(zero) == 0
        assert zero.to_table().is_constant_zero()
        one = isop(TruthTable.constant(3, True))
        assert len(one) == 1
        assert one.to_table().is_constant_one()

    def test_single_variable(self):
        cover = isop(TruthTable.variable(1, 3))
        assert cover.to_table() == TruthTable.variable(1, 3)
        assert cover.num_literals() == 1

    def test_exactness_on_random_functions(self):
        rng = random.Random(7)
        for num_vars in (1, 2, 3, 4, 5):
            for _ in range(20):
                bits = rng.getrandbits(1 << num_vars)
                table = TruthTable(num_vars, bits)
                cover = isop(table)
                assert cover.to_table() == table, f"ISOP not exact for {table!r}"

    def test_xor_needs_expected_cubes(self):
        xor = TruthTable.variable(0, 2) ^ TruthTable.variable(1, 2)
        cover = isop(xor)
        assert len(cover) == 2
        assert cover.num_literals() == 4

    def test_dont_cares_are_used(self):
        # onset = {x0 & x1}, dc = {x0 & ~x1}: the cover may collapse to x0.
        onset = TruthTable.variable(0, 2) & TruthTable.variable(1, 2)
        dc = TruthTable.variable(0, 2) & ~TruthTable.variable(1, 2)
        cover = isop(onset, dc)
        result = cover.to_table()
        assert onset.implies(result)
        assert result.implies(onset | dc)
        assert cover.num_literals() <= 2

    def test_dc_arity_mismatch(self):
        with pytest.raises(ValueError):
            isop(TruthTable.constant(2, True), TruthTable.constant(3, False))

    def test_irredundancy_on_small_functions(self):
        # Removing any cube from the cover must lose part of the on-set.
        rng = random.Random(3)
        for _ in range(10):
            table = TruthTable(3, rng.getrandbits(8))
            if table.is_constant():
                continue
            cover = isop(table)
            for skip in range(len(cover.cubes)):
                remaining = [cube for index, cube in enumerate(cover.cubes) if index != skip]
                assert cover_to_table(remaining, 3) != table

    def test_cover_repr_and_len(self):
        cover = isop(TruthTable.variable(0, 2))
        assert len(cover) == 1
        assert "Cover" in repr(cover)
        assert list(iter(cover)) == cover.cubes

"""Unit tests for the metrics registry and Prometheus exposition."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    absorb_telemetry,
    counter,
    registry,
    render_prometheus,
    reset_metrics,
)
from repro.telemetry import RunTelemetry


@pytest.fixture
def fresh():
    return MetricsRegistry()


class TestCounters:
    def test_counter_accumulates(self, fresh):
        fresh.counter("repro_x_total")
        fresh.counter("repro_x_total", 4)
        assert fresh.value("repro_x_total") == 5.0

    def test_labelled_series_are_independent(self, fresh):
        fresh.counter("repro_jobs_total", status="ok")
        fresh.counter("repro_jobs_total", 2, status="failed")
        assert fresh.value("repro_jobs_total", status="ok") == 1.0
        assert fresh.value("repro_jobs_total", status="failed") == 2.0
        assert fresh.value("repro_jobs_total") == 0.0  # unlabelled absent

    def test_gauge_overwrites(self, fresh):
        fresh.gauge("repro_active", 3)
        fresh.gauge("repro_active", 1)
        assert fresh.value("repro_active") == 1.0

    def test_value_absent_is_zero(self, fresh):
        assert fresh.value("repro_never_written") == 0.0


class TestRender:
    def test_counter_and_gauge_text(self, fresh):
        fresh.counter("repro_claims_total", 3, campaign="c1")
        fresh.gauge("repro_campaigns", 2)
        text = fresh.render()
        assert "# TYPE repro_claims_total counter" in text
        assert 'repro_claims_total{campaign="c1"} 3' in text
        assert "# TYPE repro_campaigns gauge" in text
        assert "repro_campaigns 2" in text
        assert text.endswith("\n")

    def test_histogram_cumulative_buckets(self, fresh):
        fresh.observe("repro_seconds", 0.003)
        fresh.observe("repro_seconds", 0.3)
        text = fresh.render()
        assert "# TYPE repro_seconds histogram" in text
        # 0.003 fits every bucket from 0.005 up; 0.3 from 0.5 up — so the
        # cumulative counts step 0, 1, 1, 1, 2 across the default bounds.
        assert 'repro_seconds_bucket{le="0.001"} 0' in text
        assert 'repro_seconds_bucket{le="0.005"} 1' in text
        assert 'repro_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_seconds_bucket{le="0.5"} 2' in text
        assert 'repro_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_seconds_sum 0.303" in text
        assert "repro_seconds_count 2" in text

    def test_custom_buckets(self, fresh):
        fresh.observe("repro_sizes", 7, buckets=(5, 10))
        text = fresh.render()
        assert 'repro_sizes_bucket{le="5"} 0' in text
        assert 'repro_sizes_bucket{le="10"} 1' in text

    def test_empty_registry_renders_empty(self, fresh):
        assert fresh.render() == ""


class TestAbsorbTelemetry:
    def test_scopes_become_prefixed_counters(self, fresh):
        telemetry = RunTelemetry(label="job")
        telemetry.count("solver", "conflicts", 5)
        telemetry.record("cache", "hits", 2)
        telemetry.record("synth", "flag", True)  # bool: skipped
        fresh.absorb_telemetry(telemetry, campaign="c1")
        assert fresh.value("repro_telemetry_solver_conflicts", campaign="c1") == 5.0
        assert fresh.value("repro_telemetry_cache_hits", campaign="c1") == 2.0
        assert "repro_telemetry_synth_flag" not in fresh.render()

    def test_hostile_names_sanitized(self, fresh):
        telemetry = RunTelemetry()
        telemetry.record("so-lver", "dip queries", 1)
        fresh.absorb_telemetry(telemetry)
        assert fresh.value("repro_telemetry_so_lver_dip_queries") == 1.0

    def test_plain_scopes_mapping_accepted(self, fresh):
        class Legacy:
            scopes = {"solver": {"conflicts": 3}}

        fresh.absorb_telemetry(Legacy())
        assert fresh.value("repro_telemetry_solver_conflicts") == 3.0

    def test_scopeless_object_ignored(self, fresh):
        fresh.absorb_telemetry(object())
        assert fresh.render() == ""


class TestSnapshot:
    def test_flat_counter_gauge_view(self, fresh):
        fresh.counter("repro_jobs_total", 2, status="ok")
        fresh.gauge("repro_active", 1)
        snap = fresh.snapshot()
        assert snap["repro_jobs_total"] == {"status=ok": 2.0}
        assert snap["repro_active"] == {"_": 1.0}

    def test_histograms_not_in_snapshot(self, fresh):
        fresh.observe("repro_seconds", 0.1)
        assert "repro_seconds" not in fresh.snapshot()


class TestModuleRegistry:
    def test_default_registry_roundtrip(self):
        reset_metrics()
        try:
            counter("repro_test_only_total", 2)
            assert registry().value("repro_test_only_total") == 2.0
            assert "repro_test_only_total 2" in render_prometheus()
            telemetry = RunTelemetry()
            telemetry.count("ga", "evaluations", 7)
            absorb_telemetry(telemetry)
            assert registry().value("repro_telemetry_ga_evaluations") == 7.0
        finally:
            reset_metrics()
        assert registry().value("repro_test_only_total") == 0.0

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

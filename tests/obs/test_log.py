"""Unit tests for the structured logger's human and JSONL modes."""

import json

import pytest

from repro.obs.log import LOG_ENV_VAR, Logger, get_logger, reset_log_state


@pytest.fixture(autouse=True)
def _clean_log_state(monkeypatch):
    monkeypatch.delenv(LOG_ENV_VAR, raising=False)
    reset_log_state()
    yield
    reset_log_state()


@pytest.fixture
def sink():
    lines = []
    return lines


class TestHumanMode:
    def test_message_printed_verbatim(self, sink):
        log = get_logger("campaign", sink=sink.append)
        log("probe_2: cached (state matches)", job="probe_2")
        assert sink == ["probe_2: cached (state matches)"]  # fields dropped

    def test_callable_is_info(self, sink):
        log = Logger("worker", sink=sink.append)
        log("a")
        log.info("b")
        assert sink == ["a", "b"]

    def test_debug_suppressed_by_default(self, sink):
        log = get_logger("serve", sink=sink.append)
        log.debug("noise")
        log.warning("kept")
        assert sink == ["kept"]

    def test_debug_threshold(self, monkeypatch, sink):
        monkeypatch.setenv(LOG_ENV_VAR, "debug")
        reset_log_state()
        log = get_logger("serve", sink=sink.append)
        log.debug("noise")
        assert sink == ["noise"]

    def test_error_threshold_drops_info(self, monkeypatch, sink):
        monkeypatch.setenv(LOG_ENV_VAR, "error")
        reset_log_state()
        log = get_logger("serve", sink=sink.append)
        log.info("dropped")
        log.error("kept")
        assert sink == ["kept"]


class TestJsonMode:
    def test_jsonl_record_shape(self, monkeypatch, sink):
        monkeypatch.setenv(LOG_ENV_VAR, "json")
        reset_log_state()
        log = get_logger("worker", sink=sink.append)
        log("probe_2: ok (1.2s)", job="probe_2", seconds=1.2)
        record = json.loads(sink[0])
        assert record["level"] == "info"
        assert record["logger"] == "worker"
        assert record["message"] == "probe_2: ok (1.2s)"
        assert record["job"] == "probe_2"
        assert record["seconds"] == 1.2
        assert isinstance(record["ts"], float)

    def test_json_mode_keeps_all_levels(self, monkeypatch, sink):
        monkeypatch.setenv(LOG_ENV_VAR, "json")
        reset_log_state()
        log = get_logger("worker", sink=sink.append)
        log.debug("noise")
        assert json.loads(sink[0])["level"] == "debug"

    def test_non_json_field_stringified(self, monkeypatch, sink):
        monkeypatch.setenv(LOG_ENV_VAR, "json")
        reset_log_state()
        log = get_logger("worker", sink=sink.append)
        log("m", error=ValueError("boom"))
        assert json.loads(sink[0])["error"] == "boom"


class TestModeCache:
    def test_env_change_invalidates_cache(self, monkeypatch, sink):
        log = get_logger("x", sink=sink.append)
        log("human")
        monkeypatch.setenv(LOG_ENV_VAR, "json")
        log("machine")
        assert sink[0] == "human"
        assert json.loads(sink[1])["message"] == "machine"

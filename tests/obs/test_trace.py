"""Unit tests for the span tracer: gating, context, persistence."""

import json
import os

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import (
    attach_context,
    current_traceparent,
    event,
    format_traceparent,
    job_span_id,
    load_trace,
    new_trace_id,
    parse_traceparent,
    record_span,
    reset_trace_state,
    span,
    trace_dir,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _clean_trace_state(monkeypatch):
    monkeypatch.delenv(obs_trace.TRACE_ENV_VAR, raising=False)
    monkeypatch.delenv(obs_trace.TRACE_DIR_ENV_VAR, raising=False)
    reset_trace_state()
    yield
    reset_trace_state()


@pytest.fixture
def traced(monkeypatch, tmp_path):
    """Enable tracing into a temp dir; returns the directory path."""
    directory = tmp_path / "trace"
    monkeypatch.setenv(obs_trace.TRACE_ENV_VAR, "1")
    monkeypatch.setenv(obs_trace.TRACE_DIR_ENV_VAR, str(directory))
    return str(directory)


class TestGating:
    def test_disabled_by_default(self):
        assert not tracing_enabled()

    def test_disabled_span_is_shared_noop(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs_trace.TRACE_DIR_ENV_VAR, str(tmp_path / "t"))
        first = span("a", job="x")
        second = span("b")
        assert first is second  # one shared inert object, no allocation
        with first as live:
            live.annotate(ignored=1)
            event("nothing")
            record_span("job", "abc", 0.0, 1.0)
        assert not os.path.exists(str(tmp_path / "t"))  # no sink ever opened

    def test_trace_dir_default_and_override(self, monkeypatch):
        assert trace_dir() == obs_trace.DEFAULT_TRACE_DIR
        monkeypatch.setenv(obs_trace.TRACE_DIR_ENV_VAR, "/tmp/elsewhere")
        assert trace_dir() == "/tmp/elsewhere"


class TestTraceparent:
    def test_roundtrip(self):
        trace_id = new_trace_id()
        header = format_traceparent(trace_id, "00f067aa0ba902b7")
        assert parse_traceparent(header) == (trace_id, "00f067aa0ba902b7")

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "garbage",
            "01-abc-def-01",  # unknown version
            "00-abc-def",  # missing flags field
            "00--def-01",  # empty trace id
            "00-abc--01",  # empty span id
            "00-nothex-def-01",
        ],
    )
    def test_malformed_is_none(self, header):
        assert parse_traceparent(header) is None

    def test_job_span_id_deterministic(self):
        trace_id = "a" * 32
        assert job_span_id(trace_id, "probe_2") == job_span_id(trace_id, "probe_2")
        assert job_span_id(trace_id, "probe_2") != job_span_id(trace_id, "probe_3")
        assert job_span_id("b" * 32, "probe_2") != job_span_id(trace_id, "probe_2")
        assert len(job_span_id(trace_id, "probe_2")) == 16
        int(job_span_id(trace_id, "probe_2"), 16)  # valid hex


class TestContext:
    def test_no_ambient_context(self):
        assert current_traceparent() == ""

    def test_attach_context_scoped(self):
        header = format_traceparent("c" * 32, "d" * 16)
        with attach_context(header):
            assert current_traceparent() == header
        assert current_traceparent() == ""

    def test_attach_malformed_leaves_context(self):
        with attach_context("not-a-header"):
            assert current_traceparent() == ""
        with attach_context(""):
            assert current_traceparent() == ""

    def test_span_sets_ambient_context(self, traced):
        with span("outer") as outer:
            assert current_traceparent() == format_traceparent(
                outer.trace_id, outer.span_id
            )
            with span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert current_traceparent() == ""


class TestPersistence:
    def test_span_event_roundtrip(self, traced):
        with span("campaign", name_attr="demo") as root:
            event("retry", job="j1", attempt=2)
            with span("job", span_id="feedfacefeedface"):
                pass
        records = load_trace(traced)
        by_name = {r["name"]: r for r in records}
        assert set(by_name) == {"campaign", "retry", "job"}
        campaign = by_name["campaign"]
        assert campaign["phase"] == "end"  # end superseded start
        assert campaign["duration"] >= 0.0
        assert campaign["attrs"] == {"name_attr": "demo"}
        assert not campaign.get("unfinished")
        job = by_name["job"]
        assert job["span"] == "feedfacefeedface"
        assert job["parent"] == root.span_id
        assert job["trace"] == root.trace_id
        retry = by_name["retry"]
        assert retry["phase"] == "event"
        assert retry["parent"] == root.span_id
        assert retry["attrs"] == {"job": "j1", "attempt": 2}

    def test_unfinished_span_survives_as_start(self, traced):
        live = span("attempt", job="probe_2")
        live.__enter__()
        # Simulate SIGKILL: the end record is never written.
        reset_trace_state()
        records = load_trace(traced)
        assert len(records) == 1
        assert records[0]["unfinished"] is True
        assert records[0]["duration"] == 0.0
        assert records[0]["name"] == "attempt"

    def test_error_recorded_on_exception(self, traced):
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("nope")
        (record,) = load_trace(traced)
        assert record["error"] == "ValueError"

    def test_record_span_complete_record(self, traced):
        record_span(
            "job",
            "abcd1234abcd1234",
            start=100.0,
            duration=2.5,
            trace_id="e" * 32,
            parent="f" * 16,
            status="ok",
        )
        (record,) = load_trace(traced)
        assert record == {
            "phase": "end",
            "trace": "e" * 32,
            "span": "abcd1234abcd1234",
            "name": "job",
            "start": 100.0,
            "duration": 2.5,
            "pid": os.getpid(),
            "parent": "f" * 16,
            "attrs": {"status": "ok"},
        }

    def test_record_span_inherits_ambient_context(self, traced):
        with span("outer") as outer:
            record_span("job", "1234123412341234", start=1.0, duration=0.5)
        records = {r["name"]: r for r in load_trace(traced)}
        assert records["job"]["trace"] == outer.trace_id
        assert records["job"]["parent"] == outer.span_id

    def test_torn_tail_skipped(self, traced):
        with span("ok"):
            pass
        segment = next(
            os.path.join(traced, n)
            for n in os.listdir(traced)
            if n.endswith(".jsonl")
        )
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"phase": "end", "span": "tru')  # torn crash tail
        records = load_trace(traced)
        assert [r["name"] for r in records] == ["ok"]

    def test_load_trace_missing_dir(self, tmp_path):
        assert load_trace(str(tmp_path / "nope")) == []

    def test_segments_are_per_pid(self, traced):
        with span("a"):
            pass
        names = os.listdir(traced)
        assert names == [f"trace.{os.getpid()}.jsonl"]
        with open(os.path.join(traced, names[0]), encoding="utf-8") as handle:
            for line in handle:
                json.loads(line)  # every line is complete JSON

"""Unit tests for trace rendering: tree, rollup, critical path, SVG."""

import xml.etree.ElementTree as ElementTree

from repro.obs.render import (
    critical_path,
    render_critical_path,
    render_rollup,
    render_timeline,
    render_tree,
    span_tree,
)


def _records():
    """A synthetic distributed trace: client > campaign > job > attempts."""
    trace = "t" * 32
    return [
        {
            "phase": "end",
            "trace": trace,
            "span": "client00",
            "name": "client",
            "start": 0.0,
            "duration": 10.0,
        },
        {
            "phase": "end",
            "trace": trace,
            "span": "campaign",
            "name": "campaign",
            "parent": "client00",
            "start": 0.5,
            "duration": 9.0,
            "attrs": {"status": "complete"},
        },
        {
            "phase": "end",
            "trace": trace,
            "span": "job00001",
            "name": "job",
            "parent": "campaign",
            "start": 1.0,
            "duration": 8.0,
            "attrs": {"job": "probe_2", "status": "ok"},
        },
        {
            "phase": "start",
            "trace": trace,
            "span": "attempt1",
            "name": "attempt",
            "parent": "job00001",
            "start": 1.0,
            "duration": 0.0,
            "unfinished": True,
            "attrs": {"worker": "w1", "attempt": 1},
        },
        {
            "phase": "end",
            "trace": trace,
            "span": "attempt2",
            "name": "attempt",
            "parent": "job00001",
            "start": 4.0,
            "duration": 5.0,
            "attrs": {"worker": "w2", "attempt": 2},
        },
        {
            "phase": "event",
            "trace": trace,
            "span": "evt00001",
            "name": "reclaim",
            "parent": "job00001",
            "start": 4.0,
            "attrs": {"owner": "w2"},
        },
    ]


class TestSpanTree:
    def test_depth_first_walk(self):
        walk = span_tree(_records())
        names = [(r["name"], depth) for r, depth in walk]
        assert names[0] == ("client", 0)
        assert names[1] == ("campaign", 1)
        assert names[2] == ("job", 2)
        assert ("attempt", 3) in names
        assert ("reclaim", 3) in names

    def test_orphan_parent_becomes_root(self):
        records = [
            {"span": "a", "name": "orphan", "parent": "missing", "start": 0.0}
        ]
        walk = span_tree(records)
        assert walk == [(records[0], 0)]


class TestTree:
    def test_indentation_and_durations(self):
        text = render_tree(_records())
        lines = text.splitlines()
        assert lines[0].startswith("client")
        assert lines[1].startswith("  campaign status=complete")
        assert "job job=probe_2 status=ok" in lines[2]
        assert "UNFINISHED" in text
        assert "* reclaim owner=w2" in text
        assert "5000.0 ms" in text  # finished attempt

    def test_error_marker(self):
        records = [
            {
                "span": "a",
                "name": "boom",
                "start": 0.0,
                "duration": 1.0,
                "error": "ValueError",
            }
        ]
        assert "!ValueError" in render_tree(records)


class TestRollup:
    def test_totals_and_self_time(self):
        text = render_rollup(_records())
        lines = text.splitlines()
        assert lines[0].split() == ["scope", "count", "total", "self"]
        rows = {line.split()[0]: line for line in lines[1:]}
        # client: total 10s, self 10 - 9 = 1s.
        assert "10.000s" in rows["client"]
        assert "1.000s" in rows["client"]
        # The two attempts aggregate under one name.
        assert rows["attempt"].split()[1] == "2"
        # Events never contribute rows.
        assert "reclaim" not in rows


class TestCriticalPath:
    def test_blame_chain(self):
        names = [r["name"] for r in critical_path(_records())]
        assert names == ["client", "campaign", "job", "attempt"]

    def test_render_shares(self):
        text = render_critical_path(_records())
        assert "client  10.000s (100%)" in text
        assert "(50%)" in text  # the 5s attempt under the 10s root

    def test_empty(self):
        assert render_critical_path([]) == "(empty trace)"


class TestTimeline:
    def test_valid_svg_with_bars_and_events(self):
        svg = render_timeline(_records(), title="demo & trace")
        root = ElementTree.fromstring(svg)  # well-formed XML
        assert root.tag.endswith("svg")
        assert "demo &amp; trace" in svg
        assert "5 spans" in svg
        assert 'stroke-dasharray="3,2"' in svg  # unfinished attempt hatched
        assert "reclaim owner=w2" in svg  # event diamond tooltip
        assert svg.count("<rect") >= 6  # surface + one bar per span

    def test_empty_trace_placeholder(self):
        svg = render_timeline([])
        assert "(empty trace)" in svg
        ElementTree.fromstring(svg)

    def test_events_only_trace_is_empty_placeholder(self):
        records = [
            {"phase": "event", "span": "e", "name": "ping", "start": 1.0}
        ]
        assert "(empty trace)" in render_timeline(records)

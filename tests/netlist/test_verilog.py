"""Unit tests for structural Verilog emission."""

import re

import pytest

from repro.netlist import (
    CONST1_NET,
    Netlist,
    sanitize_identifier,
    standard_cell_library,
    write_verilog,
)


class TestSanitize:
    @pytest.mark.parametrize(
        "name, expected_pattern",
        [
            ("abc", r"^abc$"),
            ("i[0]", r"^i_0_$"),
            ("sel[3]", r"^sel_3_$"),
            ("3net", r"^n_3net$"),
            ("a.b", r"^a_b$"),
        ],
    )
    def test_identifiers(self, name, expected_pattern):
        assert re.match(expected_pattern, sanitize_identifier(name))


class TestWriteVerilog:
    def test_module_structure(self, present_netlist):
        text = write_verilog(present_netlist, module_name="present_box")
        assert text.startswith("module present_box")
        assert text.rstrip().endswith("endmodule")
        assert text.count("input  wire") == 4
        assert text.count("output wire") == 4

    def test_one_instance_line_per_gate(self, present_netlist):
        text = write_verilog(present_netlist)
        instance_lines = [line for line in text.splitlines() if re.match(r"\s+\w+ \w+ \(", line)]
        assert len(instance_lines) == present_netlist.num_instances()

    def test_constant_wires_emitted_when_used(self, library):
        netlist = Netlist("c", library)
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_instance("AND2", ["a", CONST1_NET], output="y")
        text = write_verilog(netlist)
        assert "1'b1" in text

    def test_instance_comments(self, library):
        netlist = Netlist("c", library)
        netlist.add_input("a")
        netlist.add_output("y")
        instance = netlist.add_instance("INV", ["a"], output="y")
        text = write_verilog(netlist, instance_comments={instance.name: "configured as ~A"})
        assert "// configured as ~A" in text

    def test_unique_names_for_colliding_identifiers(self, library):
        netlist = Netlist("c", library)
        netlist.add_input("n[0]")
        netlist.add_input("n_0_")
        netlist.add_output("y")
        netlist.add_instance("AND2", ["n[0]", "n_0_"], output="y")
        text = write_verilog(netlist)
        # Both inputs must appear as distinct identifiers.
        header = text.split(");")[0]
        identifiers = re.findall(r"input  wire (\w+)", header)
        assert len(identifiers) == 2
        assert len(set(identifiers)) == 2

"""Tests for netlist windowing: extraction, subnetlists, stitching."""

import pytest

from repro.netlist.generate import random_netlist as build_random_netlist
from repro.logic.truthtable import TruthTable
from repro.netlist.netlist import CONST0_NET, CONST1_NET, Netlist
from repro.netlist.simulate import extract_function
from repro.netlist.window import (
    WindowError,
    extract_windows,
    stitch_windows,
    window_function,
    window_subnetlist,
)
from repro.sat.equivalence import check_netlist_equivalence
from repro.sim.prefilter import fuzz_netlist_vs_netlist


class TestExtractWindows:
    def test_partition_is_total_and_disjoint(self, library):
        for seed in range(4):
            netlist = build_random_netlist(seed, library)
            windows = extract_windows(netlist, max_inputs=6)
            names = [
                name for window in windows for name in window.instance_names
            ]
            assert len(names) == netlist.num_instances()
            assert len(names) == len(set(names))

    def test_boundary_bound_respected(self, library):
        netlist = build_random_netlist(3, library, num_cells=40)
        for max_inputs in (4, 6, 8):
            for window in extract_windows(netlist, max_inputs=max_inputs):
                assert 1 <= window.num_inputs <= max_inputs
                assert window.num_outputs >= 1

    def test_max_instances_respected(self, library):
        netlist = build_random_netlist(5, library, num_cells=40)
        for window in extract_windows(netlist, max_inputs=10, max_instances=5):
            assert window.num_instances <= 5

    def test_deterministic(self, library):
        netlist = build_random_netlist(9, library)
        first = extract_windows(netlist, max_inputs=6)
        second = extract_windows(netlist, max_inputs=6)
        assert first == second

    def test_levelized_window_graph_is_acyclic(self, library):
        """Window k's boundary inputs come only from PIs and windows < k."""
        netlist = build_random_netlist(11, library, num_cells=40)
        windows = extract_windows(netlist, max_inputs=6)
        produced = set(netlist.primary_inputs) | {CONST0_NET, CONST1_NET}
        for window in windows:
            for net in window.input_nets:
                assert net in produced
            produced.update(
                netlist.instance(name).output for name in window.instance_names
            )

    def test_infeasible_bound_raises(self, library):
        netlist = Netlist("tiny", library)
        for index in range(4):
            netlist.add_input(f"i{index}")
        netlist.add_instance("NAND4", ["i0", "i1", "i2", "i3"], output="y")
        netlist.add_output("y")
        with pytest.raises(WindowError):
            extract_windows(netlist, max_inputs=3)
        assert len(extract_windows(netlist, max_inputs=4)) == 1


class TestWindowSubnetlist:
    def test_window_function_matches_parent_simulation(self, library):
        netlist = build_random_netlist(21, library)
        windows = extract_windows(netlist, max_inputs=6)
        from repro.sim.engine import NetlistSimulator
        from repro.sim.patterns import PatternBatch

        # Parent-side reference: simulate the whole netlist exhaustively and
        # compare each window's boundary behaviour against the subnetlist.
        for window in windows[:4]:
            function = window_function(netlist, window)
            assert function.num_inputs == window.num_inputs
            assert function.num_outputs == window.num_outputs
            sub = window_subnetlist(netlist, window)
            assert sub.primary_inputs == list(window.input_nets)
            assert sub.primary_outputs == list(window.output_nets)
            # Spot-check: a handful of random boundary words agree with a
            # row-wise evaluation of the copied instances.
            sim = NetlistSimulator(sub)
            batch = PatternBatch.random(window.num_inputs, 32, seed=7)
            lanes = sim.output_lanes(batch)
            for position in range(4):
                word = batch.word_at(position)
                value = function.evaluate_word(word)
                got = 0
                for index in range(window.num_outputs):
                    if (lanes[index] >> position) & 1:
                        got |= 1 << index
                assert got == value


class TestStitchWindows:
    def test_identity_stitch_round_trip(self, library):
        for seed in range(4):
            netlist = build_random_netlist(seed, library)
            windows = extract_windows(netlist, max_inputs=6)
            replacements = [
                window_subnetlist(netlist, window) for window in windows
            ]
            stitched = stitch_windows(netlist, windows, replacements)
            assert (
                extract_function(stitched.netlist).lookup_table()
                == extract_function(netlist).lookup_table()
            )

    def test_instance_maps_cover_replacements(self, library):
        netlist = build_random_netlist(2, library)
        windows = extract_windows(netlist, max_inputs=6)
        replacements = [window_subnetlist(netlist, window) for window in windows]
        stitched = stitch_windows(netlist, windows, replacements)
        for replacement, name_map in zip(replacements, stitched.instance_maps):
            assert set(name_map) == {
                instance.name for instance in replacement.instances
            }
            for stitched_name in name_map.values():
                stitched.netlist.instance(stitched_name)  # resolves

    def test_pin_mismatch_raises(self, library):
        netlist = build_random_netlist(2, library)
        windows = extract_windows(netlist, max_inputs=6)
        replacements = [window_subnetlist(netlist, window) for window in windows]
        bad = Netlist("bad", library)
        bad.add_input("a")
        bad.add_instance("INV", ["a"], output="y")
        bad.add_output("y")
        with pytest.raises(WindowError):
            stitch_windows(netlist, windows, [bad] + replacements[1:])

    def test_replacement_count_mismatch_raises(self, library):
        netlist = build_random_netlist(2, library)
        windows = extract_windows(netlist, max_inputs=6)
        with pytest.raises(WindowError):
            stitch_windows(netlist, windows, [])

    def test_stitch_with_passthrough_output(self, library):
        """A replacement that aliases an input onto an output gets a buffer."""
        netlist = Netlist("p", library)
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_instance("BUF", ["a"], output="x")
        netlist.add_instance("AND2", ["x", "b"], output="y")
        netlist.add_output("y")
        windows = extract_windows(netlist, max_inputs=4)
        replacements = []
        for window in windows:
            if window.output_nets == ("x",):
                alias = Netlist("alias", library)
                alias.add_input("p0")
                alias.add_output("p0")
                replacements.append(alias)
            else:
                replacements.append(window_subnetlist(netlist, window))
        stitched = stitch_windows(netlist, windows, replacements)
        assert (
            extract_function(stitched.netlist).lookup_table()
            == extract_function(netlist).lookup_table()
        )

    def test_randomized_camo_style_replacements_stay_equivalent(self, library):
        """Resynthesised replacements (fresh names, denser I/O) stitch clean."""
        from repro.synth.script import synthesize

        netlist = build_random_netlist(31, library, num_cells=20)
        windows = extract_windows(netlist, max_inputs=6)
        replacements = []
        for window in windows:
            function = window_function(netlist, window)
            replacements.append(synthesize(function, effort="fast").netlist)
        stitched = stitch_windows(netlist, windows, replacements)
        outcome = fuzz_netlist_vs_netlist(netlist, stitched.netlist)
        assert not outcome.refuted and outcome.complete
        # SAT spot-check of the same equivalence.
        result = check_netlist_equivalence(
            netlist, stitched.netlist, prefilter=False
        )
        assert result.equivalent

    def test_map_cell_functions_lifts_names(self, library):
        netlist = build_random_netlist(2, library)
        windows = extract_windows(netlist, max_inputs=6)
        replacements = [window_subnetlist(netlist, window) for window in windows]
        stitched = stitch_windows(netlist, windows, replacements)
        table = TruthTable(1, 0b01)
        per_window = []
        for replacement in replacements:
            name = replacement.instances[0].name
            per_window.append({name: table})
        merged = stitched.map_cell_functions(per_window)
        assert len(merged) == len(windows)
        for name in merged:
            stitched.netlist.instance(name)

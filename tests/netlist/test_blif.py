"""Unit tests for BLIF reading and writing."""

import pytest

from repro.netlist import (
    BlifError,
    Netlist,
    extract_function,
    read_blif,
    standard_cell_library,
    write_blif,
)


class TestWriteRead:
    def test_roundtrip_preserves_function(self, present_netlist, present, library):
        text = write_blif(present_netlist)
        parsed = read_blif(text, library)
        assert parsed.primary_inputs == present_netlist.primary_inputs
        assert parsed.primary_outputs == present_netlist.primary_outputs
        assert extract_function(parsed).lookup_table() == present.lookup_table()

    def test_write_contains_gate_lines(self, present_netlist):
        text = write_blif(present_netlist)
        assert text.startswith(".model")
        assert ".gate" in text
        assert text.rstrip().endswith(".end")

    def test_model_name_override(self, present_netlist):
        text = write_blif(present_netlist, model_name="widget")
        assert ".model widget" in text


class TestReadNames:
    def test_names_block_mapped_to_cell(self, library):
        text = """
.model small
.inputs a b
.outputs y
.names a b y
11 1
.end
"""
        netlist = read_blif(text, library)
        assert netlist.num_instances() == 1
        assert netlist.instances[0].cell == "AND2"

    def test_names_block_with_permuted_or(self, library):
        text = """
.model small
.inputs a b
.outputs y
.names a b y
1- 1
-1 1
.end
"""
        netlist = read_blif(text, library)
        assert netlist.instances[0].cell == "OR2"
        function = extract_function(netlist)
        assert function.evaluate_word(0b00) == 0
        assert function.evaluate_word(0b01) == 1

    def test_constant_one_block(self, library):
        text = """
.model c
.inputs a
.outputs y
.names y
1
.end
"""
        netlist = read_blif(text, library)
        function = extract_function(netlist)
        assert function.evaluate_word(0) == 1
        assert function.evaluate_word(1) == 1

    def test_unmappable_names_block_rejected(self, library):
        text = """
.model bad
.inputs a b c
.outputs y
.names a b c y
101 1
010 1
.end
"""
        with pytest.raises(BlifError):
            read_blif(text, library)

    def test_comments_and_continuations(self, library):
        text = """
# a comment
.model c
.inputs a \\
b
.outputs y
.gate AND2 A=a B=b Y=y
.end
"""
        netlist = read_blif(text, library)
        assert netlist.primary_inputs == ["a", "b"]
        assert netlist.instances[0].cell == "AND2"


class TestErrors:
    def test_unknown_gate(self, library):
        with pytest.raises(BlifError):
            read_blif(".model m\n.inputs a\n.outputs y\n.gate FOO A=a Y=y\n.end\n", library)

    def test_missing_pin_binding(self, library):
        with pytest.raises(BlifError):
            read_blif(".model m\n.inputs a\n.outputs y\n.gate INV A=a\n.end\n", library)

    def test_empty_text(self, library):
        with pytest.raises(BlifError):
            read_blif("", library)

    def test_unsupported_construct(self, library):
        with pytest.raises(BlifError):
            read_blif(".model m\n.latch a b\n.end\n", library)

    def test_stray_cube_line(self, library):
        with pytest.raises(BlifError):
            read_blif(".model m\n.inputs a\n11 1\n.end\n", library)

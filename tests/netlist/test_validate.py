"""Unit tests for netlist structural validation."""

import pytest

from repro.netlist import (
    Netlist,
    NetlistError,
    assert_valid,
    standard_cell_library,
    validate_netlist,
)


class TestValidate:
    def test_clean_netlist(self, present_netlist):
        assert validate_netlist(present_netlist) == []
        assert_valid(present_netlist)

    def test_undriven_output(self, library):
        netlist = Netlist("t", library)
        netlist.add_input("a")
        netlist.add_output("y")
        problems = validate_netlist(netlist)
        assert any("undriven" in problem for problem in problems)
        with pytest.raises(NetlistError):
            assert_valid(netlist)

    def test_undriven_instance_input(self, library):
        netlist = Netlist("t", library)
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_instance("AND2", ["a", "ghost"], output="y")
        problems = validate_netlist(netlist)
        assert any("ghost" in problem for problem in problems)

    def test_cycle_reported(self, library):
        netlist = Netlist("t", library)
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_instance("NAND2", ["a", "n2"], output="n1")
        netlist.add_instance("INV", ["n1"], output="n2")
        netlist.add_instance("BUF", ["n2"], output="y")
        problems = validate_netlist(netlist)
        assert any("cycle" in problem or "blocked" in problem for problem in problems)

    def test_duplicate_primary_ports_reported(self, library):
        netlist = Netlist("t", library)
        netlist.add_input("a")
        netlist.primary_inputs.append("a")  # force the inconsistent state
        netlist.add_output("y")
        netlist.primary_outputs.append("y")
        netlist.add_instance("INV", ["a"], output="y")
        problems = validate_netlist(netlist)
        assert any("duplicate primary inputs" in problem for problem in problems)
        assert any("duplicate primary outputs" in problem for problem in problems)

    def test_unknown_cell_reported(self, library):
        netlist = Netlist("t", library)
        netlist.add_input("a")
        netlist.add_output("y")
        instance = netlist.add_instance("INV", ["a"], output="y")
        instance.cell = "MYSTERY"  # corrupt it behind the API's back
        problems = validate_netlist(netlist)
        assert any("unknown cell" in problem for problem in problems)

    def test_wrong_connection_count_reported(self, library):
        netlist = Netlist("t", library)
        netlist.add_input("a")
        netlist.add_output("y")
        instance = netlist.add_instance("INV", ["a"], output="y")
        instance.inputs.append("a")
        problems = validate_netlist(netlist)
        assert any("pins" in problem for problem in problems)

"""Unit tests for netlist simulation (single-pattern and bit-parallel)."""

import pytest

from repro.logic import TruthTable
from repro.netlist import (
    CONST0_NET,
    CONST1_NET,
    Netlist,
    NetlistError,
    extract_function,
    simulate_assignment,
    simulate_word,
    simulate_words,
    standard_cell_library,
)


@pytest.fixture
def majority_netlist(library):
    """maj(a, b, c) built from AND/OR gates."""
    netlist = Netlist("maj", library)
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    c = netlist.add_input("c")
    netlist.add_output("y")
    ab = netlist.add_instance("AND2", [a, b]).output
    ac = netlist.add_instance("AND2", [a, c]).output
    bc = netlist.add_instance("AND2", [b, c]).output
    netlist.add_instance("OR3", [ab, ac, bc], output="y")
    return netlist


class TestSimulateWord:
    def test_majority_all_patterns(self, majority_netlist):
        for word in range(8):
            bits = [(word >> k) & 1 for k in range(3)]
            expected = 1 if sum(bits) >= 2 else 0
            assert simulate_word(majority_netlist, word) == expected

    def test_missing_input_value(self, majority_netlist):
        with pytest.raises(NetlistError):
            simulate_assignment(majority_netlist, {"a": 1, "b": 0})

    def test_assignment_returns_all_nets(self, majority_netlist):
        values = simulate_assignment(majority_netlist, {"a": 1, "b": 1, "c": 0})
        assert values["y"] == 1
        assert all(net in values for net in majority_netlist.nets())


class TestExtractFunction:
    def test_matches_word_simulation(self, majority_netlist):
        function = extract_function(majority_netlist)
        for word in range(8):
            assert function.evaluate_word(word) == simulate_word(majority_netlist, word)

    def test_input_output_names(self, majority_netlist):
        function = extract_function(majority_netlist)
        assert function.input_names == ("a", "b", "c")
        assert function.output_names == ("y",)

    def test_undriven_output_rejected(self, library):
        netlist = Netlist("broken", library)
        netlist.add_input("a")
        netlist.add_output("y")
        with pytest.raises(NetlistError):
            extract_function(netlist)


class TestCellFunctionOverrides:
    def test_override_changes_behaviour(self, majority_netlist):
        # Reconfigure the OR3 as constant 1 (a camouflage-style override).
        or3_instance = next(
            inst for inst in majority_netlist.instances if inst.cell == "OR3"
        )
        override = {or3_instance.name: TruthTable.constant(3, True)}
        function = extract_function(majority_netlist, cell_functions=override)
        assert all(function.evaluate_word(word) == 1 for word in range(8))

    def test_override_single_pattern(self, majority_netlist):
        and_instance = majority_netlist.instances[0]
        # Force the first AND2 to behave as its B input (a cofactor).
        override = {and_instance.name: TruthTable.variable(1, 2)}
        with_override = simulate_word(majority_netlist, 0b010, cell_functions=override)
        without = simulate_word(majority_netlist, 0b010)
        assert with_override == 1
        assert without == 0

    def test_override_ignores_unknown_instances(self, majority_netlist):
        override = {"not_an_instance": TruthTable.constant(2, True)}
        function = extract_function(majority_netlist, cell_functions=override)
        assert function.evaluate_word(0b111) == 1

    def test_synthesized_netlist_roundtrip(self, present, present_netlist):
        function = extract_function(present_netlist)
        assert function.lookup_table() == present.lookup_table()


class TestSimulateWords:
    def test_batch_matches_single_words(self, majority_netlist):
        words = [0, 3, 5, 7, 2, 3]
        outputs = simulate_words(majority_netlist, words)
        assert outputs == [simulate_word(majority_netlist, word) for word in words]

    def test_empty_batch(self, majority_netlist):
        assert simulate_words(majority_netlist, []) == []


class TestEdgeCases:
    def test_undriven_output_all_entry_points(self, library):
        netlist = Netlist("broken", library)
        netlist.add_input("a")
        netlist.add_output("y")
        with pytest.raises(NetlistError):
            simulate_assignment(netlist, {"a": 1})
        with pytest.raises(NetlistError):
            simulate_word(netlist, 0)
        with pytest.raises(NetlistError):
            extract_function(netlist)

    def test_override_arity_mismatch_rejected(self, majority_netlist):
        and2 = majority_netlist.instances[0]
        override = {and2.name: TruthTable.constant(3, True)}  # AND2 has 2 pins
        with pytest.raises(NetlistError):
            simulate_assignment(majority_netlist, {"a": 0, "b": 0, "c": 0},
                                cell_functions=override)
        with pytest.raises(NetlistError):
            simulate_word(majority_netlist, 0, cell_functions=override)
        with pytest.raises(NetlistError):
            extract_function(majority_netlist, cell_functions=override)

    def test_constant_nets(self, library):
        # y = a AND const1, z = a OR const0: both reduce to a, every path.
        netlist = Netlist("consts", library)
        a = netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_output("z")
        netlist.add_instance("AND2", [a, CONST1_NET], output="y")
        netlist.add_instance("OR2", [a, CONST0_NET], output="z")
        for value in (0, 1):
            values = simulate_assignment(netlist, {"a": value})
            assert values["y"] == value and values["z"] == value
            assert simulate_word(netlist, value) == (0b11 if value else 0)
        function = extract_function(netlist)
        assert function.lookup_table() == [0b00, 0b11]

    def test_constant_driven_output(self, library):
        # An output can be driven by an inverter of const0 — constant one.
        netlist = Netlist("const_out", library)
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_instance("INV", [CONST0_NET], output="y")
        assert [simulate_word(netlist, w) for w in (0, 1)] == [1, 1]
        assert extract_function(netlist).lookup_table() == [1, 1]

    def test_missing_input_is_reported_by_name(self, majority_netlist):
        with pytest.raises(NetlistError, match="'c'"):
            simulate_assignment(majority_netlist, {"a": 1, "b": 0})

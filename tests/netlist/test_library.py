"""Unit tests for the standard-cell library."""

import pytest

from repro.logic import TruthTable
from repro.netlist import GE_AREAS, CellLibrary, CellType, standard_cell_library


class TestCellType:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CellType("BROKEN", ("A",), TruthTable.constant(2, True), 1.0)

    def test_negative_area_rejected(self):
        with pytest.raises(ValueError):
            CellType("BROKEN", ("A",), TruthTable.constant(1, True), -1.0)

    def test_evaluate(self):
        library = standard_cell_library()
        nand2 = library["NAND2"]
        assert nand2.evaluate([1, 1]) == 0
        assert nand2.evaluate([0, 1]) == 1


class TestStandardLibrary:
    @pytest.fixture(scope="class")
    def library(self):
        return standard_cell_library()

    def test_expected_cells_present(self, library):
        expected = {"INV", "BUF", "XOR2", "XNOR2", "MUX2"}
        for width in (2, 3, 4):
            expected |= {f"{kind}{width}" for kind in ("NAND", "NOR", "AND", "OR")}
        assert expected <= set(library.names())

    def test_areas_normalised_to_nand2(self, library):
        assert library["NAND2"].area == 1.0
        assert library["INV"].area < library["NAND2"].area
        assert library["NAND3"].area > library["NAND2"].area
        for name, area in GE_AREAS.items():
            assert library[name].area == pytest.approx(area)

    @pytest.mark.parametrize(
        "name, inputs, expected",
        [
            ("INV", [0], 1),
            ("INV", [1], 0),
            ("BUF", [1], 1),
            ("NAND3", [1, 1, 1], 0),
            ("NAND3", [1, 0, 1], 1),
            ("NOR2", [0, 0], 1),
            ("NOR2", [1, 0], 0),
            ("AND4", [1, 1, 1, 1], 1),
            ("AND4", [1, 1, 1, 0], 0),
            ("OR3", [0, 0, 0], 0),
            ("OR3", [0, 1, 0], 1),
            ("XOR2", [1, 0], 1),
            ("XOR2", [1, 1], 0),
            ("XNOR2", [1, 1], 1),
            ("MUX2", [1, 0, 0], 1),  # S=0 selects A
            ("MUX2", [1, 0, 1], 0),  # S=1 selects B
        ],
    )
    def test_cell_functions(self, library, name, inputs, expected):
        assert library[name].evaluate(inputs) == expected

    def test_by_num_inputs(self, library):
        three_input = {cell.name for cell in library.by_num_inputs(3)}
        assert {"NAND3", "NOR3", "AND3", "OR3", "MUX2"} == three_input

    def test_lookup_errors(self, library):
        with pytest.raises(KeyError):
            library["NAND9"]
        assert library.get("NAND9") is None
        assert "NAND2" in library
        assert "NAND9" not in library

    def test_duplicate_cell_rejected(self, library):
        duplicate = CellLibrary("dup", [library["INV"]])
        with pytest.raises(ValueError):
            duplicate.add(library["INV"])

    def test_len_and_repr(self, library):
        assert len(library) == len(library.cells())
        assert "standard" in repr(library)

"""Strategy tests for the windowing layer.

The default ``greedy`` strategy must be byte-identical to the pre-strategy
``extract_windows`` (frozen here as a reference reimplementation of its
partition loop); the ``hardness`` (min-cut seeded) strategy must always
produce a valid levelized partition under the same bounds.
"""

from pathlib import Path

import pytest

from repro.netlist import standard_cell_library
from repro.netlist.blif import read_blif
from repro.netlist.window import (
    LevelizedGreedy,
    MinCutSeeded,
    WINDOWING_ENV_VAR,
    WindowError,
    extract_windows,
    resolve_windowing,
)

WIDE30 = Path(__file__).resolve().parents[2] / "examples" / "circuits" / "wide30.blif"

_CONST_NETS = ("$false", "$true")


def _legacy_member_lists(netlist, max_inputs, max_instances):
    """The pre-strategy greedy partition loop, frozen as a reference."""
    order = netlist.topological_order()
    available = set(netlist.primary_inputs) | set(_CONST_NETS)
    remaining = list(order)
    member_lists = []
    while remaining:
        members = []
        member_outputs = set()
        boundary = set()
        leftover = []
        for instance in remaining:
            if len(members) >= max_instances:
                leftover.append(instance)
                continue
            inputs = set(instance.inputs)
            if not inputs <= (available | member_outputs):
                leftover.append(instance)
                continue
            external = {
                net
                for net in inputs
                if net not in member_outputs and net not in _CONST_NETS
            }
            if len(boundary | external) > max_inputs:
                leftover.append(instance)
                continue
            members.append(instance.name)
            member_outputs.add(instance.output)
            boundary |= external
        assert members, "legacy reference loop failed to make progress"
        member_lists.append(members)
        available |= member_outputs
        remaining = leftover
    return member_lists


def _wide30(library):
    with open(WIDE30, "r", encoding="utf-8") as handle:
        return read_blif(handle.read(), library)


class TestGreedyByteIdentity:
    @pytest.mark.parametrize("seed", [3, 7, 19])
    def test_default_matches_legacy_on_random_netlists(
        self, seed, make_random_netlist
    ):
        netlist = make_random_netlist(seed, num_inputs=10, num_cells=60)
        legacy = _legacy_member_lists(netlist, 6, 16)
        windows = extract_windows(netlist, max_inputs=6, max_instances=16)
        assert [list(w.instance_names) for w in windows] == legacy

    def test_default_matches_legacy_on_wide30(self, library):
        netlist = _wide30(library)
        legacy = _legacy_member_lists(netlist, 6, 48)
        windows = extract_windows(netlist, max_inputs=6)
        assert [list(w.instance_names) for w in windows] == legacy

    def test_explicit_greedy_identical_to_default(self, library):
        netlist = _wide30(library)
        default = extract_windows(netlist, max_inputs=6)
        explicit = extract_windows(netlist, max_inputs=6, strategy="greedy")
        instance = extract_windows(
            netlist, max_inputs=6, strategy=LevelizedGreedy()
        )
        assert default == explicit == instance


class TestMinCutSeeded:
    def test_partition_valid_on_wide30(self, library):
        netlist = _wide30(library)
        windows = extract_windows(netlist, max_inputs=6, strategy="hardness")
        # _validate_partition already ran inside extract_windows; spot-check
        # the bounds and totality here.
        names = sorted(
            name for window in windows for name in window.instance_names
        )
        assert names == sorted(i.name for i in netlist.topological_order())
        assert all(window.num_inputs <= 6 for window in windows)

    @pytest.mark.parametrize("seed", [3, 7, 19])
    def test_partition_valid_on_random_netlists(self, seed, make_random_netlist):
        netlist = make_random_netlist(seed, num_inputs=10, num_cells=60)
        windows = extract_windows(
            netlist, max_inputs=6, max_instances=16, strategy="hardness"
        )
        names = sorted(
            name for window in windows for name in window.instance_names
        )
        assert names == sorted(i.name for i in netlist.topological_order())
        assert all(window.num_instances <= 16 for window in windows)

    def test_deterministic(self, library):
        netlist = _wide30(library)
        first = extract_windows(netlist, max_inputs=6, strategy="hardness")
        second = extract_windows(netlist, max_inputs=6, strategy="hardness")
        assert first == second


class TestResolution:
    def test_names_resolve(self):
        assert isinstance(resolve_windowing(None), LevelizedGreedy)
        assert isinstance(resolve_windowing("greedy"), LevelizedGreedy)
        assert isinstance(resolve_windowing("hardness"), MinCutSeeded)

    def test_instance_passthrough(self):
        strategy = MinCutSeeded()
        assert resolve_windowing(strategy) is strategy

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(WINDOWING_ENV_VAR, "hardness")
        assert isinstance(resolve_windowing(None), MinCutSeeded)

    def test_unknown_name_rejected(self):
        with pytest.raises(WindowError):
            resolve_windowing("bogus")

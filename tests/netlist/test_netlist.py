"""Unit tests for the netlist container."""

import pytest

from repro.netlist import (
    CONST0_NET,
    CONST1_NET,
    Netlist,
    NetlistError,
    standard_cell_library,
)


@pytest.fixture
def library():
    return standard_cell_library()


@pytest.fixture
def xor_netlist(library):
    """A hand-built XOR from NANDs: y = a xor b."""
    netlist = Netlist("xor", library)
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_output("y")
    n1 = netlist.add_instance("NAND2", [a, b]).output
    n2 = netlist.add_instance("NAND2", [a, n1]).output
    n3 = netlist.add_instance("NAND2", [b, n1]).output
    netlist.add_instance("NAND2", [n2, n3], output="y")
    return netlist


class TestConstruction:
    def test_duplicate_input_rejected(self, library):
        netlist = Netlist("t", library)
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_input("a")

    def test_duplicate_output_rejected(self, library):
        netlist = Netlist("t", library)
        netlist.add_output("y")
        with pytest.raises(NetlistError):
            netlist.add_output("y")

    def test_unknown_cell_rejected(self, library):
        netlist = Netlist("t", library)
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_instance("FOO", ["a"])

    def test_wrong_pin_count_rejected(self, library):
        netlist = Netlist("t", library)
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_instance("NAND2", ["a"])

    def test_double_driver_rejected(self, library):
        netlist = Netlist("t", library)
        netlist.add_input("a")
        netlist.add_instance("INV", ["a"], output="n")
        with pytest.raises(NetlistError):
            netlist.add_instance("BUF", ["a"], output="n")

    def test_driving_primary_input_rejected(self, library):
        netlist = Netlist("t", library)
        netlist.add_input("a")
        netlist.add_input("b")
        with pytest.raises(NetlistError):
            netlist.add_instance("INV", ["a"], output="b")

    def test_duplicate_instance_name_rejected(self, library):
        netlist = Netlist("t", library)
        netlist.add_input("a")
        netlist.add_instance("INV", ["a"], name="u1")
        with pytest.raises(NetlistError):
            netlist.add_instance("BUF", ["a"], name="u1")

    def test_new_net_is_fresh(self, xor_netlist):
        fresh = xor_netlist.new_net()
        assert fresh not in xor_netlist.nets()


class TestQueries:
    def test_counts_and_area(self, xor_netlist):
        assert xor_netlist.num_instances() == 4
        assert xor_netlist.area() == pytest.approx(4.0)
        assert xor_netlist.cell_histogram() == {"NAND2": 4}

    def test_driver_of(self, xor_netlist):
        assert xor_netlist.driver_of("a") is None
        assert xor_netlist.driver_of("y").cell == "NAND2"

    def test_fanout_counts(self, xor_netlist):
        fanout = xor_netlist.fanout_counts()
        assert fanout["a"] == 2
        assert fanout["b"] == 2
        assert fanout["y"] == 1  # the primary output counts as a sink

    def test_topological_order(self, xor_netlist):
        order = xor_netlist.topological_order()
        position = {instance.name: index for index, instance in enumerate(order)}
        for instance in order:
            for net in instance.inputs:
                driver = xor_netlist.driver_of(net)
                if driver is not None:
                    assert position[driver.name] < position[instance.name]

    def test_cycle_detected(self, library):
        netlist = Netlist("loop", library)
        netlist.add_input("a")
        netlist.add_instance("NAND2", ["a", "n2"], output="n1")
        netlist.add_instance("INV", ["n1"], output="n2")
        with pytest.raises(NetlistError):
            netlist.topological_order()

    def test_transitive_fanin(self, xor_netlist):
        cone = xor_netlist.transitive_fanin("y")
        assert len(cone) == 4
        names = [instance.name for instance in cone]
        assert len(names) == len(set(names))

    def test_instance_lookup(self, xor_netlist):
        first = xor_netlist.instances[0]
        assert xor_netlist.instance(first.name) is first
        with pytest.raises(NetlistError):
            xor_netlist.instance("nope")

    def test_remove_instance(self, xor_netlist):
        name = xor_netlist.instances[-1].name
        xor_netlist.remove_instance(name)
        assert xor_netlist.num_instances() == 3
        with pytest.raises(NetlistError):
            xor_netlist.remove_instance(name)


class TestEditing:
    def test_rename_net(self, xor_netlist):
        xor_netlist.rename_net("a", "alpha")
        assert "alpha" in xor_netlist.primary_inputs
        assert all("a" != net for inst in xor_netlist.instances for net in inst.inputs)

    def test_rename_to_existing_net_rejected(self, xor_netlist):
        with pytest.raises(NetlistError):
            xor_netlist.rename_net("a", "b")

    def test_rename_noop(self, xor_netlist):
        xor_netlist.rename_net("a", "a")
        assert "a" in xor_netlist.primary_inputs

    def test_copy_is_deep(self, xor_netlist):
        clone = xor_netlist.copy("clone")
        clone.remove_instance(clone.instances[0].name)
        assert xor_netlist.num_instances() == 4
        assert clone.num_instances() == 3
        assert clone.name == "clone"

    def test_constants_are_implicitly_available(self, library):
        netlist = Netlist("const", library)
        netlist.add_output("y")
        netlist.add_instance("BUF", [CONST1_NET], output="y")
        order = netlist.topological_order()
        assert len(order) == 1
        assert CONST1_NET in netlist.nets()
        assert CONST0_NET not in netlist.nets()

    def test_repr(self, xor_netlist):
        text = repr(xor_netlist)
        assert "xor" in text and "instances=4" in text

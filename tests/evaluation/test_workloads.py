"""Unit tests for the experiment profiles and workloads."""

import pytest

from repro.evaluation import (
    DES_FAMILY,
    PRESENT_FAMILY,
    PROFILES,
    get_profile,
    workload_functions,
)
from repro.evaluation.workloads import PROFILE_ENV_VAR


class TestProfiles:
    def test_known_profiles(self):
        assert set(PROFILES) == {"quick", "medium", "paper"}
        quick = PROFILES["quick"]
        paper = PROFILES["paper"]
        assert quick.ga_population < paper.ga_population
        assert quick.ga_generations < paper.ga_generations
        # The paper profile covers the full Table I sweep.
        assert paper.present_counts == (2, 4, 8, 16)
        assert paper.des_counts == (2, 4, 8)
        assert paper.random_samples == 9726

    def test_default_profile_is_quick(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV_VAR, raising=False)
        assert get_profile().name == "quick"

    def test_environment_selection(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "medium")
        assert get_profile().name == "medium"

    def test_explicit_name_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "medium")
        assert get_profile("paper").name == "paper"

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            get_profile("heroic")

    def test_ga_parameters(self):
        params = PROFILES["quick"].ga_parameters(seed=7)
        assert params.population_size == PROFILES["quick"].ga_population
        assert params.generations == PROFILES["quick"].ga_generations
        assert params.seed == 7


class TestWorkloads:
    def test_present_family(self):
        functions = workload_functions(PRESENT_FAMILY, 4)
        assert len(functions) == 4
        assert all(f.num_inputs == 4 and f.num_outputs == 4 for f in functions)

    def test_des_family(self):
        functions = workload_functions(DES_FAMILY, 2)
        assert len(functions) == 2
        assert all(f.num_inputs == 6 and f.num_outputs == 4 for f in functions)

    def test_aes_family_resolves_through_registry(self):
        functions = workload_functions("AES", 2)
        assert len(functions) == 2
        assert all(f.num_inputs == 8 and f.num_outputs == 8 for f in functions)

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            workload_functions("SERPENT", 2)

"""Integration tests for the Table I and Figure 4 experiment harnesses.

These use a deliberately tiny profile so the whole module runs in tens of
seconds while still exercising the real GA + random search + technology
mapping pipeline and checking the *shape* of the paper's results.
"""

import pytest

from repro.evaluation import (
    PRESENT_FAMILY,
    run_figure4a,
    run_figure4b,
    run_table1,
    run_table1_entry,
    table1_text,
)
from repro.evaluation.workloads import ExperimentProfile


@pytest.fixture(scope="module")
def tiny_profile():
    return ExperimentProfile(
        name="tiny",
        present_counts=(2,),
        des_counts=(),
        ga_population=4,
        ga_generations=2,
        random_samples=0,
        figure4_sbox_count=2,
    )


@pytest.fixture(scope="module")
def tiny_entry(tiny_profile):
    return run_table1_entry(PRESENT_FAMILY, 2, profile=tiny_profile, seed=1)


class TestTable1:
    def test_entry_shape(self, tiny_entry):
        row = tiny_entry.row
        assert row.circuit == PRESENT_FAMILY
        assert row.num_functions == 2
        # Shape of Table I: random best <= random avg, GA <= random best (the
        # GA seeds the identity and caches), and TM reduces the GA circuit.
        assert row.random_best <= row.random_avg
        assert row.ga_area <= row.random_best * 1.05
        assert row.ga_tm_area <= row.ga_area + 1e-9
        assert tiny_entry.verification_ok

    def test_random_budget_matches_ga(self, tiny_entry):
        assert tiny_entry.random_result.evaluations == max(1, tiny_entry.ga_evaluations)

    def test_run_table1_sweep_and_text(self, tiny_profile):
        entries = run_table1(profile=tiny_profile, seed=1)
        assert len(entries) == 1
        text = table1_text(entries, profile_name="tiny")
        assert "Table I" in text
        assert "PRESENT" in text

    def test_explicit_families_argument(self, tiny_profile):
        entries = run_table1(
            profile=tiny_profile, families=[(PRESENT_FAMILY, 2)], seed=2, verify=False
        )
        assert len(entries) == 1

    def test_entry_identical_across_jobs(self, tiny_profile, tiny_entry, monkeypatch):
        # Force real worker processes even on a single-CPU host so the
        # multiprocess path is what gets compared against the serial entry.
        import repro.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 4)
        parallel = run_table1_entry(
            PRESENT_FAMILY, 2, profile=tiny_profile, seed=1, jobs=2
        )
        assert parallel.row.as_dict() == tiny_entry.row.as_dict()
        assert parallel.ga_evaluations == tiny_entry.ga_evaluations
        assert parallel.random_result.areas == tiny_entry.random_result.areas
        serial_opt = tiny_entry.obfuscation.pin_optimization
        parallel_opt = parallel.obfuscation.pin_optimization
        assert (
            parallel_opt.best_assignment.to_genotype()
            == serial_opt.best_assignment.to_genotype()
        )
        assert parallel_opt.ga_result.history == serial_opt.ga_result.history

    def test_sweep_identical_across_jobs(self, tiny_profile, monkeypatch):
        import repro.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 4)
        families = [(PRESENT_FAMILY, 2), (PRESENT_FAMILY, 3)]
        serial = run_table1(
            profile=tiny_profile, families=families, seed=3, verify=False, jobs=1
        )
        parallel = run_table1(
            profile=tiny_profile, families=families, seed=3, verify=False, jobs=2
        )
        assert [entry.row.as_dict() for entry in serial] == [
            entry.row.as_dict() for entry in parallel
        ]


class TestFigure4:
    def test_figure4a_histogram(self, tiny_profile):
        data = run_figure4a(profile=tiny_profile, num_samples=6, seed=3)
        assert len(data.areas) == 6
        assert sum(count for _, count in data.histogram) == 6
        assert data.best <= data.average <= data.worst
        assert "Fig. 4a" in data.to_text()

    def test_figure4b_series(self, tiny_profile):
        data = run_figure4b(profile=tiny_profile, seed=3)
        assert data.generations[0] == 0
        assert len(data.generations) == tiny_profile.ga_generations + 1
        assert len(data.best_so_far) == len(data.generations)
        # best-so-far is monotone non-increasing.
        assert all(b <= a for a, b in zip(data.best_so_far, data.best_so_far[1:]))
        assert data.random_best <= data.random_average
        assert data.ga_evaluations > 0
        assert "Fig. 4b" in data.to_text()

    def test_figure4b_ga_competitive_with_random(self, tiny_profile):
        data = run_figure4b(profile=tiny_profile, seed=4)
        # With an equal budget the GA must not lose to random search by much;
        # on these tiny runs it generally wins (the paper's Fig. 4b claim).
        assert data.best_so_far[-1] <= data.random_best * 1.10
        crossover = data.crossover_generation()
        if data.ga_beats_best_random:
            assert crossover is not None

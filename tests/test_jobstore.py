"""Unit tests for the lease-based job store and retry policy."""

import json
import os
import socket

import pytest

from repro.faults import FAULTS_DIR_ENV_VAR, FAULTS_ENV_VAR, reset_fault_state
from repro.jobstore import (
    DEFAULT_LEASE_TTL,
    LEASE_TTL_ENV_VAR,
    RETRY_ATTEMPTS_ENV_VAR,
    RETRY_BASE_DELAY_ENV_VAR,
    JobStore,
    LeaseLost,
    RetryPolicy,
    classify_failure,
)
from repro.parallel import WorkerCrashed
from repro.sat.solver import SolveBudgetExceeded


@pytest.fixture
def clock():
    """A manually advanced clock starting at t=1000."""
    state = {"now": 1000.0}

    def read():
        return state["now"]

    read.advance = lambda seconds: state.__setitem__(
        "now", state["now"] + seconds
    )
    return read


@pytest.fixture
def store_pair(tmp_path, clock):
    a = JobStore(str(tmp_path), owner="A", lease_ttl=10.0, clock=clock)
    b = JobStore(str(tmp_path), owner="B", lease_ttl=10.0, clock=clock)
    return a, b


class TestClaiming:
    def test_claim_is_exclusive(self, store_pair):
        a, b = store_pair
        lease = a.claim("job")
        assert lease is not None and lease.owner == "A"
        assert b.claim("job") is None
        assert b.claim_conflicts == 1

    def test_release_makes_job_claimable_again(self, store_pair):
        a, b = store_pair
        a.release(a.claim("job"), status="ok")
        assert b.claim("job") is not None

    def test_expired_lease_is_reclaimed(self, store_pair, clock):
        a, b = store_pair
        assert a.claim("job") is not None
        clock.advance(11.0)  # past the 10s TTL
        lease = b.claim("job")
        assert lease is not None and lease.owner == "B"
        assert b.reclaims == 1

    def test_dead_owner_on_this_host_is_reclaimed_fast(self, tmp_path, clock):
        store = JobStore(str(tmp_path), owner="C", lease_ttl=1000.0, clock=clock)
        # Forge a lease held by a provably dead pid on this host.
        with open(store.lease_path("job"), "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "job_id": "job",
                    "owner": "ghost",
                    "pid": 2 ** 22 + 1,  # beyond any default pid_max
                    "host": socket.gethostname(),
                    "expires": clock() + 500.0,
                },
                handle,
            )
        assert store.claim("job") is not None
        assert store.reclaims == 1

    def test_torn_lease_file_is_reclaimed(self, store_pair):
        a, b = store_pair
        assert a.claim("job") is not None
        with open(a.lease_path("job"), "w", encoding="utf-8") as handle:
            handle.write('{"owner": "A", "expi')  # torn write
        assert b.claim("job") is not None

    def test_live_same_host_owner_is_not_stale(self, store_pair):
        a, b = store_pair
        assert a.claim("job") is not None  # written with our live pid
        assert b.claim("job") is None


class TestHeartbeat:
    def test_heartbeat_extends_expiry(self, store_pair, clock):
        a, b = store_pair
        lease = a.claim("job")
        clock.advance(8.0)
        a.heartbeat(lease)
        clock.advance(8.0)  # 16s since claim, but only 8 since the beat
        assert b.claim("job") is None

    def test_heartbeat_raises_when_lease_stolen(self, store_pair, clock):
        a, b = store_pair
        lease = a.claim("job")
        clock.advance(11.0)
        assert b.claim("job") is not None
        with pytest.raises(LeaseLost):
            a.heartbeat(lease)

    def test_heartbeat_raises_when_lease_gone(self, store_pair):
        a, _ = store_pair
        lease = a.claim("job")
        os.unlink(lease.path)
        with pytest.raises(LeaseLost):
            a.heartbeat(lease)


class TestAttemptHistory:
    def test_attempts_record_owner_and_outcome(self, store_pair, clock):
        a, b = store_pair
        a.release(a.claim("job"), status="retry")
        lease = b.claim("job")
        b.release(lease, status="ok")
        records = a.attempts("job")
        assert [record["status"] for record in records] == ["retry", "ok"]
        assert [record["owner"] for record in records] == ["A", "B"]
        assert all("started" in record for record in records)
        assert a.attempt_count("job") == 2

    def test_reclaimed_attempt_is_flagged(self, store_pair, clock):
        a, b = store_pair
        a.claim("job")  # never released: the owner "crashed"
        clock.advance(11.0)
        b.claim("job")
        records = b.attempts("job")
        assert records[0]["status"] == "running"  # the orphaned attempt
        assert records[1].get("reclaimed") is True


class TestClockSkew:
    def test_clock_skew_fault_shifts_expiry(self, tmp_path, clock, monkeypatch):
        monkeypatch.delenv(FAULTS_DIR_ENV_VAR, raising=False)
        reset_fault_state()
        store = JobStore(str(tmp_path), owner="A", lease_ttl=10.0, clock=clock)
        assert store.claim("job") is not None
        peer = JobStore(str(tmp_path), owner="B", lease_ttl=10.0, clock=clock)
        assert peer.claim("job") is None
        # A +30s skew makes the fresh lease look expired to this process.
        monkeypatch.setenv(FAULTS_ENV_VAR, "clock_skew:seconds=30")
        reset_fault_state()
        assert peer.claim("job") is not None
        monkeypatch.delenv(FAULTS_ENV_VAR)
        reset_fault_state()


class TestEnvironment:
    def test_lease_ttl_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.delenv(LEASE_TTL_ENV_VAR, raising=False)
        assert JobStore(str(tmp_path)).lease_ttl == DEFAULT_LEASE_TTL
        monkeypatch.setenv(LEASE_TTL_ENV_VAR, "7.5")
        assert JobStore(str(tmp_path)).lease_ttl == 7.5

    def test_retry_policy_from_environment(self, monkeypatch):
        monkeypatch.setenv(RETRY_ATTEMPTS_ENV_VAR, "5")
        monkeypatch.setenv(RETRY_BASE_DELAY_ENV_VAR, "0.25")
        policy = RetryPolicy.from_environment()
        assert policy.max_attempts == 5
        assert policy.base_delay == 0.25


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, max_delay=8.0, jitter=0.0
        )
        assert [policy.delay("job", n) for n in range(1, 6)] == [
            1.0,
            2.0,
            4.0,
            8.0,
            8.0,
        ]

    def test_jitter_is_deterministic_and_job_dependent(self):
        policy = RetryPolicy(max_attempts=3, base_delay=1.0)
        assert policy.delay("a", 1) == policy.delay("a", 1)
        assert policy.delay("a", 1) != policy.delay("b", 1)
        assert 0.5 <= policy.delay("a", 1) <= 1.0  # jitter scales in [1-j, 1]

    def test_should_retry_honours_attempt_cap(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1) and policy.should_retry(2)
        assert not policy.should_retry(3)


class TestClassifyFailure:
    @pytest.mark.parametrize(
        "exception",
        [
            WorkerCrashed("boom"),
            SolveBudgetExceeded("budget"),
            OSError("disk"),
            TimeoutError("slow"),
            MemoryError(),
        ],
    )
    def test_transient_exceptions(self, exception):
        assert classify_failure(exception) == "transient"

    @pytest.mark.parametrize(
        "exception", [ValueError("bad"), KeyError("missing"), RuntimeError("x")]
    )
    def test_permanent_exceptions(self, exception):
        assert classify_failure(exception) == "permanent"

    def test_error_text_fallback(self):
        # When the exception object did not survive pickling, the error
        # string (formatted "TypeName: message") is classified instead.
        assert classify_failure(None, "WorkerCrashed: died") == "transient"
        assert classify_failure(None, "SolveBudgetExceeded: dip") == "transient"
        assert classify_failure(None, "ValueError: bad params") == "permanent"
        assert classify_failure(None, "") == "permanent"

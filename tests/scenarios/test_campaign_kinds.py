"""Tests for the adversary-side and windowed campaign job kinds."""

import pytest

from repro.netlist.generate import random_netlist as build_random_netlist
from repro.netlist.blif import write_blif
from repro.netlist.simulate import extract_function
from repro.scenarios.campaign import (
    JOB_KINDS,
    CampaignError,
    CampaignSpec,
    run_campaign,
    run_windowed_campaign,
    window_record_from_payload,
)


class TestAdversaryJobKinds:
    def test_kinds_registered(self):
        assert "decamouflage" in JOB_KINDS
        assert "random_camo" in JOB_KINDS
        assert "window_obfuscate" in JOB_KINDS

    def test_adversary_builder(self):
        spec = CampaignSpec.adversary([("PRESENT", 2)], seed=3)
        assert [job.kind for job in spec.jobs] == ["decamouflage", "random_camo"]
        # Round-trips through JSON like every other spec.
        assert CampaignSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_adversary_builder_subsets(self):
        spec = CampaignSpec.adversary([("PRESENT", 2)], random_camo=False)
        assert [job.kind for job in spec.jobs] == ["decamouflage"]
        spec = CampaignSpec.adversary([("PRESENT", 2)], decamouflage=False)
        assert [job.kind for job in spec.jobs] == ["random_camo"]

    def test_decamouflage_job_runs(self):
        spec = CampaignSpec.adversary(
            [("PRESENT", 2)], population=4, generations=1, random_camo=False
        )
        outcome = run_campaign(spec)
        assert outcome.all_ok
        payload = outcome.results[0].payload
        assert payload["total"] == 2
        # The design's whole point: every viable function stays plausible.
        assert payload["all_plausible"] is True
        assert payload["prefilter"]["queries"] == 2

    def test_random_camo_job_runs(self):
        spec = CampaignSpec.adversary(
            [("PRESENT", 2)], decamouflage=False, fraction=0.5, seed=3
        )
        outcome = run_campaign(spec)
        assert outcome.all_ok
        payload = outcome.results[0].payload
        assert payload["total"] == 2
        # The true function is always plausible under its own camouflage.
        assert payload["verdicts"][0] is True
        assert payload["camouflaged_cells"] >= 1


@pytest.fixture(scope="module")
def wide_blif(tmp_path_factory, library):
    """A bundled-style wide BLIF circuit on disk (20 inputs, 14 cells)."""
    netlist = build_random_netlist(
        23, library, num_inputs=20, num_cells=14, num_outputs=4, name="wide20"
    )
    path = tmp_path_factory.mktemp("blif") / "wide20.blif"
    path.write_text(write_blif(netlist), encoding="utf-8")
    return str(path), netlist


class TestWindowedCampaign:
    def test_spec_builder_is_deterministic(self, wide_blif):
        path, _ = wide_blif
        first = CampaignSpec.windowed(path, max_window_inputs=6, decoys=0)
        second = CampaignSpec.windowed(path, max_window_inputs=6, decoys=0)
        assert first.to_dict() == second.to_dict()
        assert all(job.kind == "window_obfuscate" for job in first.jobs)

    def test_run_and_stitch_equivalence(self, wide_blif, tmp_path):
        path, original = wide_blif
        outcome, assembled = run_windowed_campaign(
            path,
            state_dir=str(tmp_path / "state"),
            max_window_inputs=6,
            decoys=0,
            seed=3,
        )
        assert outcome.all_ok
        assert assembled is not None
        assert assembled.verification.ok
        assert len(assembled.true_configuration) >= 1

    def test_resume_from_state_and_payload_rebuild(self, wide_blif, tmp_path):
        """Interrupt after a few windows; the rerun stitches from state."""
        path, original = wide_blif
        state_dir = str(tmp_path / "state")
        spec = CampaignSpec.windowed(path, max_window_inputs=6, decoys=0, seed=3)
        partial, assembled = run_windowed_campaign(
            path, spec=spec, state_dir=state_dir, limit=2,
            max_window_inputs=6, decoys=0, seed=3,
        )
        assert assembled is None
        assert len(partial.executed) == 2
        assert len(partial.pending) == len(spec.jobs) - 2

        resumed, assembled = run_windowed_campaign(
            path, spec=spec, state_dir=state_dir,
            max_window_inputs=6, decoys=0, seed=3,
        )
        assert len(resumed.cached) == 2
        assert assembled is not None
        assert assembled.verification.ok
        # Cached windows were rebuilt from persisted payloads (no value).
        assert all(result.value is None for result in resumed.cached)

    def test_payload_round_trip_preserves_configuration(self, wide_blif, tmp_path):
        path, _ = wide_blif
        state_dir = str(tmp_path / "state")
        outcome, assembled = run_windowed_campaign(
            path, state_dir=state_dir, max_window_inputs=6, decoys=0, seed=3
        )
        result = outcome.results[0]
        record = window_record_from_payload(
            result.payload, assembled.records[0].window
        )
        fresh = assembled.records[0]
        assert (
            extract_function(
                record.netlist, cell_functions=record.true_configuration
            ).lookup_table()
            == extract_function(
                fresh.netlist, cell_functions=fresh.true_configuration
            ).lookup_table()
        )

    def test_changed_blif_fails_loudly(self, wide_blif, tmp_path, library):
        """A spec built for N windows refuses a circuit that windows to M."""
        path, _ = wide_blif
        spec = CampaignSpec.windowed(path, max_window_inputs=6, decoys=0)
        other = build_random_netlist(
            99, library, num_inputs=20, num_cells=30, num_outputs=4
        )
        new_path = tmp_path / "changed.blif"
        new_path.write_text(write_blif(other), encoding="utf-8")
        # Rewire every job onto the changed circuit.
        data = spec.to_dict()
        for job in data["jobs"]:
            job["params"]["path"] = str(new_path)
        changed = CampaignSpec.from_dict(data)
        outcome = run_campaign(changed)
        assert outcome.failed
        assert "windows" in outcome.failed[0].error

    def test_jobs_deterministic(self, wide_blif, tmp_path):
        path, _ = wide_blif
        stitched = []
        for jobs in (1, 2):
            _, assembled = run_windowed_campaign(
                path, jobs=jobs, max_window_inputs=6, decoys=0, seed=3,
                verify=False,
            )
            stitched.append(write_blif(assembled.netlist))
        assert stitched[0] == stitched[1]

"""Regression tests for lost-lease safety (results discarded, not committed).

A lease can be stolen mid-run: a peer whose clock says the lease expired
reclaims it and re-runs the job.  The PR-7 runner noticed (the heartbeat
keeper counted ``lease_lost``) but still committed its own result when the
job finished — double-writing state the thief now owns.  These tests pin
the fix: work finished under a lost lease is *discarded*, the runner
adopts the thief's result, and exactly one "ok" attempt exists on disk.
"""

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.faults import FAULTS_DIR_ENV_VAR, FAULTS_ENV_VAR, reset_fault_state
from repro.jobstore import JobStore
from repro.scenarios.campaign import CampaignJob, CampaignSpec, run_campaign

SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)

#: Thief driver: run the spec against the shared state dir, skewed clock.
THIEF = """\
import json
import sys

from repro.scenarios.campaign import CampaignSpec, run_campaign

with open(sys.argv[1], "r", encoding="utf-8") as handle:
    spec = CampaignSpec.from_dict(json.load(handle))
outcome = run_campaign(spec, state_dir=sys.argv[2], jobs=1)
print("THIEF_OK", outcome.all_ok)
"""


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    monkeypatch.delenv(FAULTS_DIR_ENV_VAR, raising=False)
    reset_fault_state()
    yield
    reset_fault_state()


class TestHoldsPrimitive:
    def test_holds_reflects_theft(self, tmp_path):
        """`holds` is the commit-time check: true owner, false after theft."""
        victim = JobStore(str(tmp_path), owner="victim", lease_ttl=10.0)
        lease = victim.claim("job")
        assert lease is not None
        assert victim.holds(lease)

        # A peer whose clock ran far ahead sees the lease as expired.
        thief = JobStore(
            str(tmp_path),
            owner="thief",
            lease_ttl=10.0,
            clock=lambda: time.time() + 3600.0,
        )
        stolen = thief.claim("job")
        assert stolen is not None
        assert thief.reclaims == 1
        assert not victim.holds(lease)
        assert thief.holds(stolen)

    def test_holds_false_after_release(self, tmp_path):
        store = JobStore(str(tmp_path), owner="one", lease_ttl=10.0)
        lease = store.claim("job")
        store.release(lease, status="ok")
        assert not store.holds(lease)


class TestLostLeaseDiscard:
    def test_skewed_peer_steals_job_and_victim_discards(self, tmp_path):
        """The end-to-end regression, via the ``clock_skew`` fault.

        A victim campaign holds a job mid-``sleep`` while a subprocess
        running under ``REPRO_FAULTS=clock_skew:seconds=3600`` — its lease
        clock an hour fast — reclaims the lease and re-runs the job.  The
        victim must finish ``all_ok`` by *adopting* the thief's result:
        its own computation is discarded (``lease_lost_discards``), and the
        attempt history shows exactly one successful run.
        """
        spec = CampaignSpec(
            name="stolen",
            jobs=[CampaignJob("slow", "probe", {"value": 1, "sleep": 2.0})],
        )
        state = tmp_path / "state"
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        thief_path = tmp_path / "thief.py"
        thief_path.write_text(THIEF, encoding="utf-8")

        messages = []
        outcome_box = {}

        def victim():
            outcome_box["outcome"] = run_campaign(
                spec,
                state_dir=str(state),
                jobs=1,
                lease_ttl=0.5,
                progress=messages.append,
            )

        runner = threading.Thread(target=victim)
        runner.start()
        deadline = time.monotonic() + 30.0
        lease_path = state / "slow.lease"
        while not lease_path.exists() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert lease_path.exists(), "victim never claimed the job"

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        env[FAULTS_ENV_VAR] = "clock_skew:seconds=3600"
        env.pop(FAULTS_DIR_ENV_VAR, None)
        thief = subprocess.run(
            [sys.executable, str(thief_path), str(spec_path), str(state)],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert thief.returncode == 0, thief.stdout + thief.stderr
        assert "THIEF_OK True" in thief.stdout

        runner.join(timeout=120)
        assert not runner.is_alive()
        outcome = outcome_box["outcome"]
        assert outcome.all_ok
        # The victim noticed the theft and threw its own result away ...
        assert outcome.robustness.get("lease_lost_discards", 0) >= 1
        assert any("lease lost mid-run" in message for message in messages)
        # ... and adopted the thief's committed state instead.
        assert any(
            "cached (completed by a peer)" in message for message in messages
        )

        # Exactly one successful attempt exists, and the job's state was
        # written exactly once (the thief's) — no double-write.
        store = JobStore(str(state), owner="inspector")
        records = store.attempts("slow")
        finished = [
            record for record in records if record.get("status") == "ok"
        ]
        assert len(finished) == 1, records
        assert any(record.get("reclaimed") for record in records)
        assert outcome.result_for("slow").payload["value"] == 1

"""Chaos tests: injected faults must not change what a campaign computes.

Every test here drives a real campaign through a deterministic injected
fault (worker SIGKILL, torn state write, corrupted cache line, forced
solver UNKNOWN) and asserts the recovery invariants the execution layer
promises: artifacts byte-identical to a fault-free run (after stripping
wall-clock noise), only the damaged jobs re-execute, and — with several
processes sharing one state directory — every job runs exactly once.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.faults import FAULTS_DIR_ENV_VAR, FAULTS_ENV_VAR, reset_fault_state
from repro.ga.pinopt import SynthesisDiskCache
from repro.jobstore import JobStore, RetryPolicy
from repro.obs.trace import (
    TRACE_DIR_ENV_VAR,
    TRACE_ENV_VAR,
    job_span_id,
    load_trace,
    reset_trace_state,
)
from repro.sat.solver import BUDGET_ENV_VAR, SolveBudget, SolveBudgetExceeded
from repro.scenarios.campaign import (
    JOB_KINDS,
    CampaignJob,
    CampaignSpec,
    run_campaign,
)

SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)

#: Subprocess driver: run a spec from JSON against a shared state dir.
DRIVER = """\
import json
import sys

from repro.scenarios.campaign import CampaignSpec, run_campaign

with open(sys.argv[1], "r", encoding="utf-8") as handle:
    spec = CampaignSpec.from_dict(json.load(handle))
outcome = run_campaign(
    spec,
    state_dir=sys.argv[2],
    jobs=1,
    progress=lambda message: print(message, flush=True),
)
print("ALL_OK", outcome.all_ok)
"""


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """Chaos tests own the fault environment; never leak it between tests."""
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    monkeypatch.delenv(FAULTS_DIR_ENV_VAR, raising=False)
    monkeypatch.delenv(BUDGET_ENV_VAR, raising=False)
    reset_fault_state()
    yield
    reset_fault_state()


def probe_spec(count=4, name="chaos", **extra):
    return CampaignSpec(
        name=name,
        jobs=[
            CampaignJob(f"probe_{index}", "probe", {"value": index, **extra})
            for index in range(count)
        ],
    )


def _drive_subprocess_campaign(tmp_path, spec, state_dir, extra_env=None, wait=True):
    """Launch the DRIVER script on (spec, state_dir) in a fresh process."""
    spec_path = tmp_path / "spec.json"
    if not spec_path.exists():
        spec_path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
    driver_path = tmp_path / "driver.py"
    if not driver_path.exists():
        driver_path.write_text(DRIVER, encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    env.pop(FAULTS_ENV_VAR, None)
    env.pop(FAULTS_DIR_ENV_VAR, None)
    env.update(extra_env or {})
    process = subprocess.Popen(
        [sys.executable, str(driver_path), str(spec_path), str(state_dir)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    if not wait:
        return process
    output, _ = process.communicate(timeout=180)
    return process.returncode, output


# ------------------------------------------------------------------ #
# Artifact normalisation: strip wall-clock noise, keep everything else
# ------------------------------------------------------------------ #
def normalized_json(outcome):
    """Campaign JSON document with timing/provenance noise zeroed.

    Seconds are wall-clock measurements and the cached/robustness fields
    describe *how* the run got its results; everything else — statuses,
    payloads, job sets — must be byte-identical between a fault-free run
    and a chaos run that recovered.
    """
    document = json.loads(outcome.to_json())
    for key in ("total_seconds", "mean_seconds", "wall_seconds"):
        document[key] = 0.0
    document["job_seconds"] = {key: 0.0 for key in document["job_seconds"]}
    document["robustness"] = {}
    document["campaign"] = {}
    for row in document.get("results", []):
        row["seconds"] = 0.0
        row["cached"] = False
    return json.dumps(document, indent=2, sort_keys=True)


def normalized_csv(outcome):
    """Campaign CSV with the seconds and cached columns zeroed."""
    lines = outcome.to_csv().splitlines()
    header = lines[0].split(",")
    seconds_column = header.index("seconds")
    cached_column = header.index("cached")
    normalized = [lines[0]]
    for line in lines[1:]:
        cells = line.split(",")
        cells[seconds_column] = "0"
        cells[cached_column] = "0"
        normalized.append(",".join(cells))
    return "\n".join(normalized)


# ------------------------------------------------------------------ #
# Worker crash recovery
# ------------------------------------------------------------------ #
class TestWorkerKill:
    def test_killed_worker_recovers_transparently(self, tmp_path, monkeypatch):
        """A SIGKILLed worker mid-sweep must not change the artifacts.

        ``oversubscribe`` guarantees real worker processes even on a
        single-CPU host, so the kill hits a worker (not this process);
        supervision respawns the pool and resubmits the lost job, and the
        ``once`` marker directory stops the respawned worker from dying
        on the same fault again.
        """
        spec = probe_spec()
        clean = run_campaign(spec, jobs=2, oversubscribe=True)
        assert clean.all_ok

        monkeypatch.setenv(FAULTS_ENV_VAR, "worker_kill:job=probe_1,once")
        monkeypatch.setenv(FAULTS_DIR_ENV_VAR, str(tmp_path / "faults"))
        reset_fault_state()
        chaos = run_campaign(spec, jobs=2, oversubscribe=True)
        assert chaos.all_ok
        assert chaos.robustness.get("worker_crashes", 0) >= 1
        assert normalized_json(chaos) == normalized_json(clean)
        assert normalized_csv(chaos) == normalized_csv(clean)

    def test_serial_sigkill_resumes_via_lease_reclaim(self, tmp_path):
        """SIGKILL of a serial campaign process: resume re-runs only the rest.

        The killed process leaves finished state files plus a lease held
        by a now-dead pid; the resuming process must adopt the finished
        prefix ("cached (state matches)"), reclaim the dead owner's lease,
        and produce artifacts identical to a never-interrupted run.
        """
        spec = probe_spec()
        state = tmp_path / "state"
        returncode, _ = _drive_subprocess_campaign(
            tmp_path,
            spec,
            state,
            extra_env={FAULTS_ENV_VAR: "worker_kill:job=probe_2"},
        )
        assert returncode == -signal.SIGKILL
        # The finished prefix is persisted; the killed job is not, and its
        # lease file is still on disk, held by the dead process.
        assert (state / "probe_0.json").exists()
        assert (state / "probe_1.json").exists()
        assert not (state / "probe_2.json").exists()
        assert (state / "probe_2.lease").exists()

        messages = []
        resumed = run_campaign(
            spec, state_dir=str(state), jobs=1, progress=messages.append
        )
        assert resumed.all_ok
        cached = [line for line in messages if "cached (state matches)" in line]
        assert len(cached) == 2
        # The dead owner's lease was reclaimed, and the attempt history
        # records the reclaim (owner telemetry for "no job ran twice").
        store = JobStore(str(state), owner="inspector")
        attempts = store.attempts("probe_2")
        assert any(record.get("reclaimed") for record in attempts)
        assert sum(record.get("status") == "ok" for record in attempts) == 1

        clean = run_campaign(spec, jobs=1)
        assert normalized_json(resumed) == normalized_json(clean)
        assert normalized_csv(resumed) == normalized_csv(clean)


# ------------------------------------------------------------------ #
# Tracing under chaos
# ------------------------------------------------------------------ #
class TestTraceChaos:
    def test_sigkill_reclaim_traces_two_attempts_under_one_job_span(
        self, tmp_path, monkeypatch
    ):
        """The crash story must be legible in the trace itself.

        Kill a traced campaign mid-job, resume it with tracing still on,
        and the merged trace must show: one trace id across both
        processes, the killed attempt as an *unfinished* span and the
        resumed attempt as a finished one — both parented under the job's
        single deterministic span — and the lease-reclaim event
        attributed to the surviving owner.
        """
        spec = probe_spec()
        state = tmp_path / "state"
        trace_directory = tmp_path / "trace"
        returncode, _ = _drive_subprocess_campaign(
            tmp_path,
            spec,
            state,
            extra_env={
                FAULTS_ENV_VAR: "worker_kill:job=probe_2",
                TRACE_ENV_VAR: "1",
                TRACE_DIR_ENV_VAR: str(trace_directory),
            },
        )
        assert returncode == -signal.SIGKILL

        monkeypatch.setenv(TRACE_ENV_VAR, "1")
        monkeypatch.setenv(TRACE_DIR_ENV_VAR, str(trace_directory))
        reset_trace_state()
        try:
            resumed = run_campaign(spec, state_dir=str(state), jobs=1)
        finally:
            monkeypatch.delenv(TRACE_ENV_VAR)
            reset_trace_state()
        assert resumed.all_ok

        records = load_trace(str(trace_directory))
        # Both processes joined the one trace persisted in trace.json.
        trace_ids = {record["trace"] for record in records}
        assert len(trace_ids) == 1, trace_ids
        trace_id = trace_ids.pop()
        probe_2_span = job_span_id(trace_id, "probe_2")

        attempts = [
            record
            for record in records
            if record["name"] == "attempt"
            and record.get("attrs", {}).get("job") == "probe_2"
        ]
        assert len(attempts) == 2, attempts
        assert all(record["parent"] == probe_2_span for record in attempts)
        unfinished = [r for r in attempts if r.get("unfinished")]
        finished = [r for r in attempts if not r.get("unfinished")]
        assert len(unfinished) == 1 and len(finished) == 1
        # The killed attempt and the resumed attempt ran in different
        # processes; the unfinished one is the earlier.
        assert unfinished[0]["pid"] != finished[0]["pid"]
        assert unfinished[0]["start"] <= finished[0]["start"]

        # The reclaim edge: recorded under the job span, attributed to
        # the surviving owner that stole the dead owner's lease.  (The
        # killed round had also claimed probe_3's lease, so that job
        # carries its own reclaim event.)
        (reclaim,) = [
            r
            for r in records
            if r["name"] == "reclaim" and r["attrs"]["job"] == "probe_2"
        ]
        assert reclaim["parent"] == probe_2_span
        survivor = reclaim["attrs"]["owner"]
        assert survivor and survivor != reclaim["attrs"]["previous"]
        store = JobStore(str(state), owner="inspector")
        ok_attempts = [
            record
            for record in store.attempts("probe_2")
            if record.get("status") == "ok"
        ]
        assert ok_attempts[0]["owner"] == survivor

        # Exactly one job span for probe_2 — the deterministic id both
        # processes derive — terminal ok, under a campaign span.
        (job_record,) = [
            r
            for r in records
            if r["name"] == "job" and r.get("attrs", {}).get("job") == "probe_2"
        ]
        assert job_record["span"] == probe_2_span
        assert job_record["attrs"]["status"] == "ok"
        campaigns = [r for r in records if r["name"] == "campaign"]
        assert job_record["parent"] in {r["span"] for r in campaigns}
        # Two campaign invocations (killed + resume) share the trace; the
        # killed one survives as an unfinished span.
        assert len(campaigns) == 2
        assert sum(bool(r.get("unfinished")) for r in campaigns) == 1


# ------------------------------------------------------------------ #
# State / cache corruption
# ------------------------------------------------------------------ #
class TestCorruption:
    def test_torn_state_file_reexecutes_only_that_job(self, tmp_path, monkeypatch):
        state = str(tmp_path / "state")
        spec = probe_spec(3)
        monkeypatch.setenv(FAULTS_ENV_VAR, "torn_state:job=probe_1,count=1")
        reset_fault_state()
        first = run_campaign(spec, state_dir=state, jobs=1)
        # The job itself succeeded — only its persisted state file is torn.
        assert first.all_ok
        assert first.robustness.get("fault_torn_state") == 1

        monkeypatch.delenv(FAULTS_ENV_VAR)
        reset_fault_state()
        executed = []
        real_probe = JOB_KINDS["probe"]

        def _spying_probe(params, task_jobs):
            executed.append(params["value"])
            return real_probe(params, task_jobs)

        monkeypatch.setitem(JOB_KINDS, "probe", _spying_probe)
        second = run_campaign(spec, state_dir=state, jobs=1)
        assert second.all_ok
        # Only the torn job re-ran; its intact siblings came from state.
        assert executed == [1]
        assert len(second.cached) == 2
        assert normalized_json(second) == normalized_json(first)

    def test_corrupt_cache_line_loses_only_that_entry(self, tmp_path, monkeypatch):
        library = "deadbeefcafe0000"
        # Tear the *second* append: a torn line has no terminating newline,
        # so it is only recoverable as the final line of a crashed writer's
        # segment (anything appended after it would merge into the garbage).
        monkeypatch.setenv(FAULTS_ENV_VAR, "cache_corrupt:after=1,count=1")
        reset_fault_state()
        writer = SynthesisDiskCache(str(tmp_path))
        writer.put("fast", library, (4, 0x1234), 42.5)  # lands intact
        writer.put("fast", library, (4, 0x5678), 17.0)  # torn mid-write
        monkeypatch.delenv(FAULTS_ENV_VAR)
        reset_fault_state()
        reloaded = SynthesisDiskCache(str(tmp_path))
        # Exactly the corrupted line is lost: its entry misses (and would
        # re-synthesise), the sibling survives.
        assert reloaded.loaded == 1
        assert reloaded.get("fast", library, (4, 0x5678)) is None
        assert reloaded.get("fast", library, (4, 0x1234)) == 42.5


# ------------------------------------------------------------------ #
# Retry / backoff machinery
# ------------------------------------------------------------------ #
class TestRetries:
    def test_transient_failure_retries_and_succeeds(self, tmp_path):
        marker = tmp_path / "flaky.marker"
        spec = CampaignSpec(
            name="retry",
            jobs=[
                CampaignJob(
                    "flaky", "probe", {"value": 7, "fail_marker": str(marker)}
                ),
                CampaignJob("steady", "probe", {"value": 8}),
            ],
        )
        state = str(tmp_path / "state")
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)
        outcome = run_campaign(spec, state_dir=state, retry_policy=policy)
        assert outcome.all_ok
        flaky = outcome.result_for("flaky")
        assert flaky.attempts == 2
        assert outcome.result_for("steady").attempts == 1
        assert outcome.robustness["retries"] == 1
        assert outcome.robustness["failures_transient"] == 1
        store = JobStore(state, owner="inspector")
        statuses = [record["status"] for record in store.attempts("flaky")]
        assert statuses == ["retry", "ok"]

    def test_permanent_failure_is_not_retried(self, monkeypatch):
        def _bad_parameters(params, task_jobs):
            raise ValueError("bad parameters")

        monkeypatch.setitem(JOB_KINDS, "bad", _bad_parameters)
        spec = CampaignSpec(name="perm", jobs=[CampaignJob("bad", "bad", {})])
        outcome = run_campaign(
            spec, retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01)
        )
        result = outcome.result_for("bad")
        assert result.status == "error"
        assert result.attempts == 1
        assert "retries" not in outcome.robustness
        assert outcome.robustness["failures_permanent"] == 1

    def test_budget_escalates_per_retry_then_times_out(self, monkeypatch):
        budgets_seen = []

        def _too_hard(params, task_jobs):
            budgets_seen.append(os.environ.get(BUDGET_ENV_VAR, ""))
            raise SolveBudgetExceeded("miter did not resolve in budget")

        monkeypatch.setitem(JOB_KINDS, "hard", _too_hard)
        spec = CampaignSpec(name="hard", jobs=[CampaignJob("hard", "hard", {})])
        outcome = run_campaign(
            spec,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01),
            solve_budget=SolveBudget(max_conflicts=100),
        )
        # The budget doubles on every retry; when attempts run out the job
        # finishes as "timed_out" — a verdict, not a hang, not an "error".
        assert budgets_seen == ["conflicts=100", "conflicts=200", "conflicts=400"]
        result = outcome.result_for("hard")
        assert result.status == "timed_out"
        assert result.attempts == 3
        assert outcome.robustness["timed_out"] == 1
        assert outcome.robustness["retries"] == 2
        assert not outcome.all_ok

    def test_budget_escalation_can_rescue_a_job(self, monkeypatch):
        attempts = []

        def _needs_big_budget(params, task_jobs):
            spec = os.environ.get(BUDGET_ENV_VAR, "")
            attempts.append(spec)
            if SolveBudget.from_spec(spec).max_conflicts < 300:
                raise SolveBudgetExceeded("budget too small")
            return 1, {"x": 1}

        monkeypatch.setitem(JOB_KINDS, "big", _needs_big_budget)
        spec = CampaignSpec(name="big", jobs=[CampaignJob("big", "big", {})])
        outcome = run_campaign(
            spec,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01),
            solve_budget=SolveBudget(max_conflicts=100),
        )
        assert attempts == ["conflicts=100", "conflicts=200", "conflicts=400"]
        assert outcome.all_ok
        assert outcome.result_for("big").attempts == 3


# ------------------------------------------------------------------ #
# Solver UNKNOWN inside a real attack job
# ------------------------------------------------------------------ #
class TestSolverFault:
    def test_attack_recovers_from_forced_unknown(self, monkeypatch):
        """A forced UNKNOWN mid-attack retries into a byte-identical result.

        ``presample=0`` pins the attack to the SAT DIP loop so the first
        attempt is guaranteed to consult the solver and hit the injected
        fault; the retry (fault exhausted) must reproduce the exact
        fault-free payload — partial transcripts never leak into results.
        """
        params = {
            "family": "PRESENT",
            "count": 2,
            "population": 4,
            "generations": 1,
            "seed": 1,
            "presample": 0,
        }
        spec = CampaignSpec(
            name="attack", jobs=[CampaignJob("attack", "attack", dict(params))]
        )
        clean = run_campaign(spec)
        assert clean.all_ok

        monkeypatch.setenv(FAULTS_ENV_VAR, "solver_unknown:count=1")
        reset_fault_state()
        chaos = run_campaign(
            spec, retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01)
        )
        assert chaos.all_ok
        result = chaos.result_for("attack")
        assert result.attempts == 2
        assert chaos.robustness["retries"] == 1
        assert chaos.robustness["failures_transient"] == 1
        assert chaos.robustness["fault_solver_unknown"] == 1
        assert result.payload == clean.result_for("attack").payload


# ------------------------------------------------------------------ #
# Concurrent processes sharing one state directory
# ------------------------------------------------------------------ #
class TestConcurrentCampaigns:
    def test_every_job_executes_exactly_once(self, tmp_path):
        """Two concurrent campaign processes, one state dir, no double work.

        The jobs sleep long enough that both processes overlap; lease
        claiming must hand every job to exactly one of them, and the
        persisted attempt history is the proof: one "ok" attempt per job,
        total, across both processes.
        """
        spec = probe_spec(4, name="shared", sleep=0.2)
        state = tmp_path / "state"
        first = _drive_subprocess_campaign(tmp_path, spec, state, wait=False)
        second = _drive_subprocess_campaign(tmp_path, spec, state, wait=False)
        output_one, _ = first.communicate(timeout=180)
        output_two, _ = second.communicate(timeout=180)
        assert first.returncode == 0, output_one
        assert second.returncode == 0, output_two
        assert "ALL_OK True" in output_one
        assert "ALL_OK True" in output_two

        store = JobStore(str(state), owner="inspector")
        owners = set()
        for job in spec.jobs:
            records = store.attempts(job.job_id)
            finished = [
                record for record in records if record.get("status") == "ok"
            ]
            assert len(finished) == 1, (job.job_id, records)
            owners.add(finished[0]["owner"])
            assert (state / f"{job.job_id}.json").exists()
        # Each completed attempt names its owning process; the four jobs
        # were claimed by at most two distinct owners (the two drivers).
        assert 1 <= len(owners) <= 2

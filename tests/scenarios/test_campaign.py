"""Unit and integration tests for the campaign runner."""

import json
import os

import pytest

from repro.evaluation.table1 import run_table1_entry
from repro.evaluation.workloads import ExperimentProfile
from repro.scenarios.campaign import (
    JOB_KINDS,
    CampaignError,
    CampaignJob,
    CampaignRunner,
    CampaignSpec,
    run_campaign,
)


@pytest.fixture(scope="module")
def tiny_profile():
    return ExperimentProfile(
        name="tiny",
        present_counts=(2,),
        des_counts=(),
        ga_population=4,
        ga_generations=2,
        random_samples=0,
        figure4_sbox_count=2,
    )


@pytest.fixture
def echo_kind(monkeypatch):
    """A trivially cheap job kind for runner-mechanics tests."""
    calls = []

    def _run_echo(params, task_jobs):
        calls.append(dict(params))
        if params.get("explode"):
            raise RuntimeError("boom")
        return params.get("x"), {"x": params.get("x"), "jobs": task_jobs}

    monkeypatch.setitem(JOB_KINDS, "echo", _run_echo)
    return calls


def _echo_spec(values, name="echo-campaign", **extra):
    return CampaignSpec(
        name=name,
        jobs=[
            CampaignJob(f"echo_{value}", "echo", {"x": value, **extra})
            for value in values
        ],
    )


class TestSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(name="bad", jobs=[CampaignJob("a", "no_such_kind", {})])

    def test_duplicate_job_id_rejected(self, echo_kind):
        with pytest.raises(CampaignError):
            CampaignSpec(
                name="bad",
                jobs=[CampaignJob("a", "echo", {}), CampaignJob("a", "echo", {})],
            )

    def test_json_round_trip(self, tiny_profile):
        spec = CampaignSpec.table1(tiny_profile, [("PRESENT", 2)], seed=3)
        rebuilt = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.name == spec.name
        assert [job.job_id for job in rebuilt.jobs] == [job.job_id for job in spec.jobs]
        assert [job.fingerprint() for job in rebuilt.jobs] == [
            job.fingerprint() for job in spec.jobs
        ]

    def test_fingerprint_tracks_params(self, echo_kind):
        a = CampaignJob("j", "echo", {"x": 1})
        b = CampaignJob("j", "echo", {"x": 2})
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == CampaignJob("j", "echo", {"x": 1}).fingerprint()

    def test_merged_specs(self, echo_kind):
        merged = _echo_spec([1]).merged(_echo_spec([2]), name="both")
        assert [job.job_id for job in merged.jobs] == ["echo_1", "echo_2"]
        with pytest.raises(CampaignError):
            _echo_spec([1]).merged(_echo_spec([1]))

    def test_malformed_spec_dict(self):
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict({"name": "x"})


class TestRunnerMechanics:
    def test_results_in_spec_order(self, echo_kind):
        outcome = run_campaign(_echo_spec([3, 1, 2]))
        assert [result.job_id for result in outcome.results] == [
            "echo_3", "echo_1", "echo_2"
        ]
        assert [result.value for result in outcome.results] == [3, 1, 2]
        assert outcome.all_ok

    def test_error_job_is_isolated(self, echo_kind):
        spec = CampaignSpec(
            name="err",
            jobs=[
                CampaignJob("good", "echo", {"x": 1}),
                CampaignJob("bad", "echo", {"x": 2, "explode": True}),
            ],
        )
        outcome = run_campaign(spec)
        assert outcome.result_for("good").ok
        bad = outcome.result_for("bad")
        assert bad.status == "error"
        assert "boom" in bad.error
        assert not outcome.all_ok

    def test_limit_leaves_pending(self, echo_kind):
        outcome = run_campaign(_echo_spec([1, 2, 3]), limit=1)
        assert len(outcome.executed) == 1
        assert len(outcome.pending) == 2
        assert outcome.result_for("echo_2").status == "pending"

    def test_fail_fast_aborts_and_keeps_finished_state(self, echo_kind, tmp_path):
        state = tmp_path / "state"
        spec = CampaignSpec(
            name="ff",
            jobs=[
                CampaignJob("good", "echo", {"x": 1}),
                CampaignJob("bad", "echo", {"explode": True}),
                CampaignJob("never", "echo", {"x": 3}),
            ],
        )
        with pytest.raises(RuntimeError, match="boom"):
            run_campaign(spec, state_dir=str(state), fail_fast=True)
        # The failure aborted before the third job ran...
        assert [call.get("x") for call in echo_kind] == [1, None]
        # ...but the completed prefix is on disk and resumable.
        assert (state / "good.json").exists()
        assert not (state / "never.json").exists()

    def test_state_dir_resume_skips_completed(self, echo_kind, tmp_path):
        state = str(tmp_path / "state")
        spec = _echo_spec([1, 2, 3])
        first = run_campaign(spec, state_dir=state, limit=2)
        assert len(first.executed) == 2 and len(first.pending) == 1
        assert len(echo_kind) == 2
        # The second run completes from the saved state: only the pending
        # job executes, the finished ones are restored without recompute.
        second = run_campaign(spec, state_dir=state)
        assert len(second.cached) == 2
        assert len(second.executed) == 1
        assert len(echo_kind) == 3
        assert second.all_ok
        # Third run: everything cached, nothing executes.
        third = run_campaign(spec, state_dir=state)
        assert len(third.cached) == 3 and not third.executed
        assert len(echo_kind) == 3
        assert third.result_for("echo_1").payload["x"] == 1

    def test_changed_params_invalidate_state(self, echo_kind, tmp_path):
        state = str(tmp_path / "state")
        run_campaign(_echo_spec([1], marker="a"), state_dir=state)
        assert len(echo_kind) == 1
        # Same job id, different params: the stale state must not answer.
        outcome = run_campaign(_echo_spec([1], marker="b"), state_dir=state)
        assert len(echo_kind) == 2
        assert not outcome.cached

    def test_corrupt_state_file_reruns(self, echo_kind, tmp_path):
        state = tmp_path / "state"
        spec = _echo_spec([1])
        run_campaign(spec, state_dir=str(state))
        (state / "echo_1.json").write_text("{ not json", encoding="utf-8")
        outcome = run_campaign(spec, state_dir=str(state))
        assert len(outcome.executed) == 1 and not outcome.cached

    def test_failed_jobs_are_not_persisted(self, echo_kind, tmp_path):
        state = tmp_path / "state"
        spec = CampaignSpec(
            name="err", jobs=[CampaignJob("bad", "echo", {"explode": True})]
        )
        run_campaign(spec, state_dir=str(state))
        assert not (state / "bad.json").exists()

    def test_parallel_results_checkpoint_incrementally(self, echo_kind, tmp_path, monkeypatch):
        import repro.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 4)
        state = tmp_path / "state"
        saves = []

        real_save = CampaignRunner._save_state

        def _spy_save(self, job, result):
            real_save(self, job, result)
            saves.append((job.job_id, sorted(p.name for p in state.iterdir())))

        monkeypatch.setattr(CampaignRunner, "_save_state", _spy_save)
        outcome = run_campaign(_echo_spec([1, 2, 3]), state_dir=str(state), jobs=4)
        assert outcome.all_ok
        # Each job's state landed on disk before the next result was
        # consumed — an interrupted parallel campaign keeps its finished
        # prefix (results stream via WorkerPool.imap, not a batch barrier).
        assert [entry[0] for entry in saves] == ["echo_1", "echo_2", "echo_3"]
        assert "echo_1.json" in saves[0][1]
        assert "echo_3.json" not in saves[1][1]

    def test_worker_budget_split(self, echo_kind, monkeypatch):
        import repro.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 4)
        outcome = run_campaign(_echo_spec([1, 2]), jobs=4)
        # Two concurrent jobs share the 4-worker budget: 2 each.
        assert [result.payload["jobs"] for result in outcome.results] == [2, 2]
        serial = run_campaign(_echo_spec([1, 2]), jobs=1)
        assert [result.payload["jobs"] for result in serial.results] == [1, 1]


class TestArtifacts:
    def test_bench_payload_shape(self, echo_kind):
        outcome = run_campaign(_echo_spec([1, 2]))
        payload = outcome.bench_payload()
        assert payload["name"] == "campaign_echo-campaign"
        assert "total_seconds" in payload and "mean_seconds" in payload
        assert "wall_seconds" in payload
        assert payload["campaign"]["executed"] == 2

    def test_bench_payload_stable_across_cached_reruns(self, echo_kind, tmp_path):
        # The enforced timing keys sum recorded per-job seconds, so a
        # partially-cached rerun reports the campaign's compute cost, not
        # just the un-cached remainder's wall clock.
        state = str(tmp_path / "state")
        fresh = run_campaign(_echo_spec([1, 2]), state_dir=state)
        rerun = run_campaign(_echo_spec([1, 2]), state_dir=state)
        assert len(rerun.cached) == 2
        fresh_payload = fresh.bench_payload()
        rerun_payload = rerun.bench_payload()
        assert rerun_payload["total_seconds"] == pytest.approx(
            fresh_payload["total_seconds"]
        )
        assert set(rerun_payload["job_seconds"]) == set(fresh_payload["job_seconds"])

    def test_artifact_files(self, echo_kind, tmp_path):
        outcome = run_campaign(_echo_spec([1, 2]))
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        written = outcome.write_artifacts(
            json_path=str(json_path),
            csv_path=str(csv_path),
            bench_dir=str(tmp_path / "bench"),
        )
        assert len(written) == 3
        document = json.loads(json_path.read_text(encoding="utf-8"))
        assert len(document["results"]) == 2
        lines = csv_path.read_text(encoding="utf-8").strip().splitlines()
        assert lines[0].startswith("job_id,kind,status,cached,seconds")
        assert len(lines) == 3
        bench = json.loads(
            (tmp_path / "bench" / "BENCH_campaign_echo-campaign.json").read_text(
                encoding="utf-8"
            )
        )
        assert bench["campaign"]["executed"] == 2

    def test_bench_json_diffs_with_bench_diff(self, echo_kind, tmp_path):
        import importlib.util

        spec_path = os.path.join(
            os.path.dirname(__file__), "..", "..", "benchmarks", "bench_diff.py"
        )
        module_spec = importlib.util.spec_from_file_location("bench_diff", spec_path)
        bench_diff = importlib.util.module_from_spec(module_spec)
        module_spec.loader.exec_module(bench_diff)

        outcome = run_campaign(_echo_spec([1]))
        base_dir = tmp_path / "base"
        cand_dir = tmp_path / "cand"
        outcome.write_artifacts(bench_dir=str(base_dir))
        outcome.write_artifacts(bench_dir=str(cand_dir))
        baseline = bench_diff.load_artifacts(str(base_dir))
        candidate = bench_diff.load_artifacts(str(cand_dir))
        assert "campaign_echo-campaign" in baseline
        _, regressions = bench_diff.diff_artifacts(baseline, candidate, 25.0)
        assert regressions == []


class TestRealJobs:
    def test_table1_row_job_matches_direct_entry(self, tiny_profile):
        spec = CampaignSpec.table1(tiny_profile, [("PRESENT", 2)], seed=1)
        outcome = run_campaign(spec)
        assert outcome.all_ok
        entry = outcome.results[0].value
        direct = run_table1_entry("PRESENT", 2, profile=tiny_profile, seed=1)
        assert entry.row.as_dict() == direct.row.as_dict()
        assert outcome.results[0].payload["row"] == direct.row.as_dict()
        assert outcome.results[0].payload["verification_ok"] is True

    def test_table1_row_resume_from_state(self, tiny_profile, tmp_path):
        state = str(tmp_path / "state")
        spec = CampaignSpec.table1(tiny_profile, [("PRESENT", 2)], seed=1)
        first = run_campaign(spec, state_dir=state)
        second = run_campaign(spec, state_dir=state)
        assert second.results[0].cached
        assert second.results[0].payload == first.results[0].payload
        # Cached results carry no rich value; the payload is the contract.
        assert second.results[0].value is None

    def test_attack_job(self, tiny_profile):
        spec = CampaignSpec.attacks([("PRESENT", 2)], population=4, generations=1)
        outcome = run_campaign(spec)
        assert outcome.all_ok
        payload = outcome.results[0].payload
        assert payload["success"] is True
        assert payload["total_oracle_queries"] >= 1
        assert "solve_calls" in payload["solver"]

    def test_table1_failure_reraises_original_exception(self, tiny_profile, monkeypatch):
        import repro.evaluation.table1 as table1_module
        from repro.evaluation.table1 import run_table1

        def _explode(*args, **kwargs):
            raise ZeroDivisionError("synthetic GA failure")

        monkeypatch.setattr(table1_module, "run_table1_entry", _explode)
        # The faulting type propagates unchanged, as in the pre-runner loop.
        with pytest.raises(ZeroDivisionError):
            run_table1(profile=tiny_profile, families=[("PRESENT", 2)], seed=1)

    def test_table1_unknown_family_still_raises_value_error(self, tiny_profile):
        from repro.evaluation.table1 import run_table1

        with pytest.raises(ValueError):
            run_table1(profile=tiny_profile, families=[("NOPE", 2)], seed=1)

    def test_unpicklable_exception_reported_as_string(self, echo_kind, monkeypatch):
        class Unpicklable(Exception):
            def __init__(self, handle, extra):
                super().__init__("unpicklable")
                self.handle = handle

        def _raise(params, task_jobs):
            raise Unpicklable(object(), "x")

        monkeypatch.setitem(JOB_KINDS, "explode", _raise)
        spec = CampaignSpec(name="x", jobs=[CampaignJob("j", "explode", {})])
        outcome = run_campaign(spec)
        result = outcome.result_for("j")
        assert result.status == "error"
        assert "Unpicklable" in result.error
        # The exception itself is dropped: it would not survive the worker
        # pickle boundary, and a sweep must never die on result transfer.
        assert result.exception is None

    def test_figure4_jobs(self, tiny_profile):
        spec = CampaignSpec.figure4(tiny_profile, seed=3)
        outcome = run_campaign(spec)
        assert outcome.all_ok
        a_payload = outcome.result_for("figure4a").payload
        b_payload = outcome.result_for("figure4b").payload
        assert a_payload["best"] <= a_payload["average"] <= a_payload["worst"]
        assert b_payload["ga_evaluations"] > 0

"""Unit tests for the workload registry."""

import pytest

from repro.netlist.blif import write_blif
from repro.netlist.simulate import extract_function
from repro.sboxes import aes_sboxes, des_sboxes, optimal_sboxes
from repro.scenarios.registry import (
    RandomFamily,
    Workload,
    WorkloadError,
    WorkloadFamily,
    available_families,
    build_workload,
    get_family,
    register_family,
    workload_functions,
)


class TestRegistryCatalogue:
    def test_builtin_families_registered(self):
        names = available_families()
        for expected in ("PRESENT", "DES", "AES", "RANDOM", "BLIF"):
            assert expected in names

    def test_lookup_is_case_insensitive(self):
        assert get_family("aes") is get_family("AES")

    def test_unknown_family_rejected(self):
        with pytest.raises(WorkloadError):
            get_family("SERPENT")

    def test_duplicate_registration_rejected(self):
        family = get_family("AES")
        with pytest.raises(WorkloadError):
            register_family(family)
        # replace=True is the supported override path.
        register_family(family, replace=True)


class TestBuiltinFamilies:
    def test_present_matches_legacy_tables(self):
        workload = build_workload("PRESENT", 4)
        assert workload.count == 4
        assert workload.num_inputs == 4 and workload.num_outputs == 4
        assert [f.lookup_table() for f in workload.functions] == [
            f.lookup_table() for f in optimal_sboxes(4)
        ]

    def test_des_matches_legacy_tables(self):
        workload = build_workload("DES", 2)
        assert workload.num_inputs == 6 and workload.num_outputs == 4
        assert [f.lookup_table() for f in workload.functions] == [
            f.lookup_table() for f in des_sboxes(2)
        ]

    def test_aes_family(self):
        workload = build_workload("AES", 3)
        assert workload.num_inputs == 8 and workload.num_outputs == 8
        assert [f.lookup_table() for f in workload.functions] == [
            f.lookup_table() for f in aes_sboxes(3)
        ]

    def test_count_limits_enforced(self):
        with pytest.raises(WorkloadError):
            build_workload("PRESENT", 17)
        with pytest.raises(WorkloadError):
            build_workload("DES", 0)

    def test_workload_functions_helper(self):
        functions = workload_functions("AES", 2)
        assert len(functions) == 2
        assert all(f.num_inputs == 8 for f in functions)


class TestRandomFamily:
    def test_deterministic_for_seed(self):
        first = build_workload("RANDOM", 3, seed=5)
        second = build_workload("RANDOM", 3, seed=5)
        assert first.lookup_tables() == second.lookup_tables()
        different = build_workload("RANDOM", 3, seed=6)
        assert first.lookup_tables() != different.lookup_tables()

    def test_widths_and_balance(self):
        workload = build_workload("RANDOM", 2, num_inputs=5, num_outputs=3, seed=1)
        assert workload.num_inputs == 5 and workload.num_outputs == 3
        for function in workload.functions:
            for table in function.outputs:
                # Balanced outputs: exactly half the rows are ones.
                assert bin(table.bits).count("1") == 16

    def test_functions_are_distinct(self):
        workload = build_workload("RANDOM", 8, num_inputs=4, num_outputs=2, seed=3)
        tables = [tuple(t) for t in workload.lookup_tables()]
        assert len(set(tables)) == len(tables)

    def test_unknown_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("RANDOM", 2, bogus=1)

    def test_degenerate_widths_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("RANDOM", 1, num_inputs=0)

    def test_count_beyond_balanced_space_rejected(self):
        # Only C(2,1) = 2 distinct balanced 1x1 functions exist; asking for
        # three must raise instead of spinning in the dedup loop forever.
        with pytest.raises(WorkloadError):
            build_workload("RANDOM", 3, num_inputs=1, num_outputs=1)
        assert build_workload("RANDOM", 2, num_inputs=1, num_outputs=1).count == 2


class TestBlifFamily:
    def test_round_trip_through_blif(self, tmp_path, present_netlist, present):
        path = tmp_path / "present.blif"
        path.write_text(write_blif(present_netlist), encoding="utf-8")
        workload = build_workload("BLIF", 1, paths=[str(path)])
        assert workload.count == 1
        assert len(workload.reference_netlists) == 1
        assert workload.functions[0].lookup_table() == present.lookup_table()
        # The reference netlist is the parsed circuit itself.
        extracted = extract_function(workload.reference_netlists[0])
        assert extracted.lookup_table() == present.lookup_table()

    def test_comma_separated_paths(self, tmp_path, present_netlist):
        path = tmp_path / "a.blif"
        path.write_text(write_blif(present_netlist), encoding="utf-8")
        workload = build_workload("BLIF", 2, paths=f"{path},{path}")
        assert workload.count == 2

    def test_missing_paths_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("BLIF", 1)

    def test_path_count_mismatch_rejected(self, tmp_path, present_netlist):
        path = tmp_path / "a.blif"
        path.write_text(write_blif(present_netlist), encoding="utf-8")
        with pytest.raises(WorkloadError):
            build_workload("BLIF", 2, paths=[str(path)])


class TestWorkloadValidation:
    def test_mixed_widths_rejected(self, present):
        from repro.sboxes import des_sbox

        with pytest.raises(WorkloadError):
            Workload(name="bad", family="X", functions=(present, des_sbox(0)))

    def test_empty_functions_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(name="empty", family="X", functions=())

    def test_reference_netlist_count_checked(self, present, present_netlist):
        with pytest.raises(WorkloadError):
            Workload(
                name="bad",
                family="X",
                functions=(present, present),
                reference_netlists=(present_netlist,),
            )

    def test_custom_family_registration(self):
        class TinyFamily(WorkloadFamily):
            name = "TINY_TEST"
            description = "test-only"
            max_count = 1

            def build(self, count, **params):
                self.check_count(count)
                from repro.sboxes import present_sbox

                return Workload(
                    name="tiny", family=self.name, functions=(present_sbox(),)
                )

        family = register_family(TinyFamily())
        try:
            assert get_family("tiny_test") is family
            assert workload_functions("TINY_TEST", 1)[0].num_inputs == 4
        finally:
            from repro.scenarios import registry as registry_module

            registry_module._REGISTRY.pop("TINY_TEST", None)

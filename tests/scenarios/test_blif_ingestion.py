"""Tests for netlist-first (wide) BLIF workload ingestion."""

import pytest

from repro.netlist.generate import random_netlist as build_random_netlist
from repro.netlist.blif import write_blif
from repro.scenarios.registry import (
    BLIF_EXTRACT_LIMIT,
    WorkloadError,
    build_workload,
    workload_functions,
)


@pytest.fixture()
def blif_paths(tmp_path, library):
    """One narrow (6-input) and one wide (24-input) BLIF file."""
    narrow = build_random_netlist(
        1, library, num_inputs=6, num_cells=10, num_outputs=3, name="narrow6"
    )
    wide = build_random_netlist(
        2, library, num_inputs=24, num_cells=16, num_outputs=4, name="wide24"
    )
    narrow_path = tmp_path / "narrow.blif"
    wide_path = tmp_path / "wide.blif"
    narrow_path.write_text(write_blif(narrow), encoding="utf-8")
    wide_path.write_text(write_blif(wide), encoding="utf-8")
    return str(narrow_path), str(wide_path)


class TestBlifIngestion:
    def test_narrow_circuits_still_extract(self, blif_paths):
        narrow_path, _ = blif_paths
        workload = build_workload("BLIF", 1, paths=narrow_path)
        assert not workload.is_netlist_only
        assert workload.count == 1
        assert workload.functions[0].num_inputs == 6
        assert len(workload.lookup_tables()) == 1

    def test_wide_circuit_stays_netlist(self, blif_paths):
        _, wide_path = blif_paths
        workload = build_workload("BLIF", 1, paths=wide_path)
        assert workload.is_netlist_only
        assert workload.functions == ()
        assert workload.num_inputs == 24
        assert workload.count == 1
        with pytest.raises(WorkloadError, match="exponential"):
            workload.lookup_tables()

    def test_mixed_batch_goes_netlist_first(self, blif_paths):
        narrow_path, wide_path = blif_paths
        workload = build_workload(
            "BLIF", 2, paths=f"{narrow_path},{wide_path}"
        )
        assert workload.is_netlist_only
        assert len(workload.reference_netlists) == 2

    def test_extract_limit_parameter(self, blif_paths):
        _, wide_path = blif_paths
        # Raising the threshold forces extraction even for the wide circuit
        # (callers who genuinely want the exponential table can opt in).
        workload = build_workload(
            "BLIF", 1, paths=wide_path, extract_limit=24
        )
        assert not workload.is_netlist_only
        assert workload.functions[0].num_inputs == 24

    def test_default_limit_matches_constant(self, blif_paths, library, tmp_path):
        at_limit = build_random_netlist(
            4, library, num_inputs=BLIF_EXTRACT_LIMIT, num_cells=8,
            num_outputs=2, name="at_limit",
        )
        path = tmp_path / "at_limit.blif"
        path.write_text(write_blif(at_limit), encoding="utf-8")
        workload = build_workload("BLIF", 1, paths=str(path))
        assert not workload.is_netlist_only

    def test_workload_functions_raises_for_netlist_only(self, blif_paths):
        _, wide_path = blif_paths
        with pytest.raises(WorkloadError, match="netlist-only"):
            workload_functions("BLIF", 1, paths=wide_path)

    def test_empty_workload_rejected(self):
        from repro.scenarios.registry import Workload

        with pytest.raises(WorkloadError, match="neither"):
            Workload(name="empty", family="X", functions=())

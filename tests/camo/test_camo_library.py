"""Unit tests for the camouflage library and required-function matching."""

import pytest

from repro.camo import (
    CamouflageLibrary,
    camouflage_cell,
    default_camouflage_library,
)
from repro.logic import TruthTable


@pytest.fixture(scope="module")
def camo():
    return default_camouflage_library()


class TestLibraryBasics:
    def test_buffer_excluded(self, camo):
        assert "CAMO_BUF" not in camo
        assert "CAMO_NAND2" in camo

    def test_max_pins(self, camo):
        assert camo.max_pins() == 4

    def test_lookup(self, camo):
        assert camo["CAMO_INV"].num_inputs == 1
        with pytest.raises(KeyError):
            camo["CAMO_NAND9"]

    def test_duplicate_rejected(self, library):
        cell = camouflage_cell(library["INV"])
        with pytest.raises(ValueError):
            CamouflageLibrary([cell, cell])

    def test_as_cell_library_contains_both(self, camo, library):
        merged = camo.as_cell_library(include=library)
        assert "NAND2" in merged
        assert "CAMO_NAND2" in merged
        assert merged["CAMO_NAND2"].function == library["NAND2"].function


class TestMatching:
    def test_single_function_matches_same_gate(self, camo, library):
        nand = library["NAND2"].function
        match = camo.best_match([nand])
        assert match is not None
        assert match.cell.name == "CAMO_NAND2"
        assert match.cost == pytest.approx(1.0)

    def test_cofactor_set_matches_nand(self, camo):
        # {~B, 1} over one leaf: exactly what NAND2(select, B) abstracts to.
        required = [~TruthTable.variable(0, 1), TruthTable.constant(1, True)]
        match = camo.best_match(required)
        assert match is not None
        assert all(function in match.cell.plausible for function in match.realisations.values())

    def test_identity_and_complement_requires_xor_like_cell(self, camo):
        required = [TruthTable.variable(0, 1), ~TruthTable.variable(0, 1)]
        match = camo.best_match(required)
        assert match is not None
        # Only XOR/XNOR/MUX-style cells contain both x and ~x as cofactors.
        assert match.cell.name in {"CAMO_XOR2", "CAMO_XNOR2", "CAMO_MUX2"}

    def test_constants_only_requirement(self, camo):
        required = [TruthTable.constant(0, True), TruthTable.constant(0, False)]
        match = camo.best_match(required)
        assert match is not None

    def test_unmatchable_requirement(self, camo):
        # A 2-input XOR together with an AND of the same leaves is not in any
        # single cell's cofactor family.
        xor = TruthTable.variable(0, 2) ^ TruthTable.variable(1, 2)
        conj = TruthTable.variable(0, 2) & TruthTable.variable(1, 2)
        assert camo.best_match([xor, conj]) is None

    def test_match_returns_sorted_by_area(self, camo):
        required = [TruthTable.variable(0, 1)]
        matches = camo.match(required)
        areas = [match.cost for match in matches]
        assert areas == sorted(areas)
        assert len(matches) >= 2

    def test_match_arity_validation(self, camo):
        with pytest.raises(ValueError):
            camo.match([])
        with pytest.raises(ValueError):
            camo.match([TruthTable.variable(0, 1), TruthTable.variable(0, 2)])

    def test_pin_mapping_is_injective(self, camo):
        required = [TruthTable.variable(0, 2) & TruthTable.variable(1, 2)]
        match = camo.best_match(required)
        assert match is not None
        assert len(set(match.pin_of_leaf)) == len(match.pin_of_leaf)

    def test_realisations_respect_pin_mapping(self, camo):
        required = [~TruthTable.variable(0, 1)]
        match = camo.best_match(required)
        realisation = match.realisations[required[0]]
        # The realisation must not depend on any pin other than the mapped one.
        for pin in range(match.cell.num_inputs):
            if pin != match.pin_of_leaf[0]:
                assert not realisation.depends_on(pin)

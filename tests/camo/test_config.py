"""Unit tests for circuit configurations of camouflaged instances."""

import pytest

from repro.camo import CircuitConfiguration
from repro.logic import TruthTable
from repro.netlist import Netlist, standard_cell_library


@pytest.fixture
def netlist(library):
    netlist = Netlist("t", library)
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("y")
    netlist.add_instance("NAND2", ["a", "b"], output="y", name="u_nand")
    return netlist


class TestCircuitConfiguration:
    def test_set_get(self):
        config = CircuitConfiguration()
        table = TruthTable.constant(2, True)
        config.set("u1", table)
        assert config.get("u1") == table
        assert config.get("u2") is None
        assert len(config) == 1
        assert list(iter(config)) == ["u1"]

    def test_as_cell_functions_is_copy(self):
        config = CircuitConfiguration({"u1": TruthTable.constant(2, True)})
        exported = config.as_cell_functions()
        assert exported == config.functions
        assert exported is not config.functions

    def test_validate_against(self, netlist):
        good = CircuitConfiguration({"u_nand": ~TruthTable.variable(0, 2)})
        good.validate_against(netlist)
        bad_arity = CircuitConfiguration({"u_nand": TruthTable.constant(3, True)})
        with pytest.raises(ValueError):
            bad_arity.validate_against(netlist)
        missing = CircuitConfiguration({"ghost": TruthTable.constant(2, True)})
        with pytest.raises(Exception):
            missing.validate_against(netlist)

    def test_merged_with(self):
        first = CircuitConfiguration({"u1": TruthTable.constant(2, True)})
        second = CircuitConfiguration(
            {"u1": TruthTable.constant(2, False), "u2": TruthTable.constant(2, True)}
        )
        merged = first.merged_with(second)
        assert merged.get("u1").is_constant_zero()
        assert merged.get("u2").is_constant_one()
        # Originals untouched.
        assert first.get("u1").is_constant_one()

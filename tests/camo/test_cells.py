"""Unit tests for camouflaged cell types and plausible-function families."""

import pytest

from repro.camo import CamouflagedCellType, camouflage_cell, plausible_family
from repro.logic import TruthTable


class TestPlausibleFamily:
    def test_nand2_matches_figure_1b(self, library):
        """Fig. 1b of the paper: NAND2 -> {NAND, ~A, ~B, 1, 0}."""
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        family = plausible_family(library["NAND2"].function)
        assert family == frozenset(
            {~(a & b), ~a, ~b, TruthTable.constant(2, True), TruthTable.constant(2, False)}
        )

    def test_nor2_family(self, library):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        family = plausible_family(library["NOR2"].function)
        assert family == frozenset(
            {~(a | b), ~a, ~b, TruthTable.constant(2, True), TruthTable.constant(2, False)}
        )

    def test_and2_family_has_positive_projections(self, library):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        family = plausible_family(library["AND2"].function)
        assert a in family and b in family
        # Fixing one input to 0 gives constant 0; fixing both to 1 gives 1.
        assert TruthTable.constant(2, False) in family
        assert TruthTable.constant(2, True) in family
        # Doping can never invert an input of an AND gate.
        assert ~a not in family
        assert ~b not in family

    def test_xor2_family_contains_both_polarities(self, library):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        family = plausible_family(library["XOR2"].function)
        assert {a, ~a, b, ~b} <= family

    def test_mux2_family_contains_both_data_inputs(self, library):
        family = plausible_family(library["MUX2"].function)
        assert TruthTable.variable(0, 3) in family
        assert TruthTable.variable(1, 3) in family

    def test_inverter_family(self, library):
        family = plausible_family(library["INV"].function)
        assert family == frozenset(
            {TruthTable(1, 0b01), TruthTable.constant(1, True), TruthTable.constant(1, False)}
        )

    def test_family_sizes_grow_with_pin_count(self, library):
        nand2 = plausible_family(library["NAND2"].function)
        nand4 = plausible_family(library["NAND4"].function)
        assert len(nand4) > len(nand2)


class TestCamouflagedCellType:
    def test_camouflage_cell_defaults(self, library):
        camo = camouflage_cell(library["NAND2"])
        assert camo.name == "CAMO_NAND2"
        assert camo.num_inputs == 2
        assert camo.area == library["NAND2"].area
        assert camo.nominal_function == library["NAND2"].function

    def test_area_overhead(self, library):
        camo = camouflage_cell(library["NAND2"], area_overhead=0.25)
        assert camo.area == pytest.approx(1.25)
        with pytest.raises(ValueError):
            camouflage_cell(library["NAND2"], area_overhead=-0.1)

    def test_can_implement(self, library):
        camo = camouflage_cell(library["NAND2"])
        a = TruthTable.variable(0, 2)
        assert camo.can_implement(~a)
        assert not camo.can_implement(a)
        assert not camo.can_implement(TruthTable.variable(0, 3))  # wrong arity
        assert camo.can_implement_all([~a, TruthTable.constant(2, True)])
        assert not camo.can_implement_all([~a, a])

    def test_as_cell_type_is_lookalike(self, library):
        camo = camouflage_cell(library["NOR3"])
        lookalike = camo.as_cell_type()
        assert lookalike.function == library["NOR3"].function
        assert lookalike.name == "CAMO_NOR3"
        assert lookalike.area == camo.area

    def test_repr(self, library):
        assert "CAMO_NAND2" in repr(camouflage_cell(library["NAND2"]))

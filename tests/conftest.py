"""Shared fixtures for the test suite.

Expensive artefacts (synthesised netlists, obfuscation runs) are produced
once per session and reused by the integration tests, keeping the suite
fast while still exercising the real flow.
"""

from __future__ import annotations

import random

import pytest

from repro.netlist.window import WINDOWING_ENV_VAR
from repro.sat.solver import FORGET_ENV_VAR, RESTART_ENV_VAR
from repro.synth.script import SCHEDULER_ENV_VAR


@pytest.fixture(autouse=True)
def _pin_default_strategies(monkeypatch):
    """Pin every test to the byte-identical default strategies.

    The strategy env knobs (pass scheduler, windowing policy, restart
    schedule, clause forgetting) change traces, window decompositions, and
    solver-count transcripts; the suite's pinned expectations assume the
    defaults, so a developer's ambient environment must not leak in.  Tests
    that exercise the knobs set them explicitly via monkeypatch.
    ``REPRO_BACKEND`` is deliberately *not* pinned: both backends produce
    identical transcripts, and CI's native leg runs this suite under
    ``REPRO_BACKEND=native`` to prove it.
    """
    for variable in (
        SCHEDULER_ENV_VAR,
        WINDOWING_ENV_VAR,
        RESTART_ENV_VAR,
        FORGET_ENV_VAR,
    ):
        monkeypatch.delenv(variable, raising=False)

from repro.camo import default_camouflage_library
from repro.flow import obfuscate, obfuscate_with_assignment
from repro.ga import GAParameters
from repro.merge import merge_functions
from repro.netlist import standard_cell_library
from repro.sboxes import des_sboxes, optimal_sboxes, present_sbox
from repro.synth import synthesize
from repro.techmap import camouflage_map


@pytest.fixture(scope="session")
def library():
    """The default standard-cell library."""
    return standard_cell_library()


@pytest.fixture(scope="session")
def camo_library(library):
    """The default camouflage library."""
    return default_camouflage_library(library)


@pytest.fixture(scope="session")
def present():
    """The PRESENT S-box as a BoolFunction."""
    return present_sbox()


@pytest.fixture(scope="session")
def two_sboxes():
    """Two optimal 4-bit S-boxes (the smallest merged workload)."""
    return optimal_sboxes(2)


@pytest.fixture(scope="session")
def four_sboxes():
    """Four optimal 4-bit S-boxes."""
    return optimal_sboxes(4)


@pytest.fixture(scope="session")
def des_pair():
    """Two DES S-boxes."""
    return des_sboxes(2)


@pytest.fixture(scope="session")
def present_netlist(present, library):
    """A synthesised netlist of the PRESENT S-box."""
    return synthesize(present, library=library).netlist


@pytest.fixture(scope="session")
def merged_two(two_sboxes):
    """The merged design of two S-boxes under the identity assignment."""
    return merge_functions(two_sboxes)


@pytest.fixture(scope="session")
def merged_two_synthesis(merged_two, library):
    """Synthesis result of the two-S-box merged design."""
    return synthesize(merged_two.function, library=library, effort="fast")


@pytest.fixture(scope="session")
def camo_mapping_two(merged_two, merged_two_synthesis, camo_library):
    """Phase III mapping of the two-S-box merged design."""
    select_nets = [f"sel[{k}]" for k in range(merged_two.num_selects)]
    return camouflage_map(
        merged_two_synthesis.netlist, select_nets, camo_library=camo_library
    )


@pytest.fixture(scope="session")
def small_obfuscation(two_sboxes):
    """A full (tiny-budget) obfuscation run used by the integration tests."""
    return obfuscate(
        two_sboxes,
        ga_parameters=GAParameters(population_size=4, generations=2, seed=1),
        fitness_effort="fast",
        final_effort="fast",
    )


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return random.Random(12345)


@pytest.fixture
def make_random_netlist(library):
    """Factory fixture for deterministic random netlists."""
    from repro.netlist.generate import random_netlist

    def _make(seed, **kwargs):
        return random_netlist(seed, library, **kwargs)

    return _make

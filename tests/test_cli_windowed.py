"""Tests for the windowed (BLIF-in) CLI paths."""

import pytest

from repro.netlist.generate import random_netlist as build_random_netlist
from repro.cli import build_parser, main
from repro.netlist.blif import read_blif, write_blif
from repro.netlist.library import standard_cell_library


@pytest.fixture()
def wide_blif_file(tmp_path, library):
    netlist = build_random_netlist(
        23, library, num_inputs=20, num_cells=14, num_outputs=4, name="wide20"
    )
    path = tmp_path / "wide20.blif"
    path.write_text(write_blif(netlist), encoding="utf-8")
    return str(path)


class TestWindowedParser:
    def test_obfuscate_windowed_arguments(self):
        args = build_parser().parse_args(
            ["obfuscate", "--blif-in", "a.blif", "--max-window-inputs", "6",
             "--decoys", "2", "--attack"]
        )
        assert args.blif_in == "a.blif"
        assert args.max_window_inputs == 6
        assert args.decoys == 2
        assert args.attack

    def test_campaign_blif_arguments(self):
        args = build_parser().parse_args(
            ["campaign", "--blif", "a.blif", "--decoys", "0",
             "--with-decamouflage", "--with-random-camo"]
        )
        assert args.blif == "a.blif"
        assert args.decoys == 0
        assert args.with_decamouflage and args.with_random_camo


class TestWindowedCommands:
    def test_obfuscate_blif_in_round_trip(self, wide_blif_file, tmp_path, capsys):
        out_blif = tmp_path / "camo.blif"
        exit_code = main(
            ["obfuscate", "--blif-in", wide_blif_file,
             "--max-window-inputs", "6", "--decoys", "0",
             "--population", "4", "--generations", "1",
             "--attack", "--attack-queries", "64", "--presample", "16",
             "--blif", str(out_blif)]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "windowed obfuscation" in captured
        assert "oracle-guided attack" in captured
        # The stitched output parses over the camouflage-extended library.
        from repro.camo.library import default_camouflage_library

        base = standard_cell_library()
        library = default_camouflage_library(base).as_cell_library(include=base)
        stitched = read_blif(out_blif.read_text(encoding="utf-8"), library)
        assert stitched.primary_inputs  # 20 data inputs survived
        assert len(stitched.primary_inputs) == 20

    def test_campaign_blif_resumes(self, wide_blif_file, tmp_path, capsys):
        state_dir = str(tmp_path / "state")
        first = main(
            ["campaign", "--blif", wide_blif_file, "--name", "win",
             "--max-window-inputs", "6", "--decoys", "0",
             "--state-dir", state_dir, "--limit", "2"]
        )
        capsys.readouterr()
        assert first == 0
        second = main(
            ["campaign", "--blif", wide_blif_file, "--name", "win",
             "--max-window-inputs", "6", "--decoys", "0",
             "--state-dir", state_dir,
             "--bench-dir", str(tmp_path / "bench")]
        )
        captured = capsys.readouterr().out
        assert second == 0
        assert "cached (state matches)" in captured
        assert "validation" in captured
        assert (tmp_path / "bench" / "BENCH_campaign_win.json").is_file()

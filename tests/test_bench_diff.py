"""Unit tests for the benchmark-trajectory diff tool (benchmarks/bench_diff.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_diff",
    Path(__file__).resolve().parent.parent / "benchmarks" / "bench_diff.py",
)
bench_diff = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_diff)


def _write(directory: Path, name: str, payload: dict) -> Path:
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps({"name": name, **payload}), encoding="utf-8")
    return path


@pytest.fixture
def artifact_dirs(tmp_path):
    base = tmp_path / "base"
    cand = tmp_path / "cand"
    base.mkdir()
    cand.mkdir()
    return base, cand


class TestLoadArtifacts:
    def test_directory_and_single_file(self, artifact_dirs):
        base, _ = artifact_dirs
        _write(base, "alpha", {"total_seconds": 1.0})
        path = _write(base, "beta", {"total_seconds": 2.0})
        by_dir = bench_diff.load_artifacts(str(base))
        assert set(by_dir) == {"alpha", "beta"}
        by_file = bench_diff.load_artifacts(str(path))
        assert set(by_file) == {"beta"}

    def test_name_falls_back_to_stem(self, tmp_path):
        path = tmp_path / "BENCH_gamma.json"
        path.write_text(json.dumps({"total_seconds": 1.0}), encoding="utf-8")
        assert set(bench_diff.load_artifacts(str(path))) == {"gamma"}


class TestDiff:
    def test_improvement_passes(self, artifact_dirs):
        base, cand = artifact_dirs
        _write(base, "run", {"total_seconds": 10.0, "mean_seconds": 10.0})
        _write(cand, "run", {"total_seconds": 1.0, "mean_seconds": 1.0})
        assert bench_diff.main([str(base), str(cand), "--threshold", "10"]) == 0

    def test_regression_fails(self, artifact_dirs):
        base, cand = artifact_dirs
        _write(base, "run", {"total_seconds": 1.0, "mean_seconds": 1.0})
        _write(cand, "run", {"total_seconds": 2.0, "mean_seconds": 2.0})
        assert bench_diff.main([str(base), str(cand), "--threshold", "50"]) == 1

    def test_within_threshold_passes(self, artifact_dirs):
        base, cand = artifact_dirs
        _write(base, "run", {"total_seconds": 1.0})
        _write(cand, "run", {"total_seconds": 1.2})
        assert bench_diff.main([str(base), str(cand), "--threshold", "25"]) == 0

    def test_non_timing_fields_never_fail(self, artifact_dirs):
        base, cand = artifact_dirs
        _write(base, "run", {"total_seconds": 1.0, "solver": {"conflicts": 10}})
        _write(cand, "run", {"total_seconds": 1.0, "solver": {"conflicts": 99999}})
        assert bench_diff.main([str(base), str(cand), "--threshold", "5"]) == 0

    def test_one_sided_benchmarks_are_skipped(self, artifact_dirs):
        base, cand = artifact_dirs
        _write(base, "gone", {"total_seconds": 1.0})
        _write(cand, "new", {"total_seconds": 1.0})
        assert bench_diff.main([str(base), str(cand)]) == 0

    def test_missing_baseline_directory_fails(self, artifact_dirs):
        base, cand = artifact_dirs
        _write(cand, "run", {"total_seconds": 1.0})
        assert bench_diff.main([str(base), str(cand)]) == 2

    def test_nested_numeric_flattening(self):
        numbers = bench_diff._numeric_items(
            {"a": 1, "b": {"c": 2.5, "d": {"e": 3}}, "name": "x", "flag": True}
        )
        assert numbers == {"a": 1.0, "b.c": 2.5, "b.d.e": 3.0}

    def test_telemetry_counters_get_their_own_section(self):
        base = {
            "total_seconds": 1.0,
            "telemetry": {"synth": {"passes_scheduled": 82}},
        }
        cand = {
            "total_seconds": 1.1,
            "telemetry": {"synth": {"passes_scheduled": 60}},
        }
        lines, regressions = bench_diff.diff_payloads(base, cand, 25.0)
        assert any(line.strip() == "telemetry counters:" for line in lines)
        assert any("synth.passes_scheduled" in line for line in lines)
        # Telemetry counters are informational: a large swing never fails.
        assert regressions == []


class TestPlot:
    def test_plot_mode_writes_valid_svg(self, artifact_dirs):
        import xml.dom.minidom

        base, cand = artifact_dirs
        _write(base, "alpha", {"total_seconds": 2.0})
        _write(cand, "alpha", {"total_seconds": 1.0})
        _write(base, "beta", {"total_seconds": 4.0})
        _write(cand, "beta", {"total_seconds": 5.0})
        svg_path = base.parent / "traj.svg"
        assert (
            bench_diff.main(
                [str(base), str(cand), "--threshold", "100", "--plot", str(svg_path)]
            )
            == 0
        )
        document = xml.dom.minidom.parse(str(svg_path))
        svg = document.documentElement
        assert svg.tagName == "svg"
        text = svg_path.read_text(encoding="utf-8")
        # One paired bar per common benchmark, both series colors present.
        assert text.count("<path") == 4
        assert "#2a78d6" in text and "#eb6834" in text
        assert "alpha" in text and "beta" in text
        # The candidate delta is labelled at the bar tip.
        assert "(-50%)" in text and "(+25%)" in text

    def test_plot_renders_on_disjoint_sets(self, artifact_dirs):
        base, cand = artifact_dirs
        _write(base, "only_base", {"total_seconds": 1.0})
        _write(cand, "only_cand", {"total_seconds": 1.0})
        svg = bench_diff.render_plot(
            bench_diff.load_artifacts(str(base)),
            bench_diff.load_artifacts(str(cand)),
        )
        assert "no common benchmarks to plot" in svg

    def test_plot_escapes_xml_specials_in_names(self, artifact_dirs):
        import xml.dom.minidom

        base, cand = artifact_dirs
        _write(base, "a&b<c", {"total_seconds": 1.0})
        _write(cand, "a&b<c", {"total_seconds": 2.0})
        svg = bench_diff.render_plot(
            bench_diff.load_artifacts(str(base)),
            bench_diff.load_artifacts(str(cand)),
        )
        xml.dom.minidom.parseString(svg)
        assert "a&amp;b&lt;c" in svg

    def test_plot_skips_non_numeric_metric(self, artifact_dirs):
        base, cand = artifact_dirs
        _write(base, "odd", {"total_seconds": "fast"})
        _write(cand, "odd", {"total_seconds": 1.0})
        svg = bench_diff.render_plot(
            bench_diff.load_artifacts(str(base)),
            bench_diff.load_artifacts(str(cand)),
        )
        assert "no common benchmarks to plot" in svg

"""Setuptools build script.

The execution environment has setuptools but not the ``wheel`` package, so
PEP 660 editable installs (which build a wheel) are unavailable.  Keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works offline.

The optional C extension ``repro._native._core`` (compiled CDCL core and
packed lane evaluation) is declared ``optional=True``: a missing compiler
must never break the pure-Python install.  Build it in place with::

    python setup.py build_ext --inplace

which drops the ``.so`` next to ``src/repro/_native/__init__.py`` so that
``PYTHONPATH=src`` runs pick it up.
"""

from setuptools import Extension, find_packages, setup

setup(
    name="repro",
    version="0.10.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    ext_modules=[
        Extension(
            "repro._native._core",
            sources=["src/repro/_native/_core.c"],
            optional=True,
        )
    ],
)

"""Setuptools shim.

The execution environment has setuptools but not the ``wheel`` package, so
PEP 660 editable installs (which build a wheel) are unavailable.  Keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works offline.
"""

from setuptools import setup

setup()

#!/usr/bin/env python3
"""Obfuscating user-defined functions (beyond S-boxes).

The library is not tied to S-boxes: any set of same-shape multi-output
Boolean functions can be used as the viable-function set.  This example
obfuscates a small arithmetic block so that an adversary cannot tell whether
the chip computes

* ``(a + b) mod 16``   (a 4-bit adder),
* ``(a - b) mod 16``   (a 4-bit subtractor), or
* ``a XOR b``          (a bitwise XOR),

three functions an attacker with architectural knowledge might consider
viable for a datapath slice.

Run with:  python examples/custom_functions.py
"""

from repro import BoolFunction, GAParameters, obfuscate
from repro.netlist import write_verilog
from repro.synth import area_report


def build_viable_functions():
    """Three 8-input / 4-output candidate datapath functions."""

    def adder(word: int) -> int:
        a, b = word & 0xF, (word >> 4) & 0xF
        return (a + b) & 0xF

    def subtractor(word: int) -> int:
        a, b = word & 0xF, (word >> 4) & 0xF
        return (a - b) & 0xF

    def xor(word: int) -> int:
        a, b = word & 0xF, (word >> 4) & 0xF
        return a ^ b

    return [
        BoolFunction.from_callable(8, 4, adder, name="add4"),
        BoolFunction.from_callable(8, 4, subtractor, name="sub4"),
        BoolFunction.from_callable(8, 4, xor, name="xor4"),
    ]


def main() -> None:
    functions = build_viable_functions()
    print("viable functions:", ", ".join(function.name for function in functions))

    result = obfuscate(
        functions,
        ga_parameters=GAParameters(population_size=4, generations=2, seed=5),
    )
    print()
    print(result.summary())

    # The designer-side validation in `result.verification` already proved
    # that all three functions are realisable by the camouflaged netlist.
    # (The SAT-based adversary oracle of examples/attack_analysis.py also
    # works here, but on an 8-input block the unrolled query is large, so we
    # keep this example quick.)
    print()
    print(area_report(result.netlist).to_text())
    print()
    print("camouflaged Verilog (head):")
    print("\n".join(write_verilog(result.netlist).splitlines()[:10]))
    print("  ...")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Adversary analysis: why random camouflaging fails and the proposed flow works.

The attacker of the paper knows the set of viable functions and asks, for
each of them, "could the camouflaged circuit implement this function?"
(a SAT query over the plausible functions of every camouflaged cell).

This example compares the two design styles on the same pair of viable
S-boxes:

* random camouflaging of a circuit that implements only S-box 0 — the
  adversary immediately rules out S-box 1 and has learnt the true function;
* the paper's flow — both S-boxes remain plausible, so the adversary cannot
  decide which one the chip implements without physically probing the doping.

Run with:  python examples/attack_analysis.py
"""

from repro import GAParameters, obfuscate, optimal_sboxes
from repro.attacks import PlausibleFunctionOracle, random_camouflage_experiment
from repro.synth import synthesize


def main() -> None:
    sbox_a, sbox_b = optimal_sboxes(2)
    print(f"viable functions: {sbox_a.name} and {sbox_b.name}")
    print()

    # ------------------------------------------------------------------ #
    # Baseline: synthesise only S-box A and camouflage half of its gates at
    # random (keeping their nominal functions).
    # ------------------------------------------------------------------ #
    single = synthesize(sbox_a).netlist
    experiment = random_camouflage_experiment(
        single, [sbox_a, sbox_b], fraction=0.5, seed=3
    )
    print("random camouflaging of a single-function circuit "
          f"({len(experiment.circuit.camouflaged_instances)} camouflaged cells, "
          f"{experiment.circuit.area():.1f} GE):")
    for function, plausible in zip((sbox_a, sbox_b), experiment.plausible):
        verdict = "cannot be ruled out" if plausible else "RULED OUT by the adversary"
        print(f"  {function.name:<10} {verdict}")
    print()

    # ------------------------------------------------------------------ #
    # The proposed flow: merge both S-boxes, optimise the pin assignment and
    # map onto camouflaged cells.
    # ------------------------------------------------------------------ #
    result = obfuscate(
        [sbox_a, sbox_b],
        ga_parameters=GAParameters(population_size=6, generations=3, seed=1),
    )
    print("proposed flow (merged + GA + camouflage technology mapping, "
          f"{result.camouflaged_area:.1f} GE):")
    oracle = PlausibleFunctionOracle.from_mapping(result.mapping)
    views = result.assignment.apply([sbox_a, sbox_b])
    for function, view in zip((sbox_a, sbox_b), views):
        outcome = oracle.is_plausible(view)
        verdict = "cannot be ruled out" if outcome else "RULED OUT by the adversary"
        print(f"  {function.name:<10} {verdict}")
    print()
    print("designer-side validation:", result.verification.summary())


if __name__ == "__main__":
    main()

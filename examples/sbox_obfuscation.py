#!/usr/bin/env python3
"""Merged S-box obfuscation: the paper's main evaluation workload.

Obfuscates a configurable number of optimal 4-bit S-boxes (PRESENT-style) or
DES S-boxes, comparing:

* the best and average area of random pin assignments (the baseline),
* the genetic-algorithm pin assignment (Phase II),
* the camouflaged circuit after technology mapping (Phase III),

which is exactly one row of the paper's Table I, and then validates that the
final circuit can still realise every viable function.

Run with:  python examples/sbox_obfuscation.py [--family DES] [--count 4]
"""

import argparse

from repro import GAParameters
from repro.evaluation import DES_FAMILY, PRESENT_FAMILY, workload_functions
from repro.flow import format_table
from repro.evaluation.table1 import run_table1_entry
from repro.evaluation.workloads import ExperimentProfile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--family", choices=[PRESENT_FAMILY, DES_FAMILY],
                        default=PRESENT_FAMILY)
    parser.add_argument("--count", type=int, default=4,
                        help="number of viable S-boxes to merge")
    parser.add_argument("--population", type=int, default=8)
    parser.add_argument("--generations", type=int, default=5)
    args = parser.parse_args()

    profile = ExperimentProfile(
        name="example",
        present_counts=(args.count,),
        des_counts=(args.count,),
        ga_population=args.population,
        ga_generations=args.generations,
        random_samples=0,
    )

    print(f"Obfuscating {args.count} {args.family} S-boxes "
          f"(GA: population {args.population}, {args.generations} generations)")
    entry = run_table1_entry(args.family, args.count, profile=profile)

    print()
    print(format_table([entry.row], title="Measured areas (GE)"))
    print()
    print(f"GA synthesis runs        : {entry.ga_evaluations}")
    print(f"random synthesis runs    : {entry.random_result.evaluations}")
    print(f"camouflaged cells        : {entry.obfuscation.mapping.num_camouflaged_cells()}")
    print(f"validation               : {entry.obfuscation.verification.summary()}")
    print()
    print("Chosen pin assignment (input permutations per viable function):")
    for index, permutation in enumerate(entry.obfuscation.assignment.input_perms):
        print(f"  f{index}: {list(permutation)}")


if __name__ == "__main__":
    main()

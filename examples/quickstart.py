#!/usr/bin/env python3
"""Quickstart: obfuscate two PRESENT-style S-boxes end to end.

This example walks through the paper's three phases on the smallest workload
and prints what happens at every step:

1. Phase I   - merge the viable functions into one circuit with select inputs.
2. Phase II  - let the genetic algorithm pick the pin assignment that
               maximises logic sharing (fitness = synthesised area in GE).
3. Phase III - cover the synthesised netlist with camouflaged cells so the
               select inputs disappear while both S-boxes stay plausible.

Run with:  python examples/quickstart.py
"""

from repro import GAParameters, obfuscate, optimal_sboxes
from repro.camo import plausible_family
from repro.netlist import standard_cell_library, write_verilog
from repro.synth import area_report


def main() -> None:
    # ------------------------------------------------------------------ #
    # The camouflaged cell of Fig. 1b: a NAND2 look-alike can plausibly be
    # NAND2, ~A, ~B, constant 0 or constant 1.
    # ------------------------------------------------------------------ #
    library = standard_cell_library()
    nand2 = library["NAND2"]
    family = plausible_family(nand2.function)
    print("Fig. 1b - plausible functions of a camouflaged NAND2:")
    for function in sorted(family, key=lambda table: table.bits):
        print(f"  output column (minterm 0 first): {function.to_binary_string()}")
    print()

    # ------------------------------------------------------------------ #
    # The viable functions: two optimal 4-bit S-boxes (the first one is the
    # real PRESENT S-box).
    # ------------------------------------------------------------------ #
    functions = optimal_sboxes(2)
    for function in functions:
        print(f"viable function {function.name}: {function.lookup_table()}")
    print()

    # ------------------------------------------------------------------ #
    # Run the full flow.  The GA budget here is tiny so the example finishes
    # in a few seconds; increase population/generations for better areas.
    # ------------------------------------------------------------------ #
    result = obfuscate(
        functions,
        ga_parameters=GAParameters(population_size=6, generations=4, seed=1),
    )
    print(result.summary())
    print()
    print(area_report(result.netlist).to_text())
    print()

    # The camouflaged netlist can be exported as structural Verilog; every
    # instance is a look-alike cell, which is exactly what an adversary
    # imaging the die would recover.
    verilog = write_verilog(result.netlist)
    print("first lines of the camouflaged Verilog netlist:")
    print("\n".join(verilog.splitlines()[:12]))
    print("  ...")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Pin-assignment study: the Fig. 3 intuition, measured.

Fig. 3 of the paper shows that how the inputs of two viable functions are
mapped onto the shared pins of the merged circuit decides how much logic the
synthesiser can share.  This example reproduces that observation:

* it builds the paper's two example functions f0 = (AB + CD)E and
  f1 = (FG + HI) + J,
* synthesises the merged circuit under the "good" assignment of Fig. 3a, the
  "bad" assignment of Fig. 3b and a batch of random assignments,
* and prints the resulting areas, showing the spread a designer can exploit.

It then repeats the measurement on a pair of real S-boxes.

Run with:  python examples/pin_assignment_study.py
"""

import random

from repro import BoolFunction, PinAssignment, merge_functions, optimal_sboxes
from repro.logic import expression_to_table, parse_expression
from repro.synth import synthesize


def paper_example_functions():
    """The f0/f1 pair of Fig. 3, as 5-input single-output functions."""
    variables = ["a", "b", "c", "d", "e"]
    f0 = expression_to_table(parse_expression("(a & b | c & d) & e"), variables)
    f1 = expression_to_table(parse_expression("(a & b | c & d) | e"), variables)
    return (
        BoolFunction([f0], name="f0_(AB+CD)E"),
        BoolFunction([f1], name="f1_(FG+HI)+J"),
    )


def synthesised_area(functions, assignment) -> float:
    design = merge_functions(functions, assignment)
    return synthesize(design.function).area


def main() -> None:
    f0, f1 = paper_example_functions()
    print("Fig. 3 example: f0 = (AB+CD)E, f1 = (FG+HI)+J merged with one select")

    # Fig. 3a: corresponding inputs aligned (A<->F, B<->G, C<->H, D<->I, E<->J).
    good = PinAssignment.identity(2, 5, 1)
    # Fig. 3b: an assignment that scrambles the pairing inside the AND gates.
    bad = PinAssignment(
        input_perms=(tuple(range(5)), (2, 0, 1, 3, 4)),
        output_perms=((0,), (0,)),
    )
    area_good = synthesised_area([f0, f1], good)
    area_bad = synthesised_area([f0, f1], bad)
    print(f"  aligned assignment   (Fig. 3a): {area_good:6.1f} GE")
    print(f"  scrambled assignment (Fig. 3b): {area_bad:6.1f} GE")

    rng = random.Random(0)
    random_areas = [
        synthesised_area([f0, f1], PinAssignment.random(2, 5, 1, rng)) for _ in range(10)
    ]
    print(f"  10 random assignments: best {min(random_areas):.1f} GE, "
          f"avg {sum(random_areas) / len(random_areas):.1f} GE, "
          f"worst {max(random_areas):.1f} GE")
    print()

    # The same study on two real S-boxes.
    sboxes = optimal_sboxes(2)
    print(f"Two optimal 4-bit S-boxes ({sboxes[0].name}, {sboxes[1].name}):")
    identity_area = synthesised_area(sboxes, PinAssignment.identity(2, 4, 4))
    print(f"  identity assignment : {identity_area:6.1f} GE")
    rng = random.Random(1)
    areas = []
    best = None
    for _ in range(15):
        assignment = PinAssignment.random(2, 4, 4, rng)
        area = synthesised_area(sboxes, assignment)
        areas.append(area)
        if best is None or area < best[0]:
            best = (area, assignment)
    print(f"  15 random assignments: best {min(areas):.1f} GE, "
          f"avg {sum(areas) / len(areas):.1f} GE, worst {max(areas):.1f} GE")
    print()
    print("best random assignment found (input permutations):")
    for index, permutation in enumerate(best[1].input_perms):
        print(f"  f{index}: {list(permutation)}")
    print()
    print("The spread between the best and worst assignment is the area the")
    print("genetic algorithm of Phase II goes after.")


if __name__ == "__main__":
    main()

"""Campaign runner and sharded-fuzzing benchmarks.

Two measurements:

* ``test_campaign_aes_row`` runs a one-row AES-style campaign (8-bit S-box
  workload, tiny GA budget) through the campaign runner — the end-to-end
  cost of the scenario subsystem on the wide workload the registry added.
* ``test_sharded_fuzz_scaling`` times one wide fuzz comparison (a 16-input
  random netlist against a reference function over 2^16 patterns — both the
  packed netlist lanes and the word-by-word reference side are sharded)
  single-core and fanned over the worker pool (``REPRO_JOBS`` or 4), and
  asserts the verdicts are identical.  On a multi-core host the sharded
  pass beats the single-core pass (that assertion only arms when worker
  processes are actually available); the measured ratio is recorded in the
  ``BENCH_*.json`` payload either way — a single-CPU runner degrades to the
  serial path and reports a ratio near 1.
"""

from __future__ import annotations

import dataclasses
import random
import time

from repro.evaluation.workloads import get_profile
from repro.netlist import Netlist, standard_cell_library
from repro.netlist.simulate import extract_function
from repro.parallel import available_cpus
from repro.scenarios import CampaignSpec, run_campaign
from repro.sim.prefilter import fuzz_netlist_vs_function

#: GA budget of the campaign row: deliberately tiny — the benchmark measures
#: the runner and the 8-bit workload, not GA convergence.
CAMPAIGN_POPULATION = 4
CAMPAIGN_GENERATIONS = 1


def _campaign_profile():
    return dataclasses.replace(
        get_profile("quick"),
        ga_population=CAMPAIGN_POPULATION,
        ga_generations=CAMPAIGN_GENERATIONS,
    )


def _run_aes_campaign(jobs):
    spec = CampaignSpec.table1(
        _campaign_profile(), [("AES", 2)], seed=1, name="bench_aes"
    )
    return run_campaign(spec, jobs=jobs)


def test_campaign_aes_row(benchmark, record, bench_json, jobs):
    outcome = benchmark.pedantic(_run_aes_campaign, args=(jobs,), rounds=1, iterations=1)
    assert outcome.all_ok
    entry = outcome.results[0].value
    assert entry.verification_ok
    row = entry.row.as_dict()
    benchmark.extra_info.update(row)
    record(
        "campaign_aes_row",
        "campaign AES x2 row: "
        + ", ".join(f"{key}={value}" for key, value in row.items()),
    )
    bench_json(
        "campaign_aes_row",
        {
            "row": row,
            "campaign": outcome.bench_payload()["campaign"],
            "telemetry": outcome.telemetry().to_dict()["scopes"],
        },
    )


def _wide_random_netlist(seed=5, num_inputs=16, num_cells=120):
    rng = random.Random(seed)
    library = standard_cell_library()
    netlist = Netlist("wide", library)
    nets = [netlist.add_input(f"i{k}") for k in range(num_inputs)]
    cells = [cell for cell in library.cells() if cell.num_inputs >= 1]
    for index in range(num_cells):
        cell = rng.choice(cells)
        netlist.add_instance(
            cell.name,
            [rng.choice(nets) for _ in range(cell.num_inputs)],
            output=f"w{index}",
        )
        nets.append(f"w{index}")
    for k in range(4):
        netlist.add_output(nets[-(k + 1)])
    return netlist


FUZZ_PATTERNS = 1 << 16


def _worker_pool_usable() -> bool:
    """True when real worker processes can run on this host.

    `repro.parallel` deliberately degrades to serial when process pools are
    unavailable (restricted sandboxes, broken multiprocessing); the speedup
    assertion must only arm when parallelism actually engaged.
    """
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=2) as executor:
            return list(executor.map(int, ["1", "2"])) == [1, 2]
    except Exception:
        return False


def test_sharded_fuzz_scaling(benchmark, record, bench_json, jobs):
    shard_jobs = max(jobs, 4)
    netlist = _wide_random_netlist()
    # The truth function itself: the fuzz pass scans every pattern with no
    # early exit, which is exactly the fuzzing-campaign workload shape.
    truth = extract_function(netlist)

    start = time.perf_counter()
    serial = fuzz_netlist_vs_function(netlist, truth, patterns=FUZZ_PATTERNS, jobs=1)
    serial_seconds = time.perf_counter() - start

    def _sharded():
        return fuzz_netlist_vs_function(
            netlist, truth, patterns=FUZZ_PATTERNS, jobs=shard_jobs
        )

    sharded = benchmark.pedantic(_sharded, rounds=1, iterations=1)
    sharded_seconds = benchmark.stats.stats.total

    assert (sharded.counterexample, sharded.complete, sharded.patterns) == (
        serial.counterexample, serial.complete, serial.patterns,
    ), "sharded verdict diverged from single-core"
    ratio = serial_seconds / sharded_seconds if sharded_seconds else 0.0
    if available_cpus() >= 2 and _worker_pool_usable():
        assert ratio > 1.0, (
            f"sharded fuzzing must beat single-core on a multi-core host "
            f"(serial {serial_seconds:.3f}s vs jobs={shard_jobs} {sharded_seconds:.3f}s)"
        )
    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["speedup"] = ratio
    record(
        "sharded_fuzz_scaling",
        f"fuzz over {FUZZ_PATTERNS} patterns: single-core {serial_seconds:.3f}s, "
        f"jobs={shard_jobs} {sharded_seconds:.3f}s (x{ratio:.2f}); "
        f"verdicts identical (cpus={available_cpus()})",
    )
    bench_json(
        "sharded_fuzz_scaling",
        {
            "patterns": FUZZ_PATTERNS,
            "shard_jobs": shard_jobs,
            "cpus": available_cpus(),
            "serial_seconds": serial_seconds,
            "speedup": ratio,
        },
    )

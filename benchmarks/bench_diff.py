#!/usr/bin/env python
"""Diff two ``BENCH_*.json`` benchmark artifacts (or directories of them).

The benchmarks emit machine-readable ``benchmarks/results/BENCH_<name>.json``
files (timings, cache statistics, jobs — see ``benchmarks/conftest.py``).
This tool compares a *baseline* artifact set against a *candidate* set and
exits non-zero when any timing metric regressed by more than the threshold,
which makes performance trajectories enforceable in CI::

    python benchmarks/bench_diff.py benchmarks/baselines benchmarks/results \
        --threshold 50

Directories are matched by file name; single files are compared directly.
Non-timing numeric fields (cache counters, solver work, query counts) are
reported informationally but never fail the diff — they legitimately change
when features land.  Benchmarks present on only one side are reported and
skipped.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

#: Timing fields whose increase beyond the threshold is a regression.
TIMING_KEYS = ("total_seconds", "mean_seconds")

#: Fields never worth diffing numerically.
IGNORED_KEYS = ("name", "profile", "rounds")


def load_artifacts(path: str) -> Dict[str, dict]:
    """Load one artifact file or every ``BENCH_*.json`` in a directory.

    Returns a mapping from benchmark name (the ``name`` field, falling back
    to the file stem) to the decoded payload.  Unreadable files raise — a
    missing baseline should fail loudly, not silently pass CI.
    """
    paths: List[str] = []
    if os.path.isdir(path):
        paths = sorted(
            os.path.join(path, entry)
            for entry in os.listdir(path)
            if entry.startswith("BENCH_") and entry.endswith(".json")
        )
    else:
        paths = [path]
    artifacts: Dict[str, dict] = {}
    for file_path in paths:
        with open(file_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        stem = os.path.splitext(os.path.basename(file_path))[0]
        name = str(payload.get("name", stem.replace("BENCH_", "", 1)))
        artifacts[name] = payload
    return artifacts


def _numeric_items(payload: dict, prefix: str = "") -> Dict[str, float]:
    """Flatten the numeric fields of a payload (nested dicts dot-joined)."""
    numbers: Dict[str, float] = {}
    for key, value in payload.items():
        if key in IGNORED_KEYS:
            continue
        label = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            numbers[label] = float(value)
        elif isinstance(value, dict):
            numbers.update(_numeric_items(value, prefix=f"{label}."))
    return numbers


def diff_payloads(
    baseline: dict, candidate: dict, threshold: float
) -> Tuple[List[str], List[str]]:
    """Compare one benchmark payload pair.

    Returns ``(report_lines, regressions)`` where ``regressions`` lists the
    timing metrics that worsened by more than ``threshold`` percent.
    """
    lines: List[str] = []
    regressions: List[str] = []
    base_numbers = _numeric_items(baseline)
    cand_numbers = _numeric_items(candidate)
    for key in sorted(set(base_numbers) | set(cand_numbers)):
        before = base_numbers.get(key)
        after = cand_numbers.get(key)
        if before is None or after is None:
            lines.append(f"    {key:<40} {_fmt(before):>12} -> {_fmt(after):>12}")
            continue
        delta = after - before
        pct: Optional[float] = (delta / before * 100.0) if before else None
        pct_text = f"{pct:+7.1f}%" if pct is not None else "    new"
        marker = ""
        if key in TIMING_KEYS and pct is not None and pct > threshold:
            marker = "  REGRESSION"
            regressions.append(f"{key} {pct:+.1f}% (> {threshold:.0f}%)")
        lines.append(
            f"    {key:<40} {_fmt(before):>12} -> {_fmt(after):>12} {pct_text}{marker}"
        )
    return lines, regressions


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if abs(value) >= 1000 or value == int(value):
        return f"{value:.0f}"
    return f"{value:.4f}"


def diff_artifacts(
    baseline: Dict[str, dict], candidate: Dict[str, dict], threshold: float
) -> Tuple[str, List[str]]:
    """Diff two artifact sets; returns the report text and all regressions."""
    lines: List[str] = []
    regressions: List[str] = []
    names = sorted(set(baseline) | set(candidate))
    for name in names:
        if name not in baseline:
            lines.append(f"  {name}: only in candidate (no baseline) — skipped")
            continue
        if name not in candidate:
            lines.append(f"  {name}: only in baseline (not rerun) — skipped")
            continue
        lines.append(f"  {name}:")
        body, found = diff_payloads(baseline[name], candidate[name], threshold)
        lines.extend(body)
        regressions.extend(f"{name}: {entry}" for entry in found)
    return "\n".join(lines), regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json artifacts; nonzero exit on timing regression"
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json file or directory")
    parser.add_argument("candidate", help="candidate BENCH_*.json file or directory")
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="allowed timing growth in percent before the diff fails (default 25)",
    )
    args = parser.parse_args(argv)

    baseline = load_artifacts(args.baseline)
    candidate = load_artifacts(args.candidate)
    if not baseline:
        print(f"no BENCH_*.json artifacts found in baseline {args.baseline!r}")
        return 2
    report, regressions = diff_artifacts(baseline, candidate, args.threshold)
    print(f"benchmark diff (threshold {args.threshold:.0f}% on {', '.join(TIMING_KEYS)}):")
    print(report)
    if regressions:
        print()
        print("regressions:")
        for entry in regressions:
            print(f"  {entry}")
        return 1
    print()
    print("no timing regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())

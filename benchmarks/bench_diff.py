#!/usr/bin/env python
"""Diff two ``BENCH_*.json`` benchmark artifacts (or directories of them).

The benchmarks emit machine-readable ``benchmarks/results/BENCH_<name>.json``
files (timings, cache statistics, jobs — see ``benchmarks/conftest.py``).
This tool compares a *baseline* artifact set against a *candidate* set and
exits non-zero when any timing metric regressed by more than the threshold,
which makes performance trajectories enforceable in CI::

    python benchmarks/bench_diff.py benchmarks/baselines benchmarks/results \
        --threshold 50

Directories are matched by file name; single files are compared directly.
Non-timing numeric fields (cache counters, solver work, query counts) are
reported informationally but never fail the diff — they legitimately change
when features land.  Benchmarks present on only one side are reported and
skipped.

``--plot trajectory.svg`` additionally renders the baseline-vs-candidate
timing comparison as a standalone SVG (paired horizontal bars per benchmark,
no external dependencies) that CI uploads as an artifact, so the performance
trajectory is visible at a glance without reading the numeric report.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from xml.sax.saxutils import escape as _xml_escape
from typing import Dict, List, Optional, Tuple

#: Timing fields whose increase beyond the threshold is a regression.
TIMING_KEYS = ("total_seconds", "mean_seconds")

#: Fields never worth diffing numerically.
IGNORED_KEYS = ("name", "profile", "rounds")


def load_artifacts(path: str) -> Dict[str, dict]:
    """Load one artifact file or every ``BENCH_*.json`` in a directory.

    Returns a mapping from benchmark name (the ``name`` field, falling back
    to the file stem) to the decoded payload.  Unreadable files raise — a
    missing baseline should fail loudly, not silently pass CI.
    """
    paths: List[str] = []
    if os.path.isdir(path):
        paths = sorted(
            os.path.join(path, entry)
            for entry in os.listdir(path)
            if entry.startswith("BENCH_") and entry.endswith(".json")
        )
    else:
        paths = [path]
    artifacts: Dict[str, dict] = {}
    for file_path in paths:
        with open(file_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        stem = os.path.splitext(os.path.basename(file_path))[0]
        name = str(payload.get("name", stem.replace("BENCH_", "", 1)))
        artifacts[name] = payload
    return artifacts


def _numeric_items(payload: dict, prefix: str = "") -> Dict[str, float]:
    """Flatten the numeric fields of a payload (nested dicts dot-joined)."""
    numbers: Dict[str, float] = {}
    for key, value in payload.items():
        if key in IGNORED_KEYS:
            continue
        label = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            numbers[label] = float(value)
        elif isinstance(value, dict):
            numbers.update(_numeric_items(value, prefix=f"{label}."))
    return numbers


def diff_payloads(
    baseline: dict, candidate: dict, threshold: float
) -> Tuple[List[str], List[str]]:
    """Compare one benchmark payload pair.

    Returns ``(report_lines, regressions)`` where ``regressions`` lists the
    timing metrics that worsened by more than ``threshold`` percent.
    """
    lines: List[str] = []
    regressions: List[str] = []
    base_numbers = _numeric_items(baseline)
    cand_numbers = _numeric_items(candidate)
    all_keys = sorted(set(base_numbers) | set(cand_numbers))
    # Telemetry counters (the unified RunTelemetry scopes every layer now
    # emits) get their own section: they diff the *work done* — solver
    # conflicts, synthesis passes, attack queries — next to the timings,
    # but never fail the diff on their own.
    plain_keys = [key for key in all_keys if not key.startswith("telemetry.")]
    telemetry_keys = [key for key in all_keys if key.startswith("telemetry.")]

    def _diff_key(key: str, indent: str, label: str) -> None:
        before = base_numbers.get(key)
        after = cand_numbers.get(key)
        if before is None or after is None:
            lines.append(f"{indent}{label:<40} {_fmt(before):>12} -> {_fmt(after):>12}")
            return
        delta = after - before
        pct: Optional[float] = (delta / before * 100.0) if before else None
        pct_text = f"{pct:+7.1f}%" if pct is not None else "    new"
        marker = ""
        if key in TIMING_KEYS and pct is not None and pct > threshold:
            marker = "  REGRESSION"
            regressions.append(f"{key} {pct:+.1f}% (> {threshold:.0f}%)")
        lines.append(
            f"{indent}{label:<40} {_fmt(before):>12} -> {_fmt(after):>12} {pct_text}{marker}"
        )

    for key in plain_keys:
        _diff_key(key, "    ", key)
    if telemetry_keys:
        lines.append("    telemetry counters:")
        for key in telemetry_keys:
            _diff_key(key, "      ", key[len("telemetry."):])
    return lines, regressions


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if abs(value) >= 1000 or value == int(value):
        return f"{value:.0f}"
    return f"{value:.4f}"


def diff_artifacts(
    baseline: Dict[str, dict], candidate: Dict[str, dict], threshold: float
) -> Tuple[str, List[str]]:
    """Diff two artifact sets; returns the report text and all regressions."""
    lines: List[str] = []
    regressions: List[str] = []
    names = sorted(set(baseline) | set(candidate))
    for name in names:
        if name not in baseline:
            lines.append(f"  {name}: only in candidate (no baseline) — skipped")
            continue
        if name not in candidate:
            lines.append(f"  {name}: only in baseline (not rerun) — skipped")
            continue
        lines.append(f"  {name}:")
        body, found = diff_payloads(baseline[name], candidate[name], threshold)
        lines.extend(body)
        regressions.extend(f"{name}: {entry}" for entry in found)
    return "\n".join(lines), regressions


# ------------------------------------------------------------------ #
# --plot: the timing trajectory as a standalone SVG artifact
# ------------------------------------------------------------------ #
# Visual spec (light mode): paired horizontal bars per benchmark, baseline
# in blue (#2a78d6) and candidate in orange (#eb6834) — a colorblind-safe,
# contrast-checked pair — on surface #fcfcfb with recessive hairline grid,
# values labelled at every bar tip in ink (never in the series color).

_PLOT = {
    "surface": "#fcfcfb",
    "text_primary": "#0b0b0b",
    "text_secondary": "#52514e",
    "grid": "#e9e8e5",
    "baseline": "#2a78d6",
    "candidate": "#eb6834",
    "font": "-apple-system, 'Segoe UI', 'Helvetica Neue', Arial, sans-serif",
}


def _nice_step(span: float) -> float:
    """A clean tick step (1/2/5 x 10^k) giving ~4 intervals over ``span``."""
    if span <= 0:
        return 1.0
    raw = span / 4.0
    magnitude = 10 ** math.floor(math.log10(raw))
    for factor in (1.0, 2.0, 5.0, 10.0):
        if raw <= factor * magnitude:
            return factor * magnitude
    return 10.0 * magnitude


def _bar_path(x: float, y: float, width: float, height: float, radius: float) -> str:
    """A horizontal bar: square at the baseline (left), rounded data end."""
    radius = min(radius, width, height / 2)
    return (
        f"M {x:.1f} {y:.1f} "
        f"h {width - radius:.1f} "
        f"a {radius:.1f} {radius:.1f} 0 0 1 {radius:.1f} {radius:.1f} "
        f"v {height - 2 * radius:.1f} "
        f"a {radius:.1f} {radius:.1f} 0 0 1 {-radius:.1f} {radius:.1f} "
        f"h {radius - width:.1f} Z"
    )


def render_plot(
    baseline: Dict[str, dict],
    candidate: Dict[str, dict],
    metric: str = "total_seconds",
) -> str:
    """Render the baseline-vs-candidate timing comparison as SVG text.

    One row per benchmark present on both sides (sorted by name), a paired
    bar for the baseline and candidate values of ``metric``, with the
    candidate's relative change labelled at the bar tip.
    """
    rows: List[Tuple[str, float, float]] = []
    for name in sorted(set(baseline) & set(candidate)):
        before = baseline[name].get(metric)
        after = candidate[name].get(metric)
        if isinstance(before, (int, float)) and isinstance(after, (int, float)):
            rows.append((name, float(before), float(after)))

    colors = _PLOT
    # Unit suffix for tick/tip labels: only timing metrics are seconds.
    unit = "s" if metric.endswith("seconds") else ""
    bar_height, pair_gap, group_gap = 14, 2, 18
    group_height = 2 * bar_height + pair_gap
    label_gutter = 16 + max([90] + [len(name) * 7 for name, _, _ in rows])
    plot_width = 460
    margin_top, margin_bottom, margin_right = 64, 34, 96
    height = margin_top + margin_bottom + max(
        1, len(rows)
    ) * (group_height + group_gap)
    width = label_gutter + plot_width + margin_right

    max_value = max([value for _, b, c in rows for value in (b, c)] or [1.0])
    step = _nice_step(max_value)
    axis_max = step * math.ceil(max_value / step) or 1.0

    def x_of(value: float) -> float:
        return label_gutter + plot_width * (value / axis_max)

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="Benchmark timing: baseline vs candidate">'
    )
    parts.append(
        f'<rect width="{width}" height="{height}" fill="{colors["surface"]}"/>'
    )
    parts.append(
        f'<text x="16" y="26" font-family="{colors["font"]}" font-size="14" '
        f'font-weight="600" fill="{colors["text_primary"]}">'
        f"Benchmark timing trajectory ({_xml_escape(metric.replace('_', ' '))})</text>"
    )
    # Legend: two series, swatch + ink label.
    for index, (label, color) in enumerate(
        (("Baseline", colors["baseline"]), ("Candidate", colors["candidate"]))
    ):
        x = 16 + index * 92
        parts.append(
            f'<rect x="{x}" y="38" width="10" height="10" rx="2" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{x + 15}" y="47" font-family="{colors["font"]}" '
            f'font-size="11" fill="{colors["text_secondary"]}">{label}</text>'
        )

    # Recessive grid + axis ticks (clean numbers).
    tick = 0.0
    while tick <= axis_max + 1e-9:
        x = x_of(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{margin_top - 6}" x2="{x:.1f}" '
            f'y2="{height - margin_bottom}" stroke="{colors["grid"]}" stroke-width="1"/>'
        )
        label = f"{tick:g}{unit}"
        parts.append(
            f'<text x="{x:.1f}" y="{height - margin_bottom + 16}" '
            f'font-family="{colors["font"]}" font-size="10" text-anchor="middle" '
            f'fill="{colors["text_secondary"]}">{label}</text>'
        )
        tick += step

    y = float(margin_top)
    for name, before, after in rows:
        center = y + group_height / 2 + 4
        parts.append(
            f'<text x="{label_gutter - 10}" y="{center:.1f}" text-anchor="end" '
            f'font-family="{colors["font"]}" font-size="11" '
            f'fill="{colors["text_primary"]}">{_xml_escape(name)}</text>'
        )
        for offset, (value, color) in enumerate(
            ((before, colors["baseline"]), (after, colors["candidate"]))
        ):
            bar_y = y + offset * (bar_height + pair_gap)
            bar_width = max(1.0, plot_width * (value / axis_max))
            title = f"{name} {'candidate' if offset else 'baseline'}: {value:.3f}{unit}"
            parts.append(
                f'<path d="{_bar_path(label_gutter, bar_y, bar_width, bar_height, 4)}" '
                f'fill="{color}"><title>{_xml_escape(title)}</title></path>'
            )
            tip = f"{value:.2f}{unit}"
            if offset and before > 0:
                tip += f" ({(after - before) / before * 100.0:+.0f}%)"
            parts.append(
                f'<text x="{label_gutter + bar_width + 6:.1f}" '
                f'y="{bar_y + bar_height - 3:.1f}" font-family="{colors["font"]}" '
                f'font-size="10" fill="{colors["text_secondary"]}">{tip}</text>'
            )
        y += group_height + group_gap

    if not rows:
        parts.append(
            f'<text x="{label_gutter}" y="{margin_top + 20}" '
            f'font-family="{colors["font"]}" font-size="12" '
            f'fill="{colors["text_secondary"]}">no common benchmarks to plot</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def write_plot(
    baseline: Dict[str, dict],
    candidate: Dict[str, dict],
    path: str,
    metric: str = "total_seconds",
) -> None:
    """Render and write the trajectory SVG."""
    svg = render_plot(baseline, candidate, metric=metric)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json artifacts; nonzero exit on timing regression"
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json file or directory")
    parser.add_argument("candidate", help="candidate BENCH_*.json file or directory")
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="allowed timing growth in percent before the diff fails (default 25)",
    )
    parser.add_argument(
        "--plot",
        type=str,
        default="",
        metavar="SVG_PATH",
        help="render the baseline-vs-candidate timing comparison to this SVG file",
    )
    parser.add_argument(
        "--plot-metric",
        type=str,
        default="total_seconds",
        help="timing field plotted by --plot (default total_seconds)",
    )
    args = parser.parse_args(argv)

    baseline = load_artifacts(args.baseline)
    candidate = load_artifacts(args.candidate)
    if not baseline:
        print(f"no BENCH_*.json artifacts found in baseline {args.baseline!r}")
        return 2
    report, regressions = diff_artifacts(baseline, candidate, args.threshold)
    print(f"benchmark diff (threshold {args.threshold:.0f}% on {', '.join(TIMING_KEYS)}):")
    print(report)
    if args.plot:
        write_plot(baseline, candidate, args.plot, metric=args.plot_metric)
        print()
        print(f"wrote {args.plot}")
    if regressions:
        print()
        print("regressions:")
        for entry in regressions:
            print(f"  {entry}")
        return 1
    print()
    print("no timing regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())

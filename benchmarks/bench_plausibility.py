"""Plausibility-heavy paths: the designer-side validation sweep.

``verify_viable_functions`` runs inside every ``obfuscate`` call (the
paper's ModelSim role), so its cost scales every Table I / Figure 4 sweep.
Three variants are measured on one four-S-box mapping:

* the packed select-space sweep (default) — all configurations in one
  word-parallel pass;
* the SAT-based variant (miter per configuration);
* the SAT-based variant with the fuzz-before-SAT pre-filter, where packed
  exhaustive simulation decides each configuration before any CNF is built.
"""

from __future__ import annotations

import pytest

from repro.attacks.plausibility import verify_viable_functions
from repro.flow import obfuscate_with_assignment
from repro.sboxes import optimal_sboxes


@pytest.fixture(scope="module")
def obfuscated_quad():
    functions = optimal_sboxes(4)
    result = obfuscate_with_assignment(functions, effort="fast", verify=False)
    return result


def test_plausibility_packed_sweep(benchmark, bench_json, obfuscated_quad):
    result = obfuscated_quad

    def run_sweep():
        return verify_viable_functions(result.mapping, result.merged_design)

    report = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    assert report.all_realisable
    bench_json("plausibility_packed_sweep", {"total": report.total})


def test_plausibility_sat(benchmark, bench_json, obfuscated_quad):
    result = obfuscated_quad

    def run_sat():
        return verify_viable_functions(
            result.mapping, result.merged_design, use_sat=True, prefilter=False
        )

    report = benchmark.pedantic(run_sat, rounds=1, iterations=1)
    assert report.all_realisable
    bench_json("plausibility_sat", {"total": report.total})


def test_plausibility_sat_with_fuzz(benchmark, bench_json, obfuscated_quad):
    result = obfuscated_quad

    def run_fuzzed():
        return verify_viable_functions(
            result.mapping, result.merged_design, use_sat=True, prefilter=True
        )

    report = benchmark.pedantic(run_fuzzed, rounds=1, iterations=1)
    assert report.all_realisable
    bench_json("plausibility_sat_fuzz", {"total": report.total})

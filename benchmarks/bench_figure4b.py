"""Figure 4b: genetic-algorithm convergence vs. the random baseline.

The benchmark runs the Phase II GA on the merged 8-S-box circuit and an
equal budget of random pin assignments, then records the per-generation
best-so-far series together with the random average/best reference lines.
The paper's claim — the GA curve drops below the best random assignment —
is asserted (with a small tolerance for the scaled-down quick profile).
"""

from __future__ import annotations

import pytest

from repro.evaluation import run_figure4b


def test_figure4b_ga_vs_random(benchmark, profile, record, bench_json):
    data = benchmark.pedantic(
        run_figure4b, kwargs={"profile": profile, "seed": 11}, rounds=1, iterations=1
    )

    # Series shape: one entry per generation, monotone best-so-far.
    assert len(data.generations) == profile.ga_generations + 1
    assert all(b <= a for a, b in zip(data.best_so_far, data.best_so_far[1:]))
    assert data.random_best <= data.random_average
    # The paper's headline observation for Fig. 4b.
    assert data.best_so_far[-1] <= data.random_best * 1.05, (
        "GA failed to reach the best random assignment within the budget"
    )

    benchmark.extra_info["ga_final_best"] = data.best_so_far[-1]
    benchmark.extra_info["random_best"] = data.random_best
    benchmark.extra_info["random_average"] = data.random_average
    benchmark.extra_info["crossover_generation"] = data.crossover_generation()
    record("figure4b", data.to_text())
    bench_json(
        "figure4b",
        {
            "ga_final_best": data.best_so_far[-1],
            "random_best": data.random_best,
            "random_average": data.random_average,
            "crossover_generation": data.crossover_generation(),
            "ga_evaluations": data.ga_evaluations,
            "random_evaluations": data.random_evaluations,
        },
    )

"""Microbenchmarks of the EDA substrate (synthesis, mapping, SAT).

These do not correspond to a table or figure of the paper; they track the
cost of the building blocks that dominate the experiment runtimes: one
synthesis run (the GA's fitness evaluation), the camouflage technology
mapping, and a SAT equivalence check.  Unlike the experiment harnesses they
use multiple rounds so pytest-benchmark produces meaningful statistics.
"""

from __future__ import annotations

import pytest

from repro.camo import default_camouflage_library
from repro.merge import merge_functions
from repro.sat import check_netlist_function
from repro.sboxes import des_sboxes, optimal_sboxes, present_sbox
from repro.synth import synthesize
from repro.techmap import camouflage_map


def test_bench_synthesize_present_sbox(benchmark, bench_json):
    function = present_sbox()
    result = benchmark(lambda: synthesize(function, effort="fast"))
    assert result.area > 0
    bench_json("substrate_synthesize_present_sbox", {"area": result.area})


def test_bench_synthesize_merged_four_sboxes(benchmark, bench_json):
    design = merge_functions(optimal_sboxes(4))
    result = benchmark(lambda: synthesize(design.function, effort="fast"))
    assert result.area > 0
    bench_json("substrate_synthesize_merged_four_sboxes", {"area": result.area})


def test_bench_synthesize_des_sbox(benchmark, bench_json):
    function = des_sboxes(1)[0]
    result = benchmark(lambda: synthesize(function, effort="fast"))
    assert result.area > 0
    bench_json("substrate_synthesize_des_sbox", {"area": result.area})


def test_bench_camouflage_map_two_sboxes(benchmark, bench_json):
    design = merge_functions(optimal_sboxes(2))
    synthesis = synthesize(design.function, effort="fast")
    camo = default_camouflage_library(synthesis.netlist.library)
    select_nets = [f"sel[{k}]" for k in range(design.num_selects)]

    mapping = benchmark(
        lambda: camouflage_map(synthesis.netlist, select_nets, camo_library=camo)
    )
    assert mapping.area() > 0
    bench_json("substrate_camouflage_map_two_sboxes", {"area": mapping.area()})


def test_bench_sat_equivalence_check(benchmark, bench_json):
    function = present_sbox()
    netlist = synthesize(function, effort="fast").netlist
    outcome = benchmark(lambda: check_netlist_function(netlist, function))
    assert bool(outcome)
    bench_json("substrate_sat_equivalence_check", {"equivalent": bool(outcome)})

"""Adversary analysis benchmark (the paper's threat-model claims).

Two measurements on the same pair of viable S-boxes:

* the proposed flow (merge + GA + camouflage mapping) must leave *every*
  viable function plausible to the SAT-based adversary;
* random camouflaging of a single-function circuit must leave only the true
  function plausible, i.e. the adversary immediately learns the function.

The benchmark times the adversary's SAT queries (the decamouflaging cost the
related-work attacks measure).
"""

from __future__ import annotations

import time

import pytest

from repro.attacks import PlausibleFunctionOracle, random_camouflage_experiment
from repro.attacks.oracle_guided import attack_mapping
from repro.flow import obfuscate_with_assignment
from repro.flow.report import SolverStatsRow, format_solver_stats
from repro.sat.solver import BUDGET_ENV_VAR, SolveBudget
from repro.sboxes import optimal_sboxes
from repro.synth import synthesize


@pytest.fixture(scope="module")
def obfuscated_pair():
    functions = optimal_sboxes(2)
    result = obfuscate_with_assignment(functions, effort="fast")
    return functions, result


def test_attack_proposed_flow_keeps_all_viable_functions(benchmark, record, bench_json, obfuscated_pair):
    functions, result = obfuscated_pair
    oracle = PlausibleFunctionOracle.from_mapping(result.mapping)
    views = result.assignment.apply(list(functions))

    def adversary_checks():
        return [bool(oracle.is_plausible(view)) for view in views]

    verdicts = benchmark.pedantic(adversary_checks, rounds=1, iterations=1)
    assert verdicts == [True, True], "a viable function became distinguishable"
    stats = oracle.solver_stats()
    benchmark.extra_info["plausible"] = verdicts
    benchmark.extra_info["solver"] = stats
    bench_json("attack_proposed_flow", {"plausible": verdicts, "solver": dict(stats)})
    record(
        "attack_proposed_flow",
        "\n".join(
            f"{function.name}: plausible={verdict}"
            for function, verdict in zip(functions, verdicts)
        )
        + "\n"
        + format_solver_stats(
            [SolverStatsRow.from_stats("plausibility oracle", stats)]
        ),
    )


def test_attack_oracle_guided_dip_loop(benchmark, record, bench_json, obfuscated_pair):
    """The stronger (oracle-equipped) adversary: the incremental DIP loop.

    ``presample=0`` explicitly: this benchmark tracks the pure DIP-loop
    trajectory, so it must not silently degenerate into the presampled
    variant (measured separately below) when ``REPRO_FUZZ`` is set.
    """
    functions, result = obfuscated_pair

    def run_attack():
        return attack_mapping(result.mapping, true_select=1, max_queries=64,
                              presample=0)

    outcome = benchmark.pedantic(run_attack, rounds=1, iterations=1)
    assert outcome.success, "the oracle-guided adversary failed to recover the function"
    benchmark.extra_info["num_queries"] = outcome.num_queries
    benchmark.extra_info["solver"] = outcome.solver_stats
    bench_json(
        "attack_oracle_guided",
        {"num_queries": outcome.num_queries, "solver": dict(outcome.solver_stats)},
    )
    record(
        "attack_oracle_guided",
        f"queries={outcome.num_queries}\n"
        + format_solver_stats(
            [SolverStatsRow.from_stats("DIP loop", outcome.solver_stats)]
        ),
    )


def test_attack_oracle_guided_presample(benchmark, record, bench_json, obfuscated_pair):
    """The DIP loop with the fuzz presampling phase explicitly enabled.

    Random-simulation preprocessing constrains both configuration copies
    with cheap oracle observations before the first miter call; on these
    block sizes the whole input space is observed and the (expensive) miter
    UNSAT proof is skipped outright.  The recovered function is identical to
    the default attack's — only the query transcript differs.
    """
    functions, result = obfuscated_pair

    def run_attack():
        return attack_mapping(result.mapping, true_select=1, max_queries=64,
                              presample=32)

    outcome = benchmark.pedantic(run_attack, rounds=1, iterations=1)
    assert outcome.success, "the presampled adversary failed to recover the function"
    benchmark.extra_info["num_queries"] = outcome.num_queries
    benchmark.extra_info["presample"] = len(outcome.presample_queries)
    bench_json(
        "attack_oracle_presample",
        {
            "num_queries": outcome.num_queries,
            "presample_queries": len(outcome.presample_queries),
            "solver": dict(outcome.solver_stats),
        },
    )
    record(
        "attack_oracle_presample",
        f"presample={len(outcome.presample_queries)} dips={outcome.num_queries}\n"
        + format_solver_stats(
            [SolverStatsRow.from_stats("presampled DIP loop", outcome.solver_stats)]
        ),
    )


def test_attack_budget_machinery_overhead(benchmark, record, bench_json,
                                          obfuscated_pair, monkeypatch):
    """Guard: the solve-budget machinery is free when budgets are unset.

    The unbudgeted hot path pays one ``is None`` test per conflict.  That
    cost cannot be isolated directly, so it is bounded from above: a huge,
    never-binding budget exercises the *full* per-conflict check (conflict
    + propagation counters and the wall-clock deadline), and the DIP-loop
    attack under it must stay within 2% (plus a small absolute epsilon for
    timer noise) of the unset run.  Both variants must produce an identical
    transcript — same queries, same solver statistics — so the comparison
    times the same search.
    """
    monkeypatch.delenv(BUDGET_ENV_VAR, raising=False)
    functions, result = obfuscated_pair
    huge = SolveBudget(
        max_conflicts=10 ** 9, max_propagations=10 ** 12, max_seconds=3600.0
    )

    def run_attack(budget=None):
        return attack_mapping(result.mapping, true_select=1, max_queries=64,
                              presample=0, budget=budget)

    # Warmup + registered timing: one unset run through pytest-benchmark.
    unset = benchmark.pedantic(run_attack, rounds=1, iterations=1)
    assert unset.success

    # Paired deltas: each round times both variants back to back (order
    # alternating), so ambient load and CPU-frequency drift hit both runs of
    # a pair roughly equally and mostly cancel in the difference.  The
    # minimum delta over the rounds is the cleanest single observation of
    # the machinery cost — run-to-run noise on this workload dwarfs 2%, but
    # a genuine multi-percent regression would inflate *every* delta.
    def timed(budget):
        start = time.perf_counter()
        outcome = run_attack(budget=budget)
        return outcome, time.perf_counter() - start

    deltas = []
    best_unset = float("inf")
    bounded = None
    for round_index in range(4):
        if round_index % 2 == 0:
            unset, unset_seconds = timed(None)
            bounded, bounded_seconds = timed(huge)
        else:
            bounded, bounded_seconds = timed(huge)
            unset, unset_seconds = timed(None)
        best_unset = min(best_unset, unset_seconds)
        deltas.append(bounded_seconds - unset_seconds)

    assert unset.success and bounded.success
    assert bounded.num_queries == unset.num_queries
    for key in ("conflicts", "decisions", "propagations"):
        assert bounded.solver_stats[key] == unset.solver_stats[key], (
            f"a never-binding budget changed the solver transcript ({key})"
        )

    overhead = min(deltas)
    allowed = best_unset * 0.02 + 0.010
    benchmark.extra_info["best_unset_seconds"] = best_unset
    benchmark.extra_info["overhead_seconds"] = overhead
    bench_json(
        "attack_budget_overhead",
        {
            "best_unset_seconds": best_unset,
            "paired_deltas_seconds": deltas,
            "overhead_seconds": overhead,
            "allowed_seconds": allowed,
            "num_queries": unset.num_queries,
        },
    )
    record(
        "attack_budget_overhead",
        f"unset={best_unset:.4f}s deltas="
        + "/".join(f"{delta:+.4f}" for delta in deltas)
        + f" overhead={overhead:+.4f}s allowed={allowed:.4f}s",
    )
    assert overhead <= allowed, (
        f"budget machinery overhead {overhead:.4f}s exceeds "
        f"{allowed:.4f}s (2% + 10ms) on the DIP-loop benchmark"
    )


def test_attack_random_camouflage_fails(benchmark, record, bench_json):
    functions = optimal_sboxes(2)
    single = synthesize(functions[0], effort="fast").netlist

    def run_experiment():
        return random_camouflage_experiment(single, functions, fraction=0.5, seed=3)

    experiment = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert experiment.plausible[0] is True
    assert experiment.plausible[1] is False, (
        "random camouflaging unexpectedly made another viable function plausible"
    )
    benchmark.extra_info["plausible"] = experiment.plausible
    bench_json("attack_random_camouflage", {"plausible": list(experiment.plausible)})
    record(
        "attack_random_camouflage",
        "\n".join(
            f"{function.name}: plausible={verdict}"
            for function, verdict in zip(functions, experiment.plausible)
        ),
    )

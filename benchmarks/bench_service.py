"""Campaign-service benchmarks: fleet throughput and the shared cache tier.

Two measurements over a real coordinator on a loopback socket:

* ``test_service_probe_throughput`` pushes one sleep-bound probe campaign
  through the HTTP worker protocol with a single pull-based worker and
  again with two, and records both wall clocks.  The jobs sleep, so the
  ideal two-worker speedup is 2x; the measured ratio quantifies the
  coordinator's per-claim overhead (HTTP round-trips, lease bookkeeping).
* ``test_service_remote_cache_warm_worker`` runs a synthesis campaign
  through one worker (cold coordinator cache), then the same workload at a
  different seed through a *fresh* worker tier against the now-warm
  coordinator.  The second worker's remote-cache hit counters — uploaded
  with job completion and surfaced in campaign robustness — must be
  positive: the fleet-shared tier is actually saving synthesis calls.
"""

from __future__ import annotations

import dataclasses
import threading
import time

from repro.evaluation.workloads import get_profile
from repro.scenarios import CampaignJob, CampaignSpec
from repro.service.cache import CACHE_URL_ENV_VAR, RemoteCacheTier
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread
from repro.service.worker import WorkerAgent

#: Probe campaign shape: enough sleep-bound jobs that claim/upload
#: round-trips are amortised but the benchmark stays under a few seconds.
PROBE_JOBS = 12
PROBE_SLEEP = 0.05

#: GA budget of the synthesis campaign: tiny — the benchmark measures the
#: cache tier, not GA convergence.
CAMPAIGN_POPULATION = 4
CAMPAIGN_GENERATIONS = 1


def _probe_spec(name):
    return CampaignSpec(
        name=name,
        jobs=[
            CampaignJob(
                f"probe_{index}",
                "probe",
                {"value": index, "sleep": PROBE_SLEEP},
            )
            for index in range(PROBE_JOBS)
        ],
    )


def _synthesis_spec(name, seed):
    profile = dataclasses.replace(
        get_profile("quick"),
        ga_population=CAMPAIGN_POPULATION,
        ga_generations=CAMPAIGN_GENERATIONS,
    )
    return CampaignSpec.table1(
        profile, [("PRESENT", 2)], seed=seed, name=name
    )


def _run_fleet(service, spec, workers, remote_cache=False):
    """Submit ``spec`` and drain it with ``workers`` agents; returns
    ``(elapsed_seconds, status)``."""
    client = ServiceClient(service.url)
    campaign_id = client.submit(spec.to_dict())["campaign"]
    agents = [
        WorkerAgent(
            service.url,
            worker_id=f"bench-w{index}",
            poll=0.02,
            remote_cache=remote_cache,
            log=None,
        )
        for index in range(workers)
    ]
    threads = [
        threading.Thread(
            target=agent.run,
            kwargs={"campaign": campaign_id, "once": True},
            daemon=True,
        )
        for agent in agents
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    elapsed = time.perf_counter() - start
    status = client.status(campaign_id)
    assert status["complete"], status
    return elapsed, status


def test_service_probe_throughput(benchmark, record, bench_json, tmp_path):
    def measure():
        timings = {}
        for workers in (1, 2):
            with ServiceThread(
                root=str(tmp_path / f"root{workers}"), poll=0.02
            ) as service:
                elapsed, status = _run_fleet(
                    service, _probe_spec(f"bench_svc_{workers}w"), workers
                )
            assert status["counts"] == {"done": PROBE_JOBS}
            timings[workers] = elapsed
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = timings[1] / timings[2] if timings[2] else 0.0
    benchmark.extra_info.update(
        {"one_worker_seconds": timings[1], "two_worker_seconds": timings[2]}
    )
    record(
        "service_throughput",
        f"service probe campaign ({PROBE_JOBS} jobs x {PROBE_SLEEP}s): "
        f"1 worker {timings[1]:.2f}s, 2 workers {timings[2]:.2f}s "
        f"(speedup {speedup:.2f}x)",
    )
    bench_json(
        "service",
        {
            "probe_jobs": PROBE_JOBS,
            "probe_sleep_seconds": PROBE_SLEEP,
            "one_worker_seconds": timings[1],
            "two_worker_seconds": timings[2],
            "speedup": speedup,
        },
    )


def test_service_remote_cache_warm_worker(
    benchmark, record, bench_json, tmp_path, monkeypatch
):
    monkeypatch.delenv(CACHE_URL_ENV_VAR, raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)

    def measure():
        with ServiceThread(root=str(tmp_path / "root"), poll=0.02) as service:
            monkeypatch.setenv(CACHE_URL_ENV_VAR, service.url)
            cold_elapsed, _ = _run_fleet(
                service,
                _synthesis_spec("bench_cache_cold", seed=1),
                workers=1,
                remote_cache=True,
            )
            # A second worker process would start with an empty local tier;
            # simulate it by replacing the process-wide tier for this URL.
            monkeypatch.setitem(
                RemoteCacheTier._SHARED, service.url, RemoteCacheTier(service.url)
            )
            warm_elapsed, status = _run_fleet(
                service,
                _synthesis_spec("bench_cache_warm", seed=2),
                workers=1,
                remote_cache=True,
            )
            server_stats = ServiceClient(service.url).cache_stats()
        return cold_elapsed, warm_elapsed, status, server_stats

    cold_elapsed, warm_elapsed, status, server_stats = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    robustness = status["robustness"]
    hits = robustness.get("remote_cache_hits", 0)
    assert hits > 0, robustness  # the warm coordinator actually served us
    assert server_stats["get_hits"] >= hits
    record(
        "service_remote_cache",
        f"warm-coordinator worker: {hits:g} remote cache hits "
        f"(cold campaign {cold_elapsed:.2f}s, warm campaign "
        f"{warm_elapsed:.2f}s; server: {server_stats['get_hits']} hits / "
        f"{server_stats['puts']} puts)",
    )
    bench_json(
        "service_cache",
        {
            "cold_seconds": cold_elapsed,
            "warm_seconds": warm_elapsed,
            "remote_cache": {
                key.replace("remote_cache_", ""): value
                for key, value in robustness.items()
                if key.startswith("remote_cache_")
            },
            "server_cache": server_stats,
        },
    )

"""Table I (PRESENT rows): merged optimal 4-bit S-box circuits.

For every configuration in the active profile this benchmark runs the full
comparison of the paper's Table I — random pin assignments (average / best),
the genetic algorithm, and GA followed by camouflage technology mapping —
and records the measured GE areas plus the improvement percentage.
"""

from __future__ import annotations

import pytest

from repro.evaluation import PRESENT_FAMILY, run_table1_entry, table1_text


def _run_entry(profile, count):
    return run_table1_entry(PRESENT_FAMILY, count, profile=profile, seed=1)


@pytest.mark.parametrize("count", [2, 4, 8, 16])
def test_table1_present(benchmark, profile, record, bench_json, count):
    if count not in profile.present_counts:
        pytest.skip(f"{count} merged PRESENT S-boxes not part of profile {profile.name!r}")
    entry = benchmark.pedantic(_run_entry, args=(profile, count), rounds=1, iterations=1)

    row = entry.row
    assert entry.verification_ok, "camouflaged circuit lost a viable function"
    assert row.random_best <= row.random_avg + 1e-9
    assert row.ga_tm_area <= row.ga_area + 1e-9

    benchmark.extra_info.update(row.as_dict())
    benchmark.extra_info["ga_evaluations"] = entry.ga_evaluations
    record(
        f"table1_present_{count:02d}",
        table1_text([entry], profile_name=profile.name),
    )
    optimization = entry.obfuscation.pin_optimization
    bench_json(
        f"table1_present_{count:02d}",
        {
            "row": row.as_dict(),
            "ga_evaluations": entry.ga_evaluations,
            "cache_stats": optimization.cache_stats if optimization else {},
        },
    )

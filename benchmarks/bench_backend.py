"""Native-vs-pure backend benchmark (compiled twin speedups).

The compiled cores (``repro._native._core``) claim two things: transcript
identity with the pure-Python reference and a large constant-factor
speedup.  This benchmark measures both on three workloads:

* raw CDCL propagation on a hard random 3-SAT instance (the solver's
  inner loop with no Python framing around it),
* the oracle-guided DIP-loop attack (the paper's adversary, end to end:
  miter construction in Python, solving in whichever backend is active),
* packed lane evaluation over a random netlist (the simulator's inner
  loop behind the fuzz-before-SAT pre-filters).

Every measurement first asserts that both backends produced *identical*
transcripts (same verdicts, models, conflict/decision/propagation
counts, same lanes) — a speedup over a different search is meaningless.
The whole module skips cleanly when the extension is not built.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.attacks.oracle_guided import attack_mapping
from repro.backend import native_import_error, native_module
from repro.flow import obfuscate_with_assignment
from repro.sat.solver import SatSolver
from repro.sboxes import optimal_sboxes
from repro.sim import NetlistSimulator, PatternBatch

pytestmark = pytest.mark.skipif(
    native_module() is None,
    reason=(
        "native extension not built; run `python setup.py build_ext --inplace` "
        f"(import error: {native_import_error()})"
    ),
)

# The DIP-loop acceptance floor; raw propagation typically lands at 10x+.
MIN_ATTACK_SPEEDUP = 3.0

TRANSCRIPT_KEYS = (
    "solve_calls",
    "conflicts",
    "decisions",
    "propagations",
    "restarts",
    "budget_exhaustions",
    "num_vars",
    "num_clauses",
    "learned_clauses",
    "forgotten_clauses",
)


def _transcript(stats):
    return {key: stats[key] for key in TRANSCRIPT_KEYS}


@pytest.fixture(scope="module")
def obfuscated_pair():
    result = obfuscate_with_assignment(optimal_sboxes(2), effort="fast")
    return result


def _hard_3sat(num_vars: int, seed: int, ratio: float = 4.3):
    rng = random.Random(seed)
    clauses = []
    for _ in range(int(num_vars * ratio)):
        variables = rng.sample(range(1, num_vars + 1), 3)
        clauses.append(
            [
                variable if rng.random() < 0.5 else -variable
                for variable in variables
            ]
        )
    return clauses


def test_backend_raw_propagation(benchmark, record, bench_json):
    """The CDCL inner loop alone: one hard 3-SAT solve per backend."""
    clauses = _hard_3sat(160, seed=20170327)

    def solve(backend):
        solver = SatSolver(backend=backend)
        for clause in clauses:
            solver.add_clause(clause)
        start = time.perf_counter()
        result = solver.solve()
        return result, solver.stats(), time.perf_counter() - start

    # Warm both paths once so allocator/cache effects hit neither side.
    solve("pure")
    solve("native")
    result_pure, stats_pure, pure_seconds = solve("pure")

    def native_run():
        return solve("native")

    result_native, stats_native, native_seconds = benchmark.pedantic(
        native_run, rounds=1, iterations=1
    )

    assert result_native.status == result_pure.status
    assert result_native.model == result_pure.model
    assert _transcript(stats_native) == _transcript(stats_pure), (
        "backends diverged on the raw-propagation workload"
    )
    speedup = pure_seconds / native_seconds if native_seconds else float("inf")
    benchmark.extra_info["speedup"] = speedup
    bench_json(
        "backend_propagation",
        {
            "status": result_pure.status,
            "pure_seconds": pure_seconds,
            "native_seconds": native_seconds,
            "speedup": speedup,
            "solver": _transcript(stats_pure),
        },
    )
    record(
        "backend_propagation",
        f"status={result_pure.status} conflicts={stats_pure['conflicts']} "
        f"propagations={stats_pure['propagations']}\n"
        f"pure={pure_seconds:.3f}s native={native_seconds:.3f}s "
        f"speedup={speedup:.1f}x",
    )


def test_backend_dip_loop_attack(benchmark, record, bench_json,
                                 obfuscated_pair, monkeypatch):
    """The paper's adversary end to end, once per backend.

    ``attack_mapping`` builds its solvers internally, so the backend is
    selected through ``REPRO_BACKEND`` — exactly how a user would flip a
    whole run.  The attack transcripts (DIP queries and every solver
    counter) must be identical; the native run must be at least
    ``MIN_ATTACK_SPEEDUP`` times faster.
    """
    result = obfuscated_pair

    def run_attack(backend):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        start = time.perf_counter()
        outcome = attack_mapping(
            result.mapping, true_select=1, max_queries=64, presample=0
        )
        return outcome, time.perf_counter() - start

    # Warm both paths (first run pays module/page-cache costs).
    run_attack("pure")
    run_attack("native")
    pure_outcome, pure_seconds = run_attack("pure")

    def native_run():
        return run_attack("native")

    native_outcome, native_seconds = benchmark.pedantic(
        native_run, rounds=1, iterations=1
    )

    assert pure_outcome.success and native_outcome.success
    assert native_outcome.num_queries == pure_outcome.num_queries
    assert dict(native_outcome.solver_stats) == dict(pure_outcome.solver_stats), (
        "backends produced different attack transcripts"
    )
    speedup = pure_seconds / native_seconds if native_seconds else float("inf")
    benchmark.extra_info["speedup"] = speedup
    bench_json(
        "backend",
        {
            "workload": "oracle_guided_dip_loop",
            "num_queries": pure_outcome.num_queries,
            "pure_seconds": pure_seconds,
            "native_seconds": native_seconds,
            "speedup": speedup,
            "min_required_speedup": MIN_ATTACK_SPEEDUP,
            "solver": dict(pure_outcome.solver_stats),
        },
    )
    record(
        "backend_dip_loop",
        f"dips={pure_outcome.num_queries} "
        f"conflicts={pure_outcome.solver_stats['conflicts']}\n"
        f"pure={pure_seconds:.3f}s native={native_seconds:.3f}s "
        f"speedup={speedup:.1f}x (floor {MIN_ATTACK_SPEEDUP:.0f}x)",
    )
    assert speedup >= MIN_ATTACK_SPEEDUP, (
        f"native DIP-loop speedup {speedup:.2f}x is below the "
        f"{MIN_ATTACK_SPEEDUP:.0f}x acceptance floor"
    )


def test_backend_packed_simulation(benchmark, record, bench_json):
    """Packed lane evaluation: uint64 word arrays vs Python bigint lanes.

    The workload is shaped like the fuzz-before-SAT pre-filters — many
    small batches (256 patterns) over a mid-sized netlist — which is the
    regime the compiled evaluator targets.  (Very large batches stay on
    the pure bigint path by design; see ``_NATIVE_MAX_PATTERNS``.)
    """
    from repro.netlist.generate import random_netlist
    from repro.netlist.library import standard_cell_library

    netlist = random_netlist(
        13, standard_cell_library(), num_inputs=12, num_cells=400, num_outputs=8
    )
    batch = PatternBatch.random(12, 256, seed=5)
    pure_sim = NetlistSimulator(netlist, backend="pure")
    native_sim = NetlistSimulator(netlist, backend="native")
    rounds = 1000

    def sweep(simulator):
        start = time.perf_counter()
        for _ in range(rounds):
            lanes = simulator.net_lanes(batch)
        return lanes, time.perf_counter() - start

    sweep(pure_sim)
    sweep(native_sim)
    pure_lanes, pure_seconds = sweep(pure_sim)

    def native_run():
        return sweep(native_sim)

    native_lanes, native_seconds = benchmark.pedantic(
        native_run, rounds=1, iterations=1
    )

    assert native_lanes == pure_lanes, "packed lanes diverged between backends"
    speedup = pure_seconds / native_seconds if native_seconds else float("inf")
    patterns = batch.num_patterns * rounds
    benchmark.extra_info["speedup"] = speedup
    bench_json(
        "backend_sim",
        {
            "num_cells": netlist.num_instances(),
            "num_patterns": batch.num_patterns,
            "rounds": rounds,
            "pure_seconds": pure_seconds,
            "native_seconds": native_seconds,
            "pure_patterns_per_second": patterns / pure_seconds,
            "native_patterns_per_second": patterns / native_seconds,
            "speedup": speedup,
        },
    )
    record(
        "backend_sim",
        f"{netlist.num_instances()} cells x {batch.num_patterns} patterns "
        f"x {rounds} rounds\n"
        f"pure={pure_seconds:.3f}s native={native_seconds:.3f}s "
        f"speedup={speedup:.1f}x",
    )

"""Ablation benchmarks for the design choices called out in DESIGN.md.

Three questions the paper's flow raises but does not isolate:

1. How much does *merged synthesis* (Phase I) save over the naive
   "n separate circuits + output multiplexers" structure of Fig. 2?
2. How much of the final saving comes from the *camouflage technology
   mapping* (Phase III) on top of the GA result?
3. What does pinning the first function's pins (symmetry breaking in the GA
   genotype) cost or save compared to the fully free encoding?
"""

from __future__ import annotations

import pytest

from repro.flow import obfuscate_with_assignment
from repro.ga import GAParameters, optimize_pin_assignment
from repro.merge import merge_functions, naive_merged_netlist
from repro.sboxes import optimal_sboxes
from repro.synth import synthesize


@pytest.fixture(scope="module")
def four_sboxes():
    return optimal_sboxes(4)


def test_ablation_merged_vs_naive_structure(benchmark, record, bench_json, four_sboxes):
    """Phase I ablation: shared synthesis vs the explicit Fig. 2 structure."""

    def run():
        design = merge_functions(four_sboxes)
        shared = synthesize(design.function, effort="fast").area
        naive = naive_merged_netlist(four_sboxes).area()
        return shared, naive

    shared, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    assert shared < naive, "merged synthesis should beat the naive mux structure"
    benchmark.extra_info["shared_area"] = shared
    benchmark.extra_info["naive_area"] = naive
    record(
        "ablation_merged_vs_naive",
        f"shared-synthesis area : {shared:.1f} GE\n"
        f"naive Fig.2 structure : {naive:.1f} GE\n"
        f"saving                : {100 * (naive - shared) / naive:.0f}%",
    )
    bench_json(
        "ablation_merged_vs_naive",
        {"shared_area": shared, "naive_area": naive},
    )


def test_ablation_technology_mapping_contribution(benchmark, record, bench_json, four_sboxes):
    """Phase III ablation: area before and after camouflage mapping."""

    def run():
        return obfuscate_with_assignment(four_sboxes, effort="fast")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.camouflaged_area <= result.synthesized_area + 1e-9
    benchmark.extra_info["synthesized_area"] = result.synthesized_area
    benchmark.extra_info["camouflaged_area"] = result.camouflaged_area
    bench_json(
        "ablation_techmap_contribution",
        {
            "synthesized_area": result.synthesized_area,
            "camouflaged_area": result.camouflaged_area,
        },
    )
    record(
        "ablation_techmap_contribution",
        f"synthesised (GA input) area : {result.synthesized_area:.1f} GE\n"
        f"after camouflage mapping    : {result.camouflaged_area:.1f} GE\n"
        f"reduction                   : "
        f"{100 * (result.synthesized_area - result.camouflaged_area) / result.synthesized_area:.0f}%",
    )


def test_ablation_symmetry_breaking_in_genotype(benchmark, record, bench_json):
    """GA encoding ablation: pinning function 0's pins vs the free encoding."""
    functions = optimal_sboxes(2)
    parameters = GAParameters(population_size=6, generations=3, seed=5)

    def run():
        pinned = optimize_pin_assignment(
            functions, parameters=parameters, effort="fast", final_effort="fast"
        ).best_area
        from repro.ga import PinAssignmentProblem, GeneticAlgorithm

        free_problem = PinAssignmentProblem(functions, effort="fast", fix_first_function=False)
        engine = GeneticAlgorithm(
            sample=free_problem.random_genotype,
            evaluate=free_problem.evaluate,
            crossover=free_problem.crossover,
            mutate=free_problem.mutate,
            parameters=parameters,
        )
        free = engine.run(initial_population=[free_problem.space.identity_genotype()]).best_fitness
        return pinned, free

    pinned, free = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["pinned_area"] = pinned
    benchmark.extra_info["free_area"] = free
    bench_json(
        "ablation_symmetry_breaking",
        {"pinned_area": pinned, "free_area": free},
    )
    record(
        "ablation_symmetry_breaking",
        f"GA with function-0 pins fixed : {pinned:.1f} GE\n"
        f"GA with free encoding         : {free:.1f} GE",
    )

"""Table I (DES rows): merged DES S-box circuits.

Same comparison as the PRESENT rows but on the 6-input/4-output DES S-boxes,
which are roughly 5x larger; the paper reports the largest savings (up to
48%) on these circuits.
"""

from __future__ import annotations

import pytest

from repro.evaluation import DES_FAMILY, run_table1_entry, table1_text


def _run_entry(profile, count):
    return run_table1_entry(DES_FAMILY, count, profile=profile, seed=1)


@pytest.mark.parametrize("count", [2, 4, 8])
def test_table1_des(benchmark, profile, record, bench_json, count):
    if count not in profile.des_counts:
        pytest.skip(f"{count} merged DES S-boxes not part of profile {profile.name!r}")
    entry = benchmark.pedantic(_run_entry, args=(profile, count), rounds=1, iterations=1)

    row = entry.row
    assert entry.verification_ok, "camouflaged circuit lost a viable function"
    assert row.random_best <= row.random_avg + 1e-9
    assert row.ga_tm_area <= row.ga_area + 1e-9

    benchmark.extra_info.update(row.as_dict())
    benchmark.extra_info["ga_evaluations"] = entry.ga_evaluations
    record(
        f"table1_des_{count:02d}",
        table1_text([entry], profile_name=profile.name),
    )
    optimization = entry.obfuscation.pin_optimization
    bench_json(
        f"table1_des_{count:02d}",
        {
            "row": row.as_dict(),
            "ga_evaluations": entry.ga_evaluations,
            "cache_stats": optimization.cache_stats if optimization else {},
        },
    )

"""Figure 4a: area distribution of random pin assignments.

Workload: the merged circuit of 8 PRESENT-style S-boxes (the paper's Fig. 4
workload; smaller profiles may scale the S-box count down).  The benchmark
evaluates a batch of random pin assignments and records the histogram that
the paper plots, together with its average and best.
"""

from __future__ import annotations

import pytest

from repro.evaluation import run_figure4a


def test_figure4a_random_distribution(benchmark, profile, record, bench_json):
    data = benchmark.pedantic(
        run_figure4a, kwargs={"profile": profile, "seed": 11}, rounds=1, iterations=1
    )

    assert len(data.areas) >= 2
    assert data.best <= data.average <= data.worst
    # The histogram is the figure: it must cover every evaluated assignment
    # and show an actual spread (otherwise Phase II would be pointless).
    assert sum(count for _, count in data.histogram) == len(data.areas)
    assert data.worst > data.best

    benchmark.extra_info["samples"] = len(data.areas)
    benchmark.extra_info["best"] = data.best
    benchmark.extra_info["average"] = data.average
    benchmark.extra_info["worst"] = data.worst
    record("figure4a", data.to_text())
    bench_json(
        "figure4a",
        {
            "samples": len(data.areas),
            "best": data.best,
            "average": data.average,
            "worst": data.worst,
        },
    )

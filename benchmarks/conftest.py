"""Shared fixtures and helpers for the benchmark harness.

Every benchmark runs the real experiment pipeline exactly once per benchmark
(``benchmark.pedantic(..., rounds=1)``): the quantity of interest is the
reproduced table/figure data, with the wall-clock time of the flow recorded
as a by-product.  The experiment profile is selected with the
``REPRO_PROFILE`` environment variable (quick / medium / paper); the default
``quick`` profile finishes the whole suite in a few minutes.  The worker
count used by the parallel harnesses comes from ``REPRO_JOBS`` (default:
serial); seeded results are identical for every jobs value.

Reproduced numbers are printed to stdout and appended to
``benchmarks/results/`` so that EXPERIMENTS.md can be updated from a run.
Each benchmark additionally emits a machine-readable
``benchmarks/results/BENCH_<name>.json`` (timings, cache statistics, jobs)
via the ``bench_json`` fixture, so the performance trajectory can be tracked
across commits and CI runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.evaluation import get_profile, resolve_jobs
from repro.synth.script import synthesis_telemetry

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def profile():
    """The experiment profile used by every benchmark in this session."""
    return get_profile()


@pytest.fixture(scope="session")
def jobs():
    """The worker count used by every benchmark in this session."""
    return resolve_jobs(None)


@pytest.fixture(scope="session")
def results_dir():
    """Directory collecting the reproduced tables/figures as text files."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record(results_dir):
    """Write one reproduced artefact to the results directory and echo it."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n===== {name} =====")
        print(text)

    return _record


def _benchmark_timings(benchmark) -> dict:
    """Extract the wall-clock timings pytest-benchmark measured (seconds)."""
    try:
        stats = benchmark.stats.stats
        return {
            "total_seconds": float(stats.total),
            "mean_seconds": float(stats.mean),
            "rounds": int(stats.rounds),
        }
    except (AttributeError, TypeError):
        return {}


@pytest.fixture
def bench_json(results_dir, benchmark, jobs):
    """Emit a machine-readable ``BENCH_<name>.json`` for one benchmark.

    The payload always carries the benchmark name, the active profile and
    jobs setting, the timings pytest-benchmark measured, and the synthesis
    telemetry counters accrued in this process during the benchmark
    (``telemetry.synth.*`` — passes scheduled/executed, per-pass AND gains
    — so ``bench_diff.py`` tracks work done next to time spent); callers
    add workload-specific numbers (areas, cache statistics, solver work).
    Call it after the timed section so the timings are available.
    """
    synth_before = dict(synthesis_telemetry().scopes.get("synth", {}))

    def _write(name: str, payload: dict) -> None:
        data = {
            "name": name,
            "profile": os.environ.get("REPRO_PROFILE", "quick"),
            "jobs": jobs,
        }
        data.update(_benchmark_timings(benchmark))
        data.update(payload)
        synth_after = synthesis_telemetry().scopes.get("synth", {})
        synth_delta = {
            key: value - synth_before.get(key, 0)
            for key, value in synth_after.items()
            if value != synth_before.get(key, 0)
        }
        telemetry = dict(data.get("telemetry") or {})
        if synth_delta:
            merged = dict(telemetry.get("synth") or {})
            for key, value in synth_delta.items():
                merged[key] = merged.get(key, 0) + value
            telemetry["synth"] = merged
        if telemetry:
            data["telemetry"] = telemetry
        path = results_dir / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(data, indent=2, sort_keys=True, default=str) + "\n",
            encoding="utf-8",
        )
        print(f"\nwrote {path}")

    return _write

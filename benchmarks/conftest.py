"""Shared fixtures and helpers for the benchmark harness.

Every benchmark runs the real experiment pipeline exactly once per benchmark
(``benchmark.pedantic(..., rounds=1)``): the quantity of interest is the
reproduced table/figure data, with the wall-clock time of the flow recorded
as a by-product.  The experiment profile is selected with the
``REPRO_PROFILE`` environment variable (quick / medium / paper); the default
``quick`` profile finishes the whole suite in a few minutes.

Reproduced numbers are printed to stdout and appended to
``benchmarks/results/`` so that EXPERIMENTS.md can be updated from a run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.evaluation import get_profile

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def profile():
    """The experiment profile used by every benchmark in this session."""
    return get_profile()


@pytest.fixture(scope="session")
def results_dir():
    """Directory collecting the reproduced tables/figures as text files."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record(results_dir):
    """Write one reproduced artefact to the results directory and echo it."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n===== {name} =====")
        print(text)

    return _record

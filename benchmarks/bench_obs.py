"""Observability overhead guard: tracing must be free when it is off.

The obs layer adds hooks to the hottest paths in the repo — a
``tracing_enabled()`` env test per span site and always-on metrics
counters at the solver/sim funnels.  The disabled fast path cannot be
compared against pre-instrumentation code directly, so (like the solve
budget guard in ``bench_attack.py``) its cost is bounded from above: the
DIP-loop attack with ``REPRO_TRACE=1`` exercises *more* machinery than a
disabled run ever pays — every gated check takes the expensive branch
and the trace sink is live — and that enabled run must stay within 2%
(plus a small absolute epsilon for timer noise) of the disabled one.
Both variants must produce an identical solver transcript so the
comparison times the same search.
"""

from __future__ import annotations

import time

import pytest

from repro.attacks.oracle_guided import attack_mapping
from repro.flow import obfuscate_with_assignment
from repro.obs.trace import (
    TRACE_DIR_ENV_VAR,
    TRACE_ENV_VAR,
    reset_trace_state,
    span,
)
from repro.sboxes import optimal_sboxes


@pytest.fixture(scope="module")
def obfuscated_pair():
    functions = optimal_sboxes(2)
    result = obfuscate_with_assignment(functions, effort="fast")
    return functions, result


def test_trace_machinery_overhead(benchmark, record, bench_json,
                                  obfuscated_pair, monkeypatch, tmp_path):
    monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
    monkeypatch.setenv(TRACE_DIR_ENV_VAR, str(tmp_path / "trace"))
    functions, result = obfuscated_pair

    def run_attack():
        # The span is a shared no-op while REPRO_TRACE is unset, so the
        # disabled arm times exactly the code a production run executes.
        with span("bench_attack"):
            return attack_mapping(result.mapping, true_select=1,
                                  max_queries=64, presample=0)

    # Warmup + registered timing: one disabled run through pytest-benchmark.
    reset_trace_state()
    disabled = benchmark.pedantic(run_attack, rounds=1, iterations=1)
    assert disabled.success

    # Paired deltas, order alternating per round, so ambient load and CPU
    # frequency drift hit both runs of a pair roughly equally and mostly
    # cancel in the difference.  The minimum delta over the rounds is the
    # cleanest single observation of the machinery cost.
    def timed(traced):
        if traced:
            monkeypatch.setenv(TRACE_ENV_VAR, "1")
        else:
            monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        reset_trace_state()
        start = time.perf_counter()
        outcome = run_attack()
        return outcome, time.perf_counter() - start

    deltas = []
    best_disabled = float("inf")
    traced = None
    for round_index in range(4):
        if round_index % 2 == 0:
            disabled, disabled_seconds = timed(False)
            traced, traced_seconds = timed(True)
        else:
            traced, traced_seconds = timed(True)
            disabled, disabled_seconds = timed(False)
        best_disabled = min(best_disabled, disabled_seconds)
        deltas.append(traced_seconds - disabled_seconds)
    monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
    reset_trace_state()

    assert disabled.success and traced.success
    assert traced.num_queries == disabled.num_queries
    for key in ("conflicts", "decisions", "propagations"):
        assert traced.solver_stats[key] == disabled.solver_stats[key], (
            f"enabling tracing changed the solver transcript ({key})"
        )

    overhead = min(deltas)
    allowed = best_disabled * 0.02 + 0.010
    benchmark.extra_info["best_disabled_seconds"] = best_disabled
    benchmark.extra_info["overhead_seconds"] = overhead
    bench_json(
        "obs_trace_overhead",
        {
            "best_disabled_seconds": best_disabled,
            "paired_deltas_seconds": deltas,
            "overhead_seconds": overhead,
            "allowed_seconds": allowed,
            "num_queries": disabled.num_queries,
        },
    )
    record(
        "obs_trace_overhead",
        f"disabled={best_disabled:.4f}s deltas="
        + "/".join(f"{delta:+.4f}" for delta in deltas)
        + f" overhead={overhead:+.4f}s allowed={allowed:.4f}s",
    )
    assert overhead <= allowed, (
        f"observability machinery overhead {overhead:.4f}s exceeds "
        f"{allowed:.4f}s (2% + 10ms) on the DIP-loop benchmark"
    )

"""Render loaded traces: tree view, rollups, critical path, SVG timeline.

Consumes the merged records of :func:`repro.obs.trace.load_trace` and
produces the ``repro trace`` CLI surfaces.  The SVG timeline is
stdlib-only and follows the visual idiom of ``benchmarks/bench_diff.py
--plot`` (same surface/grid/ink palette, rounded bars, escaped text) so
the repo's plots read as one family.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

__all__ = [
    "span_tree",
    "render_tree",
    "render_rollup",
    "critical_path",
    "render_critical_path",
    "render_timeline",
]

_PLOT = {
    "surface": "#fcfcfb",
    "grid": "#e9e8e5",
    "ink": "#3b3832",
    "muted": "#8a857c",
    "span": "#2a78d6",
    "event": "#eb6834",
    "error": "#c23b2e",
}


def _duration(record: Mapping[str, Any]) -> float:
    return float(record.get("duration", 0.0) or 0.0)


def _children_index(
    records: Sequence[Mapping[str, Any]],
) -> Tuple[List[Mapping[str, Any]], Dict[str, List[Mapping[str, Any]]]]:
    """Split records into roots and a parent-id -> children index.

    A record whose parent never appears in the record set (e.g. the
    remote client span of a worker-only segment) is treated as a root,
    so partial traces still render.
    """
    by_span = {str(r.get("span")): r for r in records}
    children: Dict[str, List[Mapping[str, Any]]] = {}
    roots: List[Mapping[str, Any]] = []
    for record in records:
        parent = str(record.get("parent", "") or "")
        if parent and parent in by_span:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: (r.get("start", 0.0), str(r.get("span"))))
    roots.sort(key=lambda r: (r.get("start", 0.0), str(r.get("span"))))
    return roots, children


def span_tree(
    records: Sequence[Mapping[str, Any]],
) -> List[Tuple[Mapping[str, Any], int]]:
    """Depth-first ``(record, depth)`` walk of the span forest."""
    roots, children = _children_index(records)
    walk: List[Tuple[Mapping[str, Any], int]] = []

    def visit(record: Mapping[str, Any], depth: int) -> None:
        walk.append((record, depth))
        for child in children.get(str(record.get("span")), []):
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return walk


def _label(record: Mapping[str, Any]) -> str:
    name = str(record.get("name", "?"))
    attrs = record.get("attrs") or {}
    parts = [name]
    for key in ("job", "worker", "owner", "campaign", "attempt", "status"):
        if key in attrs:
            parts.append(f"{key}={attrs[key]}")
    return " ".join(parts)


def render_tree(records: Sequence[Mapping[str, Any]]) -> str:
    """An indented tree, one line per span/event, durations on the right."""
    lines: List[str] = []
    for record, depth in span_tree(records):
        indent = "  " * depth
        if record.get("phase") == "event":
            lines.append(f"{indent}* {_label(record)}")
            continue
        suffix = f"{_duration(record) * 1000.0:10.1f} ms"
        if record.get("unfinished"):
            suffix = "  UNFINISHED"
        if record.get("error"):
            suffix += f"  !{record['error']}"
        lines.append(f"{indent}{_label(record):<{max(1, 64 - len(indent))}}{suffix}")
    return "\n".join(lines)


def render_rollup(records: Sequence[Mapping[str, Any]]) -> str:
    """Total/self time per span name, descending by total."""
    roots, children = _children_index(records)
    totals: Dict[str, List[float]] = {}  # name -> [total, self, count]
    for record in records:
        if record.get("phase") == "event":
            continue
        total = _duration(record)
        child_time = sum(
            _duration(child)
            for child in children.get(str(record.get("span")), [])
            if child.get("phase") != "event"
        )
        entry = totals.setdefault(str(record.get("name", "?")), [0.0, 0.0, 0])
        entry[0] += total
        entry[1] += max(0.0, total - child_time)
        entry[2] += 1
    rows = sorted(totals.items(), key=lambda item: -item[1][0])
    lines = [f"{'scope':<32}{'count':>7}{'total':>12}{'self':>12}"]
    for name, (total, self_time, count) in rows:
        lines.append(
            f"{name:<32}{count:>7}{total:>11.3f}s{self_time:>11.3f}s"
        )
    return "\n".join(lines)


def critical_path(
    records: Sequence[Mapping[str, Any]],
) -> List[Mapping[str, Any]]:
    """The chain of spans dominating the trace's wall clock.

    From the longest root, repeatedly descend into the child with the
    longest duration — the classic blame chain for "where did the time
    go".
    """
    roots, children = _children_index(records)
    spans = [r for r in roots if r.get("phase") != "event"]
    if not spans:
        return []
    path: List[Mapping[str, Any]] = []
    current = max(spans, key=_duration)
    while current is not None:
        path.append(current)
        kids = [
            child
            for child in children.get(str(current.get("span")), [])
            if child.get("phase") != "event"
        ]
        current = max(kids, key=_duration) if kids else None
    return path


def render_critical_path(records: Sequence[Mapping[str, Any]]) -> str:
    path = critical_path(records)
    if not path:
        return "(empty trace)"
    total = _duration(path[0]) or 1.0
    lines = []
    for depth, record in enumerate(path):
        share = 100.0 * _duration(record) / total
        lines.append(
            f"{'  ' * depth}{_label(record)}  "
            f"{_duration(record):.3f}s ({share:.0f}%)"
        )
    return "\n".join(lines)


# ------------------------------------------------------------------ #
# SVG timeline
# ------------------------------------------------------------------ #
def _nice_step(span: float) -> float:
    """A pleasant axis step: 1/2/5 x 10^k covering ``span`` in <=8 ticks."""
    if span <= 0:
        return 1.0
    raw = span / 8.0
    magnitude = 10.0 ** __import__("math").floor(__import__("math").log10(raw))
    for multiple in (1.0, 2.0, 5.0, 10.0):
        if raw <= multiple * magnitude:
            return multiple * magnitude
    return 10.0 * magnitude


def render_timeline(
    records: Sequence[Mapping[str, Any]],
    title: str = "trace timeline",
    width: int = 960,
) -> str:
    """A Gantt-style SVG: one row per span, x = wall-clock time.

    Unfinished spans (crashed attempts) render as hatched error-coloured
    bars reaching the end of the trace; events are diamond ticks on their
    parent's row.
    """
    walk = span_tree(records)
    spans = [(r, d) for r, d in walk if r.get("phase") != "event"]
    events = [(r, d) for r, d in walk if r.get("phase") == "event"]
    if not spans:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="60">'
            f'<text x="12" y="32" fill="{_PLOT["ink"]}">(empty trace)</text></svg>'
        )
    t0 = min(float(r.get("start", 0.0)) for r, _ in spans)
    t1 = max(
        float(r.get("start", 0.0)) + _duration(r) for r, _ in spans
    )
    for r, _ in events:
        t1 = max(t1, float(r.get("start", 0.0)))
    horizon = max(t1 - t0, 1e-6)

    row_height, bar_height = 22, 14
    left, top, right, bottom = 16, 48, 16, 28
    chart_width = width - left - right
    height = top + row_height * len(spans) + bottom
    scale = chart_width / horizon

    def x_of(t: float) -> float:
        return left + (t - t0) * scale

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="system-ui, sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="{_PLOT["surface"]}"/>',
        f'<text x="{left}" y="20" font-size="14" fill="{_PLOT["ink"]}">'
        f"{escape(title)}</text>",
        f'<text x="{left}" y="36" fill="{_PLOT["muted"]}">'
        f"{len(spans)} spans, {horizon:.3f}s</text>",
    ]

    step = _nice_step(horizon)
    tick = 0.0
    while tick <= horizon + step / 2:
        x = x_of(t0 + tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{top - 4}" x2="{x:.1f}" '
            f'y2="{height - bottom + 4}" stroke="{_PLOT["grid"]}"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{height - bottom + 16}" '
            f'text-anchor="middle" fill="{_PLOT["muted"]}">{tick:g}s</text>'
        )
        tick += step

    row_of: Dict[str, int] = {}
    for row, (record, depth) in enumerate(spans):
        row_of[str(record.get("span"))] = row
        y = top + row * row_height
        start = float(record.get("start", 0.0))
        duration = _duration(record)
        unfinished = bool(record.get("unfinished"))
        if unfinished:
            duration = max(duration, t1 - start)
        bar_x = x_of(start)
        bar_w = max(duration * scale, 1.5)
        color = _PLOT["error"] if (unfinished or record.get("error")) else _PLOT["span"]
        dash = ' stroke-dasharray="3,2"' if unfinished else ""
        parts.append(
            f'<rect x="{bar_x:.1f}" y="{y + (row_height - bar_height) / 2:.1f}" '
            f'width="{bar_w:.1f}" height="{bar_height}" rx="3" '
            f'fill="{color}" fill-opacity="{0.45 if unfinished else 0.9}" '
            f'stroke="{color}"{dash}/>'
        )
        label = _label(record)
        text_x = bar_x + bar_w + 6
        anchor = "start"
        if text_x > width - right - 120:
            text_x = bar_x - 6
            anchor = "end"
        parts.append(
            f'<text x="{text_x:.1f}" y="{y + row_height / 2 + 4:.1f}" '
            f'text-anchor="{anchor}" fill="{_PLOT["ink"]}">'
            f"{escape(' ' * depth + label)}</text>"
        )
    for record, _depth in events:
        parent_row = row_of.get(str(record.get("parent", "")))
        if parent_row is None:
            continue
        x = x_of(float(record.get("start", 0.0)))
        y = top + parent_row * row_height + row_height / 2
        parts.append(
            f'<path d="M {x:.1f} {y - 5:.1f} L {x + 4:.1f} {y:.1f} '
            f'L {x:.1f} {y + 5:.1f} L {x - 4:.1f} {y:.1f} Z" '
            f'fill="{_PLOT["event"]}"><title>{escape(_label(record))}</title></path>'
        )
    parts.append("</svg>")
    return "\n".join(parts)

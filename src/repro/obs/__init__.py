"""Observability: distributed tracing, live metrics, structured logs.

Three small, dependency-free layers the rest of the stack hooks into:

* :mod:`repro.obs.trace` — span tracing with cross-process context
  propagation (``REPRO_TRACE`` / ``REPRO_TRACE_DIR``), zero-overhead
  when disabled.
* :mod:`repro.obs.metrics` — counters/gauges/histograms with
  Prometheus-text rendering (the coordinator's ``GET /metrics``).
* :mod:`repro.obs.log` — leveled structured logging over the existing
  human progress lines (``REPRO_LOG=json`` for JSONL events).

:mod:`repro.obs.render` turns recorded traces into the ``repro trace``
CLI's tree/rollup/critical-path views and an SVG timeline.
"""

from .log import LOG_ENV_VAR, Logger, get_logger, reset_log_state
from .metrics import (
    MetricsRegistry,
    absorb_telemetry,
    counter,
    gauge,
    observe,
    registry,
    render_prometheus,
    reset_metrics,
)
from .trace import (
    DEFAULT_TRACE_DIR,
    TRACE_DIR_ENV_VAR,
    TRACE_ENV_VAR,
    attach_context,
    current_traceparent,
    event,
    format_traceparent,
    job_span_id,
    load_trace,
    new_trace_id,
    parse_traceparent,
    record_span,
    reset_trace_state,
    span,
    trace_dir,
    tracing_enabled,
)

__all__ = [
    "LOG_ENV_VAR",
    "Logger",
    "get_logger",
    "reset_log_state",
    "MetricsRegistry",
    "absorb_telemetry",
    "counter",
    "gauge",
    "observe",
    "registry",
    "render_prometheus",
    "reset_metrics",
    "DEFAULT_TRACE_DIR",
    "TRACE_DIR_ENV_VAR",
    "TRACE_ENV_VAR",
    "attach_context",
    "current_traceparent",
    "event",
    "format_traceparent",
    "job_span_id",
    "load_trace",
    "new_trace_id",
    "parse_traceparent",
    "record_span",
    "reset_trace_state",
    "span",
    "trace_dir",
    "tracing_enabled",
]

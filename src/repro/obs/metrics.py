"""Process-local metrics registry with Prometheus-text exposition.

Three instrument kinds, all lock-guarded and cheap enough to stay on:

* **Counters** — monotonically increasing totals (solver conflicts,
  cache hits, lease reclaims).
* **Gauges** — last-written values (jobs pending, campaigns active).
* **Histograms** — fixed-bucket latency/size distributions (lease
  heartbeat latency, job seconds).

Instruments carry optional labels (``counter("repro_jobs_done_total",
campaign=cid)``), rendering one Prometheus sample per label set.  The
registry also absorbs :class:`~repro.telemetry.RunTelemetry` records —
each scope/counter pair becomes ``repro_telemetry_<scope>_<name>`` — so
the coordinator's ``GET /metrics`` surfaces solver/cache/GA work the
moment a job payload lands, without new plumbing in the layers that
already speak RunTelemetry.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "observe",
    "absorb_telemetry",
    "render_prometheus",
    "reset_metrics",
]

#: Default histogram buckets (seconds): spans µs-scale heartbeats to
#: minute-scale jobs.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.025,
    0.1,
    0.5,
    2.5,
    10.0,
    60.0,
)

LabelSet = Tuple[Tuple[str, str], ...]


def _labels(labels: Mapping[str, Any]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _sanitize(name: str) -> str:
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


class MetricsRegistry:
    """A threadsafe registry of counters, gauges and histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[LabelSet, float]] = {}
        self._gauges: Dict[str, Dict[LabelSet, float]] = {}
        self._histograms: Dict[
            str, Dict[LabelSet, Tuple[List[int], float, int]]
        ] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}

    # -- writers ---------------------------------------------------- #
    def counter(self, name: str, amount: float = 1, **labels: Any) -> None:
        key = _labels(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + amount

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        with self._lock:
            self._gauges.setdefault(name, {})[_labels(labels)] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Iterable[float]] = None,
        **labels: Any,
    ) -> None:
        key = _labels(labels)
        with self._lock:
            bounds = self._buckets.setdefault(
                name, tuple(buckets) if buckets else DEFAULT_BUCKETS
            )
            series = self._histograms.setdefault(name, {})
            counts, total, count = series.get(key, ([0] * len(bounds), 0.0, 0))
            counts = list(counts)
            for index, bound in enumerate(bounds):
                if value <= bound:
                    counts[index] += 1
            series[key] = (counts, total + float(value), count + 1)

    def absorb_telemetry(self, telemetry: Any, **labels: Any) -> None:
        """Fold a RunTelemetry record's scopes into prefixed counters."""
        iter_counters = getattr(telemetry, "iter_counters", None)
        if callable(iter_counters):
            triples = iter_counters()
        else:
            scopes = getattr(telemetry, "scopes", None)
            if not isinstance(scopes, Mapping):
                return
            triples = (
                (scope, key, value)
                for scope, counters in scopes.items()
                if isinstance(counters, Mapping)
                for key, value in counters.items()
            )
        for scope, key, value in triples:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.counter(
                f"repro_telemetry_{_sanitize(str(scope))}_{_sanitize(str(key))}",
                value,
                **labels,
            )

    # -- readers ---------------------------------------------------- #
    def value(self, name: str, **labels: Any) -> float:
        """Current value of one counter/gauge sample (0 when absent)."""
        key = _labels(labels)
        with self._lock:
            if name in self._counters:
                return self._counters[name].get(key, 0.0)
            if name in self._gauges:
                return self._gauges[name].get(key, 0.0)
        return 0.0

    def render(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []

        def fmt(name: str, key: LabelSet, value: float, extra: str = "") -> str:
            pairs = [f'{k}="{v}"' for k, v in key]
            if extra:
                pairs.append(extra)
            body = "{" + ",".join(pairs) + "}" if pairs else ""
            return f"{name}{body} {value:g}"

        with self._lock:
            for name in sorted(self._counters):
                lines.append(f"# TYPE {name} counter")
                for key in sorted(self._counters[name]):
                    lines.append(fmt(name, key, self._counters[name][key]))
            for name in sorted(self._gauges):
                lines.append(f"# TYPE {name} gauge")
                for key in sorted(self._gauges[name]):
                    lines.append(fmt(name, key, self._gauges[name][key]))
            for name in sorted(self._histograms):
                lines.append(f"# TYPE {name} histogram")
                bounds = self._buckets[name]
                for key in sorted(self._histograms[name]):
                    counts, total, count = self._histograms[name][key]
                    # ``observe`` increments every bucket the value fits in,
                    # so the stored counts are already cumulative (le=).
                    for bound, bucket in zip(bounds, counts):
                        lines.append(
                            fmt(f"{name}_bucket", key, bucket, f'le="{bound:g}"')
                        )
                    lines.append(
                        fmt(f"{name}_bucket", key, count, 'le="+Inf"')
                    )
                    lines.append(fmt(f"{name}_sum", key, total))
                    lines.append(fmt(f"{name}_count", key, count))
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Flat counter/gauge snapshot for SSE ``metrics`` frames."""
        flat: Dict[str, Dict[str, float]] = {}
        with self._lock:
            for name, series in list(self._counters.items()) + list(
                self._gauges.items()
            ):
                entry: Dict[str, float] = {}
                for key, value in series.items():
                    label = ",".join(f"{k}={v}" for k, v in key) or "_"
                    entry[label] = value
                flat[name] = entry
        return flat

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._buckets.clear()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def counter(name: str, amount: float = 1, **labels: Any) -> None:
    _REGISTRY.counter(name, amount, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    _REGISTRY.gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    _REGISTRY.observe(name, value, **labels)


def absorb_telemetry(telemetry: Any, **labels: Any) -> None:
    _REGISTRY.absorb_telemetry(telemetry, **labels)


def render_prometheus() -> str:
    return _REGISTRY.render()


def reset_metrics() -> None:
    """Clear the default registry (for tests)."""
    _REGISTRY.reset()

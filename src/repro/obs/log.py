"""Leveled structured logging over the existing human progress lines.

The campaign runner, the worker agent and the coordinator historically
report progress through bare ``print()``.  Several of those lines are
load-bearing: CI greps for ``"cached (state matches)"`` and
``"worker_reclaims=1"``, and the test suites pin more.  This logger
therefore treats the human line as the *canonical* rendering — the
default mode prints exactly the strings the call sites always printed —
and layers structure on top:

* ``REPRO_LOG=json`` switches stdout to one JSONL event per line
  (``{"ts", "level", "logger", "message", ...fields}``), for machine
  ingestion.
* ``REPRO_LOG=debug`` / ``info`` / ``warning`` / ``error`` set the
  human-mode threshold (default ``info``).

Events carry optional structured fields either way; human mode simply
drops them, keeping byte-compatibility where tests pin output.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Optional

__all__ = ["LOG_ENV_VAR", "Logger", "get_logger", "reset_log_state"]

LOG_ENV_VAR = "REPRO_LOG"

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

# Parsed (raw value, json mode, threshold) cache, invalidated when the
# environment string changes — same trick as the fault-plan cache.
_MODE: Optional[tuple] = None


def _mode() -> tuple:
    global _MODE
    raw = os.environ.get(LOG_ENV_VAR, "").strip().lower()
    if _MODE is not None and _MODE[0] == raw:
        return _MODE
    as_json = raw == "json"
    threshold = _LEVELS.get(raw, _LEVELS["info"])
    _MODE = (raw, as_json, threshold)
    return _MODE


def reset_log_state() -> None:
    """Drop the cached mode (for tests that monkeypatch REPRO_LOG)."""
    global _MODE
    _MODE = None


class Logger:
    """One named logger writing human lines or JSONL events.

    ``sink`` overrides the output callable (default: print to stdout —
    the stream CI tees and greps).  The instance is itself callable with
    the historical ``progress(message)`` signature, so it drops into
    every ``progress=`` parameter unchanged.
    """

    def __init__(self, name: str, sink=None):
        self.name = name
        self._sink = sink

    def _write(self, text: str) -> None:
        if self._sink is not None:
            self._sink(text)
        else:
            print(text, file=sys.stdout, flush=True)

    def log(self, level: str, message: str, **fields: Any) -> None:
        raw, as_json, threshold = _mode()
        if as_json:
            record = {
                "ts": time.time(),
                "level": level,
                "logger": self.name,
                "message": message,
            }
            if fields:
                record.update(fields)
            self._write(json.dumps(record, sort_keys=True, default=str))
            return
        if _LEVELS.get(level, 20) < threshold:
            return
        self._write(message)

    def debug(self, message: str, **fields: Any) -> None:
        self.log("debug", message, **fields)

    def info(self, message: str, **fields: Any) -> None:
        self.log("info", message, **fields)

    def warning(self, message: str, **fields: Any) -> None:
        self.log("warning", message, **fields)

    def error(self, message: str, **fields: Any) -> None:
        self.log("error", message, **fields)

    def __call__(self, message: str, **fields: Any) -> None:
        self.info(message, **fields)


def get_logger(name: str, sink=None) -> Logger:
    """A logger for one subsystem (``campaign``, ``worker``, ``serve``)."""
    return Logger(name, sink=sink)

"""Span-based distributed tracing with a zero-overhead disabled path.

One campaign — local or fanned out over the HTTP fleet — becomes one
*trace*: a tree of timed spans plus point events, stitched across
processes and machines by W3C-style ``traceparent`` context propagation.

Design rules (mirroring :mod:`repro.faults`):

* **Off by default, free when off.**  Every hook is guarded by
  :func:`tracing_enabled`, a single ``os.environ.get`` truth test; with
  ``REPRO_TRACE`` unset the :func:`span` context manager returns one
  shared inert object and no file handle ever opens.
* **Append-only per-pid segments.**  Each process appends JSONL records
  to its own ``trace.<pid>.jsonl`` segment under ``REPRO_TRACE_DIR``
  (single ``write`` calls of complete lines, so concurrent writers on
  one filesystem never interleave mid-record); readers are torn-line
  tolerant, exactly like the synthesis disk cache.
* **Two-phase records.**  A span writes a ``start`` line when it opens
  and an ``end`` line when it closes.  A SIGKILLed worker therefore
  leaves its unfinished attempt visible in the trace — the chaos suite
  asserts on precisely that.
* **Deterministic job spans.**  :func:`job_span_id` hashes
  ``trace_id + job_id`` so every process (runner, coordinator, any
  worker attempt) independently derives the *same* parent span id for a
  job without coordination; attempts on different machines parent under
  one job span.

Context flows through ``contextvars``, so spans nest correctly across
threads and the asyncio coordinator.
"""

from __future__ import annotations

import contextvars
import hashlib
import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "TRACE_ENV_VAR",
    "TRACE_DIR_ENV_VAR",
    "DEFAULT_TRACE_DIR",
    "tracing_enabled",
    "trace_dir",
    "span",
    "event",
    "current_traceparent",
    "attach_context",
    "format_traceparent",
    "parse_traceparent",
    "job_span_id",
    "new_trace_id",
    "record_span",
    "load_trace",
    "reset_trace_state",
]

#: Any non-empty value enables tracing (cheap guard for hot paths).
TRACE_ENV_VAR = "REPRO_TRACE"

#: Directory receiving the per-process JSONL segments.
TRACE_DIR_ENV_VAR = "REPRO_TRACE_DIR"

#: Default segment directory when tracing is on but no directory is set.
DEFAULT_TRACE_DIR = "repro-trace"


def tracing_enabled() -> bool:
    """True when ``REPRO_TRACE`` is set (cheap guard for hot paths)."""
    return bool(os.environ.get(TRACE_ENV_VAR))


def trace_dir() -> str:
    """The directory trace segments are appended under."""
    return os.environ.get(TRACE_DIR_ENV_VAR, "").strip() or DEFAULT_TRACE_DIR


# ------------------------------------------------------------------ #
# Context (trace_id, span_id) of the innermost open span.
# ------------------------------------------------------------------ #
_CONTEXT: contextvars.ContextVar[Optional[Tuple[str, str]]] = (
    contextvars.ContextVar("repro_trace_context", default=None)
)

# Per-process sink state: (pid, path, handle).  Re-opened after fork so a
# pool worker never appends through a handle inherited from its parent.
_SINK: Optional[Tuple[int, str, Any]] = None

_COUNTER = 0


def reset_trace_state() -> None:
    """Close the sink and drop the ambient context (for tests)."""
    global _SINK, _COUNTER
    if _SINK is not None:
        try:
            _SINK[2].close()
        except OSError:
            pass
    _SINK = None
    _COUNTER = 0
    _CONTEXT.set(None)


def _new_id(bits: int = 64) -> str:
    """A fresh random hex id (64-bit spans, 128-bit traces)."""
    return os.urandom(bits // 8).hex()


def new_trace_id() -> str:
    return _new_id(128)


def job_span_id(trace_id: str, job_id: str) -> str:
    """Deterministic span id for one campaign job within one trace.

    Every participant — the local runner, the coordinator, each worker
    attempt — derives the same id from the same inputs, so attempt spans
    recorded on different machines parent under a single job span with no
    runtime coordination.
    """
    digest = hashlib.sha256(f"{trace_id}:{job_id}".encode("utf-8"))
    return digest.hexdigest()[:16]


# ------------------------------------------------------------------ #
# W3C-style traceparent
# ------------------------------------------------------------------ #
def format_traceparent(trace_id: str, span_id: str) -> str:
    """``00-<trace_id>-<span_id>-01`` (version 00, sampled flag)."""
    return f"00-{trace_id}-{span_id}-01"


def parse_traceparent(header: str) -> Optional[Tuple[str, str]]:
    """Decode a traceparent into ``(trace_id, span_id)`` (None if bad)."""
    parts = (header or "").strip().split("-")
    if len(parts) != 4 or parts[0] != "00":
        return None
    trace_id, span_id = parts[1], parts[2]
    if not trace_id or not span_id:
        return None
    try:
        int(trace_id, 16), int(span_id, 16)
    except ValueError:
        return None
    return trace_id, span_id


def current_traceparent() -> str:
    """The ambient context as a traceparent header value ("" when none)."""
    context = _CONTEXT.get()
    if context is None:
        return ""
    return format_traceparent(context[0], context[1])


@contextmanager
def attach_context(traceparent: str) -> Iterator[None]:
    """Adopt a remote parent context for the duration of the block.

    This is how a pool worker or a fleet agent joins the trace of the
    submitting process: spans opened inside the block parent under the
    remote span named by ``traceparent``.  An empty or malformed value
    leaves the ambient context untouched.
    """
    parsed = parse_traceparent(traceparent) if traceparent else None
    if parsed is None:
        yield
        return
    token = _CONTEXT.set(parsed)
    try:
        yield
    finally:
        _CONTEXT.reset(token)


# ------------------------------------------------------------------ #
# Sink
# ------------------------------------------------------------------ #
def _emit(record: Dict[str, Any]) -> None:
    """Append one complete JSONL line to this process's segment."""
    global _SINK
    pid = os.getpid()
    directory = trace_dir()
    path = os.path.join(directory, f"trace.{pid}.jsonl")
    if _SINK is None or _SINK[0] != pid or _SINK[1] != path:
        if _SINK is not None:
            try:
                _SINK[2].close()
            except OSError:
                pass
        os.makedirs(directory, exist_ok=True)
        handle = open(path, "a", encoding="utf-8")
        _SINK = (pid, path, handle)
    handle = _SINK[2]
    handle.write(json.dumps(record, sort_keys=True) + "\n")
    handle.flush()


class _Span:
    """One live span; records start at open, the full record at close."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "start",
        "_mono",
        "_token",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str,
        attrs: Dict[str, Any],
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start = 0.0
        self._mono = 0.0
        self._token: Optional[contextvars.Token] = None

    def annotate(self, **attrs: Any) -> None:
        """Attach additional attributes before the span closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self.start = time.time()
        self._mono = time.monotonic()
        self._token = _CONTEXT.set((self.trace_id, self.span_id))
        record = {
            "phase": "start",
            "trace": self.trace_id,
            "span": self.span_id,
            "name": self.name,
            "start": self.start,
            "pid": os.getpid(),
        }
        if self.parent_id:
            record["parent"] = self.parent_id
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        _emit(record)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _CONTEXT.reset(self._token)
            self._token = None
        record = {
            "phase": "end",
            "trace": self.trace_id,
            "span": self.span_id,
            "name": self.name,
            "start": self.start,
            "duration": time.monotonic() - self._mono,
            "pid": os.getpid(),
        }
        if self.parent_id:
            record["parent"] = self.parent_id
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        _emit(record)


class _NoopSpan:
    """The shared inert span handed out while tracing is disabled."""

    __slots__ = ()
    trace_id = ""
    span_id = ""
    parent_id = ""
    name = ""

    def annotate(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, span_id: str = "", parent: str = "", **attrs: Any):
    """Open a span under the ambient context (a no-op when disabled).

    ``span_id`` pins a deterministic id (see :func:`job_span_id`);
    ``parent`` overrides the ambient parent (a traceparent or bare span
    id).  Attributes must be JSON-serialisable.
    """
    if not tracing_enabled():
        return _NOOP
    context = _CONTEXT.get()
    if parent:
        parsed = parse_traceparent(parent)
        if parsed is not None:
            context = parsed
        elif context is not None:
            context = (context[0], parent)
    if context is None:
        trace_id, parent_id = new_trace_id(), ""
    else:
        trace_id, parent_id = context
    return _Span(name, trace_id, span_id or _new_id(), parent_id, dict(attrs))


def record_span(
    name: str,
    span_id: str,
    start: float,
    duration: float,
    parent: str = "",
    trace_id: str = "",
    **attrs: Any,
) -> None:
    """Emit one complete span record reconstructed after the fact.

    The campaign runner and the coordinator use this for *job* spans: a
    job's lifetime (first claim to terminal state) is only known once it
    ends, so the span is written in one piece with a pinned deterministic
    ``span_id`` (:func:`job_span_id`) that the attempt spans recorded by
    workers already parent under.  No-op when tracing is disabled.
    """
    if not tracing_enabled():
        return
    context = _CONTEXT.get()
    if not trace_id:
        trace_id = context[0] if context is not None else new_trace_id()
    if not parent and context is not None:
        parent = context[1]
    record: Dict[str, Any] = {
        "phase": "end",
        "trace": trace_id,
        "span": span_id,
        "name": name,
        "start": start,
        "duration": duration,
        "pid": os.getpid(),
    }
    if parent:
        record["parent"] = parent
    if attrs:
        record["attrs"] = attrs
    _emit(record)


def event(name: str, **attrs: Any) -> None:
    """Record a point event under the ambient context (no-op when off)."""
    if not tracing_enabled():
        return
    context = _CONTEXT.get()
    trace_id, parent_id = context if context is not None else (new_trace_id(), "")
    record: Dict[str, Any] = {
        "phase": "event",
        "trace": trace_id,
        "span": _new_id(),
        "name": name,
        "start": time.time(),
        "pid": os.getpid(),
    }
    if parent_id:
        record["parent"] = parent_id
    if attrs:
        record["attrs"] = attrs
    _emit(record)


# ------------------------------------------------------------------ #
# Loading
# ------------------------------------------------------------------ #
def load_trace(directory: Optional[str] = None) -> List[Dict[str, Any]]:
    """Read every record from a trace directory's segments.

    ``start``/``end`` pairs are merged into one record per span (an
    unfinished span — e.g. a SIGKILLed attempt — survives as its start
    record with ``"unfinished": True``); ``event`` records pass through.
    Torn trailing lines (a writer died mid-append) are skipped.
    """
    directory = directory or trace_dir()
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return []
    spans: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    events: List[Dict[str, Any]] = []
    for name in names:
        if not (name.startswith("trace.") and name.endswith(".jsonl")):
            continue
        try:
            with open(os.path.join(directory, name), "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail of a crashed writer
            if not isinstance(record, dict) or "span" not in record:
                continue
            phase = record.get("phase")
            if phase == "event":
                events.append(record)
                continue
            key = f"{record.get('trace')}:{record['span']}"
            if key not in spans:
                spans[key] = record
                order.append(key)
            elif phase == "end":
                spans[key] = record  # end supersedes start
    merged: List[Dict[str, Any]] = []
    for key in order:
        record = spans[key]
        if record.get("phase") == "start":
            record = dict(record)
            record["unfinished"] = True
            record.setdefault("duration", 0.0)
        merged.append(record)
    merged.extend(events)
    merged.sort(key=lambda r: (r.get("start", 0.0), r.get("span", "")))
    return merged

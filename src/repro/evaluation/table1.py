"""Reproduction of Table I: area comparison for merged S-box circuits.

For every (family, number of merged S-boxes) configuration the harness

1. runs the Phase II genetic algorithm (fitness = synthesised area),
2. evaluates an equal budget of random pin assignments (the baseline),
3. re-synthesises the GA winner and applies Phase III camouflage technology
   mapping, validating that every viable function remains realisable,

and reports the four areas plus the improvement of GA+TM over the best
random assignment — the same columns as the paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..flow.obfuscate import ObfuscationResult, obfuscate_with_assignment
from ..flow.report import AreaRow, format_table
from ..ga.pinopt import PinAssignmentProblem, optimize_pin_assignment
from ..ga.random_search import RandomSearchResult, random_pin_search
from .workloads import (
    DES_FAMILY,
    PRESENT_FAMILY,
    ExperimentProfile,
    get_profile,
    workload_functions,
)

__all__ = ["Table1Entry", "run_table1_entry", "run_table1", "table1_text"]


@dataclass
class Table1Entry:
    """Everything measured for one Table I row."""

    row: AreaRow
    random_result: RandomSearchResult
    obfuscation: ObfuscationResult
    ga_evaluations: int
    verification_ok: bool


def run_table1_entry(
    family: str,
    count: int,
    profile: Optional[ExperimentProfile] = None,
    seed: int = 1,
    verify: bool = True,
) -> Table1Entry:
    """Run one row of Table I (one merged S-box configuration)."""
    profile = profile or get_profile()
    functions = workload_functions(family, count)

    optimization = optimize_pin_assignment(
        functions,
        parameters=profile.ga_parameters(seed=seed),
        effort=profile.fitness_effort,
        final_effort=profile.final_effort,
    )
    ga_area = optimization.best_area

    num_random = profile.random_samples or optimization.evaluations
    problem = PinAssignmentProblem(functions, effort=profile.fitness_effort)
    random_result = random_pin_search(
        functions,
        num_samples=max(1, num_random),
        seed=seed + 1000,
        problem=problem,
    )

    obfuscation = obfuscate_with_assignment(
        functions,
        assignment=optimization.best_assignment,
        effort=profile.final_effort,
        verify=verify,
    )
    obfuscation.pin_optimization = optimization

    row = AreaRow(
        circuit=family,
        num_functions=count,
        random_avg=random_result.average_area,
        random_best=random_result.best_area,
        ga_area=ga_area,
        ga_tm_area=obfuscation.camouflaged_area,
    )
    return Table1Entry(
        row=row,
        random_result=random_result,
        obfuscation=obfuscation,
        ga_evaluations=optimization.evaluations,
        verification_ok=obfuscation.verification.all_realisable if verify else True,
    )


def run_table1(
    profile: Optional[ExperimentProfile] = None,
    families: Optional[Sequence[Tuple[str, int]]] = None,
    seed: int = 1,
    verify: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Table1Entry]:
    """Run the full Table I sweep for the selected profile."""
    profile = profile or get_profile()
    if families is None:
        families = [(PRESENT_FAMILY, count) for count in profile.present_counts]
        families += [(DES_FAMILY, count) for count in profile.des_counts]
    entries: List[Table1Entry] = []
    for family, count in families:
        if progress is not None:
            progress(f"Table I: {family} x{count}")
        entries.append(
            run_table1_entry(family, count, profile=profile, seed=seed, verify=verify)
        )
    return entries


def table1_text(entries: Sequence[Table1Entry], profile_name: str = "") -> str:
    """Render the measured rows in the layout of the paper's Table I."""
    title = "Table I: Area comparison for merged S-box circuits"
    if profile_name:
        title += f" (profile: {profile_name})"
    return format_table([entry.row for entry in entries], title=title)

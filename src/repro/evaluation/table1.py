"""Reproduction of Table I: area comparison for merged S-box circuits.

For every (family, number of merged S-boxes) configuration the harness

1. runs the Phase II genetic algorithm (fitness = synthesised area),
2. evaluates an equal budget of random pin assignments (the baseline),
3. re-synthesises the GA winner and applies Phase III camouflage technology
   mapping, validating that every viable function remains realisable,

and reports the four areas plus the improvement of GA+TM over the best
random assignment — the same columns as the paper's Table I.

``jobs`` controls parallelism: :func:`run_table1_entry` spreads the fitness
synthesis runs of one configuration over worker processes, while
:func:`run_table1` evaluates whole rows (one merged-S-box configuration
each) concurrently.  Every row is seeded independently, so the sweep result
is bit-identical for any ``jobs`` setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..flow.obfuscate import ObfuscationResult, obfuscate_with_assignment
from ..flow.report import AreaRow, format_table
from ..ga.pinopt import PinAssignmentProblem, optimize_pin_assignment
from ..ga.random_search import RandomSearchResult, random_pin_search
from ..parallel import resolve_jobs
from .workloads import (
    DES_FAMILY,
    PRESENT_FAMILY,
    ExperimentProfile,
    get_profile,
    workload_functions,
)

__all__ = ["Table1Entry", "run_table1_entry", "run_table1", "table1_text"]


@dataclass
class Table1Entry:
    """Everything measured for one Table I row."""

    row: AreaRow
    random_result: RandomSearchResult
    obfuscation: ObfuscationResult
    ga_evaluations: int
    verification_ok: bool


def run_table1_entry(
    family: str,
    count: int,
    profile: Optional[ExperimentProfile] = None,
    seed: int = 1,
    verify: bool = True,
    jobs: Optional[int] = None,
) -> Table1Entry:
    """Run one row of Table I (one merged S-box configuration).

    ``jobs`` (default: the ``REPRO_JOBS`` environment variable, else serial)
    parallelises the GA fitness evaluations and the random baseline of this
    single configuration; the result is identical for every ``jobs`` value.
    """
    profile = profile or get_profile()
    jobs = resolve_jobs(jobs)
    functions = workload_functions(family, count)

    optimization = optimize_pin_assignment(
        functions,
        parameters=profile.ga_parameters(seed=seed),
        effort=profile.fitness_effort,
        final_effort=profile.final_effort,
        jobs=jobs,
    )
    ga_area = optimization.best_area

    num_random = profile.random_samples or optimization.evaluations
    problem = PinAssignmentProblem(functions, effort=profile.fitness_effort)
    random_result = random_pin_search(
        functions,
        num_samples=max(1, num_random),
        seed=seed + 1000,
        problem=problem,
        jobs=jobs,
    )

    obfuscation = obfuscate_with_assignment(
        functions,
        assignment=optimization.best_assignment,
        effort=profile.final_effort,
        verify=verify,
    )
    obfuscation.pin_optimization = optimization

    row = AreaRow(
        circuit=family,
        num_functions=count,
        random_avg=random_result.average_area,
        random_best=random_result.best_area,
        ga_area=ga_area,
        ga_tm_area=obfuscation.camouflaged_area,
    )
    return Table1Entry(
        row=row,
        random_result=random_result,
        obfuscation=obfuscation,
        ga_evaluations=optimization.evaluations,
        verification_ok=obfuscation.verification.all_realisable if verify else True,
    )


def run_table1(
    profile: Optional[ExperimentProfile] = None,
    families: Optional[Sequence[Tuple[str, int]]] = None,
    seed: int = 1,
    verify: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = None,
) -> List[Table1Entry]:
    """Run the full Table I sweep for the selected profile.

    Thin wrapper over the campaign runner: the sweep is expressed as one
    ``table1_row`` job per configuration (see
    :meth:`repro.scenarios.campaign.CampaignSpec.table1`) and executed over
    the worker pool.  With ``jobs > 1`` the rows (each an independent,
    seeded experiment) are evaluated concurrently; entries are returned in
    sweep order and are identical to a serial run.
    """
    from ..scenarios.campaign import CampaignRunner, CampaignSpec

    profile = profile or get_profile()
    jobs = resolve_jobs(jobs)
    if families is None:
        families = [(PRESENT_FAMILY, count) for count in profile.present_counts]
        families += [(DES_FAMILY, count) for count in profile.des_counts]
    if progress is not None:
        suffix = f" (queued, jobs={jobs})" if jobs > 1 and len(families) > 1 else ""
        for family, count in families:
            progress(f"Table I: {family} x{count}{suffix}")
    spec = CampaignSpec.table1(profile, families, seed=seed, verify=verify)
    # fail_fast: a failing row aborts the sweep at once (and propagates its
    # own exception type), exactly as the pre-runner loop did.
    outcome = CampaignRunner(spec, jobs=jobs).run(fail_fast=True)
    entries: List[Table1Entry] = []
    for result in outcome.results:
        if not result.ok:
            # Re-raise the original exception so callers see the same type
            # the pre-runner sweep loop raised (`except ValueError` etc.
            # keep working); the runner only swallows it per-job so that a
            # campaign with a state dir can record its siblings.
            if result.exception is not None:
                raise result.exception
            raise RuntimeError(f"Table I job {result.job_id} failed: {result.error}")
        entries.append(result.value)
    return entries


def table1_text(entries: Sequence[Table1Entry], profile_name: str = "") -> str:
    """Render the measured rows in the layout of the paper's Table I."""
    title = "Table I: Area comparison for merged S-box circuits"
    if profile_name:
        title += f" (profile: {profile_name})"
    return format_table([entry.row for entry in entries], title=title)

"""Reproduction of Table I: area comparison for merged S-box circuits.

For every (family, number of merged S-boxes) configuration the harness

1. runs the Phase II genetic algorithm (fitness = synthesised area),
2. evaluates an equal budget of random pin assignments (the baseline),
3. re-synthesises the GA winner and applies Phase III camouflage technology
   mapping, validating that every viable function remains realisable,

and reports the four areas plus the improvement of GA+TM over the best
random assignment — the same columns as the paper's Table I.

``jobs`` controls parallelism: :func:`run_table1_entry` spreads the fitness
synthesis runs of one configuration over worker processes, while
:func:`run_table1` evaluates whole rows (one merged-S-box configuration
each) concurrently.  Every row is seeded independently, so the sweep result
is bit-identical for any ``jobs`` setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..flow.obfuscate import ObfuscationResult, obfuscate_with_assignment
from ..flow.report import AreaRow, format_table
from ..ga.pinopt import PinAssignmentProblem, optimize_pin_assignment
from ..ga.random_search import RandomSearchResult, random_pin_search
from ..parallel import parallel_map, resolve_jobs
from .workloads import (
    DES_FAMILY,
    PRESENT_FAMILY,
    ExperimentProfile,
    get_profile,
    workload_functions,
)

__all__ = ["Table1Entry", "run_table1_entry", "run_table1", "table1_text"]


@dataclass
class Table1Entry:
    """Everything measured for one Table I row."""

    row: AreaRow
    random_result: RandomSearchResult
    obfuscation: ObfuscationResult
    ga_evaluations: int
    verification_ok: bool


def run_table1_entry(
    family: str,
    count: int,
    profile: Optional[ExperimentProfile] = None,
    seed: int = 1,
    verify: bool = True,
    jobs: Optional[int] = None,
) -> Table1Entry:
    """Run one row of Table I (one merged S-box configuration).

    ``jobs`` (default: the ``REPRO_JOBS`` environment variable, else serial)
    parallelises the GA fitness evaluations and the random baseline of this
    single configuration; the result is identical for every ``jobs`` value.
    """
    profile = profile or get_profile()
    jobs = resolve_jobs(jobs)
    functions = workload_functions(family, count)

    optimization = optimize_pin_assignment(
        functions,
        parameters=profile.ga_parameters(seed=seed),
        effort=profile.fitness_effort,
        final_effort=profile.final_effort,
        jobs=jobs,
    )
    ga_area = optimization.best_area

    num_random = profile.random_samples or optimization.evaluations
    problem = PinAssignmentProblem(functions, effort=profile.fitness_effort)
    random_result = random_pin_search(
        functions,
        num_samples=max(1, num_random),
        seed=seed + 1000,
        problem=problem,
        jobs=jobs,
    )

    obfuscation = obfuscate_with_assignment(
        functions,
        assignment=optimization.best_assignment,
        effort=profile.final_effort,
        verify=verify,
    )
    obfuscation.pin_optimization = optimization

    row = AreaRow(
        circuit=family,
        num_functions=count,
        random_avg=random_result.average_area,
        random_best=random_result.best_area,
        ga_area=ga_area,
        ga_tm_area=obfuscation.camouflaged_area,
    )
    return Table1Entry(
        row=row,
        random_result=random_result,
        obfuscation=obfuscation,
        ga_evaluations=optimization.evaluations,
        verification_ok=obfuscation.verification.all_realisable if verify else True,
    )


def _run_entry_task(task: Tuple) -> Table1Entry:
    """Worker-process task: run one Table I row (module-level so it pickles).

    ``entry_jobs`` is the leftover worker budget this row may use for its own
    fitness evaluations (nested pools are supported; 1 means serial)."""
    family, count, profile, seed, verify, entry_jobs = task
    return run_table1_entry(
        family, count, profile=profile, seed=seed, verify=verify, jobs=entry_jobs
    )


def run_table1(
    profile: Optional[ExperimentProfile] = None,
    families: Optional[Sequence[Tuple[str, int]]] = None,
    seed: int = 1,
    verify: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = None,
) -> List[Table1Entry]:
    """Run the full Table I sweep for the selected profile.

    With ``jobs > 1`` the rows of the sweep (each an independent, seeded
    experiment) are evaluated concurrently in worker processes; entries are
    returned in sweep order and are identical to a serial run.
    """
    profile = profile or get_profile()
    jobs = resolve_jobs(jobs)
    if families is None:
        families = [(PRESENT_FAMILY, count) for count in profile.present_counts]
        families += [(DES_FAMILY, count) for count in profile.des_counts]
    if jobs > 1 and len(families) > 1:
        if progress is not None:
            for family, count in families:
                progress(f"Table I: {family} x{count} (queued, jobs={jobs})")
        # Rows run in parallel; any leftover worker budget beyond the row
        # count is handed down to each row's own fitness evaluation.
        entry_jobs = max(1, jobs // len(families))
        tasks = [
            (family, count, profile, seed, verify, entry_jobs)
            for family, count in families
        ]
        return parallel_map(_run_entry_task, tasks, jobs=jobs)
    entries: List[Table1Entry] = []
    for family, count in families:
        if progress is not None:
            progress(f"Table I: {family} x{count}")
        entries.append(
            run_table1_entry(
                family, count, profile=profile, seed=seed, verify=verify, jobs=jobs
            )
        )
    return entries


def table1_text(entries: Sequence[Table1Entry], profile_name: str = "") -> str:
    """Render the measured rows in the layout of the paper's Table I."""
    title = "Table I: Area comparison for merged S-box circuits"
    if profile_name:
        title += f" (profile: {profile_name})"
    return format_table([entry.row for entry in entries], title=title)

"""Experiment workloads and effort profiles.

The paper's evaluation (Table I and Fig. 4) uses GA budgets of roughly 10k
synthesis runs per circuit, which is hours of work for a pure-Python
synthesiser.  The benchmark harness therefore supports profiles that scale
the GA budget and the sweep while preserving every comparison the paper
makes.  The profile is selected with the ``REPRO_PROFILE`` environment
variable (``quick`` — the default, ``medium``, or ``paper``).

The worker count of the parallel harnesses (``--jobs`` on the CLI, the
``jobs`` arguments of :mod:`repro.evaluation.table1` and
:mod:`repro.evaluation.figure4`) defaults to the ``REPRO_JOBS`` environment
variable via :func:`resolve_jobs`; seeded results are identical for every
``jobs`` value.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

from ..ga.engine import GAParameters
from ..parallel import JOBS_ENV_VAR, resolve_jobs
from ..scenarios.registry import workload_functions

__all__ = [
    "ExperimentProfile",
    "PROFILES",
    "get_profile",
    "workload_functions",
    "resolve_jobs",
    "JOBS_ENV_VAR",
    "PRESENT_FAMILY",
    "DES_FAMILY",
    "AES_FAMILY",
]

PRESENT_FAMILY = "PRESENT"
DES_FAMILY = "DES"
AES_FAMILY = "AES"

#: Environment variable selecting the experiment profile.
PROFILE_ENV_VAR = "REPRO_PROFILE"


@dataclass(frozen=True)
class ExperimentProfile:
    """Scaled version of the paper's experimental setup."""

    name: str
    #: Numbers of merged S-boxes per family for the Table I sweep.
    present_counts: Tuple[int, ...]
    des_counts: Tuple[int, ...]
    #: GA budget per family.
    ga_population: int
    ga_generations: int
    #: Number of random assignments for Fig. 4a / Table I random columns;
    #: 0 means "use the same number of evaluations the GA spent" (the paper's
    #: equal-budget comparison).
    random_samples: int
    #: Synthesis effort used inside the fitness loop.
    fitness_effort: str = "fast"
    #: Synthesis effort for the final (reported) synthesis runs.
    final_effort: str = "standard"
    #: Workload for Fig. 4 (number of merged PRESENT-style S-boxes).
    figure4_sbox_count: int = 8

    def ga_parameters(self, seed: int = 1) -> GAParameters:
        """GA hyper-parameters for this profile."""
        return GAParameters(
            population_size=self.ga_population,
            generations=self.ga_generations,
            seed=seed,
        )


PROFILES: Dict[str, ExperimentProfile] = {
    "quick": ExperimentProfile(
        name="quick",
        present_counts=(2, 4, 8),
        des_counts=(2,),
        ga_population=6,
        ga_generations=4,
        random_samples=0,
    ),
    "medium": ExperimentProfile(
        name="medium",
        present_counts=(2, 4, 8, 16),
        des_counts=(2, 4),
        ga_population=12,
        ga_generations=10,
        random_samples=0,
    ),
    "paper": ExperimentProfile(
        name="paper",
        present_counts=(2, 4, 8, 16),
        des_counts=(2, 4, 8),
        ga_population=48,
        ga_generations=200,
        random_samples=9726,
    ),
}


def get_profile(name: str = "") -> ExperimentProfile:
    """Return the requested profile (or the one selected by the environment)."""
    selected = name or os.environ.get(PROFILE_ENV_VAR, "quick")
    try:
        return PROFILES[selected]
    except KeyError as exc:
        raise ValueError(
            f"unknown profile {selected!r}; available: {sorted(PROFILES)}"
        ) from exc


# ``workload_functions`` used to be an ad-hoc two-entry table here; it now
# lives in :mod:`repro.scenarios.registry` (re-exported above) where any
# registered family — PRESENT, DES, AES, RANDOM, BLIF, or user-defined —
# resolves through the same call.  The PRESENT/DES results are unchanged.

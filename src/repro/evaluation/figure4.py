"""Reproduction of Figure 4: random pin assignments vs the genetic algorithm.

The workload is the merged circuit of 8 PRESENT-style S-boxes.

* Fig. 4a shows the distribution (histogram) of synthesised areas over a
  batch of random pin assignments.
* Fig. 4b shows the GA's best-so-far area per generation, with the average
  and best of the random batch drawn as horizontal reference lines; the GA
  curve dropping below the best-random line is the figure's point.

The harness returns the underlying series so the benchmark can print the
same rows the figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..ga.pinopt import PinAssignmentProblem, optimize_pin_assignment
from ..ga.random_search import RandomSearchResult, random_pin_search
from ..parallel import resolve_jobs
from .workloads import PRESENT_FAMILY, ExperimentProfile, get_profile, workload_functions

__all__ = ["Figure4aData", "Figure4bData", "run_figure4a", "run_figure4b"]


@dataclass
class Figure4aData:
    """The histogram data behind Fig. 4a."""

    areas: List[float]
    histogram: List[Tuple[float, int]]
    average: float
    best: float
    worst: float

    def to_text(self) -> str:
        """Render the histogram as rows of ``bin_start count``."""
        lines = ["Fig. 4a: area distribution of random pin assignments"]
        lines.append(f"{'area bin (GE)':>14} {'count':>6}")
        for bin_start, count in self.histogram:
            lines.append(f"{bin_start:>14.0f} {count:>6}")
        lines.append(f"avg={self.average:.1f} best={self.best:.1f} worst={self.worst:.1f}")
        return "\n".join(lines)


@dataclass
class Figure4bData:
    """The convergence data behind Fig. 4b."""

    generations: List[int]
    best_so_far: List[float]
    generation_best: List[float]
    generation_average: List[float]
    random_average: float
    random_best: float
    ga_evaluations: int
    random_evaluations: int

    @property
    def ga_beats_best_random(self) -> bool:
        """True when the GA's final best is at or below the best random area."""
        return self.best_so_far[-1] <= self.random_best

    def crossover_generation(self) -> Optional[int]:
        """First generation whose best-so-far is at or below the best random area."""
        for generation, area in zip(self.generations, self.best_so_far):
            if area <= self.random_best:
                return generation
        return None

    def to_text(self) -> str:
        """Render the series the figure plots."""
        lines = ["Fig. 4b: GA convergence vs random baseline"]
        lines.append(
            f"random: avg={self.random_average:.1f} GE, best={self.random_best:.1f} GE "
            f"({self.random_evaluations} samples)"
        )
        lines.append(f"{'gen':>5} {'best-so-far':>12} {'gen best':>10} {'gen avg':>10}")
        for index, generation in enumerate(self.generations):
            lines.append(
                f"{generation:>5} {self.best_so_far[index]:>12.1f} "
                f"{self.generation_best[index]:>10.1f} {self.generation_average[index]:>10.1f}"
            )
        crossover = self.crossover_generation()
        lines.append(
            "GA surpasses best random at generation "
            + (str(crossover) if crossover is not None else "— (not within budget)")
        )
        return "\n".join(lines)


def _figure4_functions(profile: ExperimentProfile):
    return workload_functions(PRESENT_FAMILY, profile.figure4_sbox_count)


def compute_figure4a(
    profile: Optional[ExperimentProfile] = None,
    num_samples: Optional[int] = None,
    seed: int = 11,
    bin_width: float = 5.0,
    jobs: Optional[int] = None,
) -> Figure4aData:
    """Evaluate random pin assignments for the Fig. 4a histogram.

    This is the computational core the campaign runner's ``figure4a`` job
    kind executes; :func:`run_figure4a` routes through the runner.

    ``jobs`` (default: ``REPRO_JOBS``, else serial) parallelises the
    synthesis of the random batch; the histogram is identical either way.
    """
    profile = profile or get_profile()
    jobs = resolve_jobs(jobs)
    functions = _figure4_functions(profile)
    if num_samples is None:
        num_samples = profile.random_samples or (
            profile.ga_population * (profile.ga_generations + 1)
        )
    result = random_pin_search(
        functions,
        num_samples=num_samples,
        seed=seed,
        effort=profile.fitness_effort,
        jobs=jobs,
    )
    return Figure4aData(
        areas=result.areas,
        histogram=result.histogram(bin_width=bin_width),
        average=result.average_area,
        best=result.best_area,
        worst=result.worst_area,
    )


def compute_figure4b(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 11,
    jobs: Optional[int] = None,
) -> Figure4bData:
    """Run the GA and the equal-budget random baseline for Fig. 4b.

    This is the computational core the campaign runner's ``figure4b`` job
    kind executes; :func:`run_figure4b` routes through the runner.

    ``jobs`` (default: ``REPRO_JOBS``, else serial) parallelises both the GA
    fitness evaluations and the random baseline; the seeded series are
    identical for every ``jobs`` value.
    """
    profile = profile or get_profile()
    jobs = resolve_jobs(jobs)
    functions = _figure4_functions(profile)

    optimization = optimize_pin_assignment(
        functions,
        parameters=profile.ga_parameters(seed=seed),
        effort=profile.fitness_effort,
        final_effort=profile.fitness_effort,
        jobs=jobs,
    )
    history = optimization.ga_result.history

    num_random = profile.random_samples or optimization.evaluations
    random_result = random_pin_search(
        functions,
        num_samples=max(1, num_random),
        seed=seed + 1000,
        effort=profile.fitness_effort,
        jobs=jobs,
    )

    return Figure4bData(
        generations=[stats.generation for stats in history],
        best_so_far=[stats.best_so_far for stats in history],
        generation_best=[stats.best for stats in history],
        generation_average=[stats.average for stats in history],
        random_average=random_result.average_area,
        random_best=random_result.best_area,
        ga_evaluations=optimization.evaluations,
        random_evaluations=random_result.evaluations,
    )


def _run_single_figure_job(kind: str, params: dict, jobs: Optional[int]):
    """Run one figure job through the campaign runner and unwrap the value."""
    from ..scenarios.campaign import CampaignJob, CampaignRunner, CampaignSpec

    spec = CampaignSpec(name=kind, jobs=[CampaignJob(kind, kind, params)])
    outcome = CampaignRunner(spec, jobs=resolve_jobs(jobs)).run(fail_fast=True)
    result = outcome.results[0]
    if not result.ok:
        # Re-raise the original exception so failure types are unchanged
        # from the pre-runner implementations.
        if result.exception is not None:
            raise result.exception
        raise RuntimeError(f"{kind} job failed: {result.error}")
    return result.value


def run_figure4a(
    profile: Optional[ExperimentProfile] = None,
    num_samples: Optional[int] = None,
    seed: int = 11,
    bin_width: float = 5.0,
    jobs: Optional[int] = None,
) -> Figure4aData:
    """Fig. 4a through the campaign runner (see :func:`compute_figure4a`)."""
    profile = profile or get_profile()
    from ..scenarios.campaign import _profile_to_dict

    params = {
        "profile": _profile_to_dict(profile),
        "seed": seed,
        "num_samples": num_samples,
        "bin_width": bin_width,
    }
    return _run_single_figure_job("figure4a", params, jobs)


def run_figure4b(
    profile: Optional[ExperimentProfile] = None,
    seed: int = 11,
    jobs: Optional[int] = None,
) -> Figure4bData:
    """Fig. 4b through the campaign runner (see :func:`compute_figure4b`)."""
    profile = profile or get_profile()
    from ..scenarios.campaign import _profile_to_dict

    params = {"profile": _profile_to_dict(profile), "seed": seed}
    return _run_single_figure_job("figure4b", params, jobs)

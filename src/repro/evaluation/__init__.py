"""Experiment harnesses reproducing the paper's Table I and Figure 4."""

from .figure4 import Figure4aData, Figure4bData, run_figure4a, run_figure4b
from .table1 import Table1Entry, run_table1, run_table1_entry, table1_text
from .workloads import (
    DES_FAMILY,
    JOBS_ENV_VAR,
    PRESENT_FAMILY,
    PROFILES,
    ExperimentProfile,
    get_profile,
    resolve_jobs,
    workload_functions,
)

__all__ = [
    "ExperimentProfile",
    "PROFILES",
    "get_profile",
    "workload_functions",
    "resolve_jobs",
    "JOBS_ENV_VAR",
    "PRESENT_FAMILY",
    "DES_FAMILY",
    "Table1Entry",
    "run_table1",
    "run_table1_entry",
    "table1_text",
    "Figure4aData",
    "Figure4bData",
    "run_figure4a",
    "run_figure4b",
]

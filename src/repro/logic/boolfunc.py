"""Multi-output Boolean functions.

A :class:`BoolFunction` bundles several :class:`~repro.logic.truthtable.TruthTable`
outputs over a shared input space, together with optional input/output names.
It is the common currency between the S-box data, the merged-circuit
construction (Phase I), netlist simulation, and the verification code.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from .truthtable import TruthTable

__all__ = ["BoolFunction"]


class BoolFunction:
    """An immutable multi-output Boolean function."""

    __slots__ = ("_outputs", "_num_inputs", "_name", "_input_names", "_output_names")

    def __init__(
        self,
        outputs: Sequence[TruthTable],
        name: str = "f",
        input_names: Optional[Sequence[str]] = None,
        output_names: Optional[Sequence[str]] = None,
    ):
        if not outputs:
            raise ValueError("a BoolFunction needs at least one output")
        num_inputs = outputs[0].num_vars
        for table in outputs:
            if table.num_vars != num_inputs:
                raise ValueError("all outputs must share the same input space")
        self._outputs: Tuple[TruthTable, ...] = tuple(outputs)
        self._num_inputs = num_inputs
        self._name = name
        if input_names is None:
            input_names = [f"i[{k}]" for k in range(num_inputs)]
        if output_names is None:
            output_names = [f"o[{k}]" for k in range(len(outputs))]
        if len(input_names) != num_inputs:
            raise ValueError("one name per input is required")
        if len(output_names) != len(outputs):
            raise ValueError("one name per output is required")
        self._input_names = tuple(input_names)
        self._output_names = tuple(output_names)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_lookup(
        cls,
        table: Sequence[int],
        num_inputs: int,
        num_outputs: int,
        name: str = "f",
    ) -> "BoolFunction":
        """Build a function from a lookup table of output words.

        ``table[x]`` is the ``num_outputs``-bit output word for input word
        ``x`` (bit 0 of the word is output 0).  This is the natural format
        for S-boxes.
        """
        if len(table) != 1 << num_inputs:
            raise ValueError(
                f"lookup table must have {1 << num_inputs} entries, got {len(table)}"
            )
        limit = 1 << num_outputs
        outputs = []
        for out_index in range(num_outputs):
            bits = 0
            for row, word in enumerate(table):
                if not 0 <= word < limit:
                    raise ValueError(f"entry {word} does not fit in {num_outputs} bits")
                if (word >> out_index) & 1:
                    bits |= 1 << row
            outputs.append(TruthTable(num_inputs, bits))
        return cls(outputs, name=name)

    @classmethod
    def from_callable(
        cls,
        num_inputs: int,
        num_outputs: int,
        func: Callable[[int], int],
        name: str = "f",
    ) -> "BoolFunction":
        """Build a function from a word-level callable ``x -> y``."""
        table = [func(x) for x in range(1 << num_inputs)]
        return cls.from_lookup(table, num_inputs, num_outputs, name=name)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Human-readable name of the function."""
        return self._name

    @property
    def num_inputs(self) -> int:
        """Number of input bits."""
        return self._num_inputs

    @property
    def num_outputs(self) -> int:
        """Number of output bits."""
        return len(self._outputs)

    @property
    def outputs(self) -> Tuple[TruthTable, ...]:
        """The per-output truth tables."""
        return self._outputs

    @property
    def input_names(self) -> Tuple[str, ...]:
        """Names of the inputs, in variable order."""
        return self._input_names

    @property
    def output_names(self) -> Tuple[str, ...]:
        """Names of the outputs, in output order."""
        return self._output_names

    def output(self, index: int) -> TruthTable:
        """Return the truth table of output ``index``."""
        return self._outputs[index]

    def evaluate_word(self, word: int) -> int:
        """Evaluate the function on an input word, returning the output word."""
        if not 0 <= word < (1 << self._num_inputs):
            raise ValueError("input word out of range")
        result = 0
        for out_index, table in enumerate(self._outputs):
            if table.value_at(word):
                result |= 1 << out_index
        return result

    def lookup_table(self) -> List[int]:
        """Return the word-level lookup table (inverse of :meth:`from_lookup`)."""
        return [self.evaluate_word(word) for word in range(1 << self._num_inputs)]

    def is_permutation(self) -> bool:
        """Return True when the function is a bijection on equal-width words."""
        if self._num_inputs != self.num_outputs:
            return False
        table = self.lookup_table()
        return sorted(table) == list(range(1 << self._num_inputs))

    # ------------------------------------------------------------------ #
    # Pin re-assignment (Phase II degrees of freedom)
    # ------------------------------------------------------------------ #
    def permute_inputs(self, permutation: Sequence[int]) -> "BoolFunction":
        """Relabel the inputs; ``permutation[i] = j`` moves old input i to slot j."""
        outputs = [table.permute_inputs(permutation) for table in self._outputs]
        names = list(self._input_names)
        new_names = [""] * self._num_inputs
        for old, new in enumerate(permutation):
            new_names[new] = names[old]
        return BoolFunction(
            outputs,
            name=self._name,
            input_names=new_names,
            output_names=self._output_names,
        )

    def permute_outputs(self, permutation: Sequence[int]) -> "BoolFunction":
        """Relabel the outputs; ``permutation[i] = j`` moves old output i to slot j."""
        if sorted(permutation) != list(range(self.num_outputs)):
            raise ValueError("permutation must be a permutation of the output indices")
        outputs: List[Optional[TruthTable]] = [None] * self.num_outputs
        names: List[str] = [""] * self.num_outputs
        for old, new in enumerate(permutation):
            outputs[new] = self._outputs[old]
            names[new] = self._output_names[old]
        return BoolFunction(
            [table for table in outputs if table is not None],
            name=self._name,
            input_names=self._input_names,
            output_names=names,
        )

    def rename(self, name: str) -> "BoolFunction":
        """Return a copy with a different display name."""
        return BoolFunction(
            self._outputs,
            name=name,
            input_names=self._input_names,
            output_names=self._output_names,
        )

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoolFunction):
            return NotImplemented
        return self._outputs == other._outputs

    def __hash__(self) -> int:
        return hash(self._outputs)

    def __repr__(self) -> str:
        return (
            f"BoolFunction(name={self._name!r}, inputs={self._num_inputs}, "
            f"outputs={self.num_outputs})"
        )

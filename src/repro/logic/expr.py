"""Boolean expression trees.

Expressions are used in two places: as a convenient way for users and tests
to define functions symbolically (``parse_expression("(a&b)|~c")``), and as
the output format of the algebraic factoring used by the refactor synthesis
pass.  The grammar is intentionally small:

    expr    := term ('|' term)*            -- OR
    term    := factor ('&' factor)*        -- AND (also implicit by adjacency
                                              of parenthesised factors)
    factor  := '~' factor | '(' expr ')' | '0' | '1' | identifier
    xor     := '^' is accepted at the OR precedence level

Identifiers are letters/digits/underscore/brackets, e.g. ``i[3]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .truthtable import TruthTable

__all__ = [
    "Expression",
    "Var",
    "Const",
    "Not",
    "And",
    "Or",
    "Xor",
    "parse_expression",
    "expression_to_table",
]


class Expression:
    """Base class for Boolean expression nodes."""

    def variables(self) -> Tuple[str, ...]:
        """Return the sorted tuple of variable names used in the expression."""
        names: List[str] = []
        self._collect(names)
        return tuple(sorted(set(names)))

    def _collect(self, names: List[str]) -> None:
        raise NotImplementedError

    def evaluate(self, assignment: Dict[str, int]) -> int:
        """Evaluate under a name -> 0/1 assignment."""
        raise NotImplementedError

    def to_table(self, variable_order: Sequence[str]) -> TruthTable:
        """Convert to a truth table over the given variable order."""
        return expression_to_table(self, variable_order)

    def __and__(self, other: "Expression") -> "Expression":
        return And((self, other))

    def __or__(self, other: "Expression") -> "Expression":
        return Or((self, other))

    def __xor__(self, other: "Expression") -> "Expression":
        return Xor((self, other))

    def __invert__(self) -> "Expression":
        return Not(self)


@dataclass(frozen=True)
class Var(Expression):
    """A named input variable."""

    name: str

    def _collect(self, names: List[str]) -> None:
        names.append(self.name)

    def evaluate(self, assignment: Dict[str, int]) -> int:
        try:
            return 1 if assignment[self.name] else 0
        except KeyError as exc:
            raise KeyError(f"no value provided for variable {self.name!r}") from exc

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expression):
    """A Boolean constant."""

    value: int

    def _collect(self, names: List[str]) -> None:
        return None

    def evaluate(self, assignment: Dict[str, int]) -> int:
        return 1 if self.value else 0

    def __str__(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation."""

    operand: Expression

    def _collect(self, names: List[str]) -> None:
        self.operand._collect(names)

    def evaluate(self, assignment: Dict[str, int]) -> int:
        return 1 - self.operand.evaluate(assignment)

    def __str__(self) -> str:
        return f"~{_wrap(self.operand)}"


@dataclass(frozen=True)
class And(Expression):
    """Logical conjunction of two or more operands."""

    operands: Tuple[Expression, ...]

    def _collect(self, names: List[str]) -> None:
        for operand in self.operands:
            operand._collect(names)

    def evaluate(self, assignment: Dict[str, int]) -> int:
        for operand in self.operands:
            if not operand.evaluate(assignment):
                return 0
        return 1

    def __str__(self) -> str:
        return " & ".join(_wrap(operand) for operand in self.operands)


@dataclass(frozen=True)
class Or(Expression):
    """Logical disjunction of two or more operands."""

    operands: Tuple[Expression, ...]

    def _collect(self, names: List[str]) -> None:
        for operand in self.operands:
            operand._collect(names)

    def evaluate(self, assignment: Dict[str, int]) -> int:
        for operand in self.operands:
            if operand.evaluate(assignment):
                return 1
        return 0

    def __str__(self) -> str:
        return " | ".join(_wrap(operand) for operand in self.operands)


@dataclass(frozen=True)
class Xor(Expression):
    """Logical exclusive-or of two or more operands."""

    operands: Tuple[Expression, ...]

    def _collect(self, names: List[str]) -> None:
        for operand in self.operands:
            operand._collect(names)

    def evaluate(self, assignment: Dict[str, int]) -> int:
        result = 0
        for operand in self.operands:
            result ^= operand.evaluate(assignment)
        return result

    def __str__(self) -> str:
        return " ^ ".join(_wrap(operand) for operand in self.operands)


def _wrap(expression: Expression) -> str:
    if isinstance(expression, (Var, Const, Not)):
        return str(expression)
    return f"({expression})"


# ---------------------------------------------------------------------- #
# Parser
# ---------------------------------------------------------------------- #
_IDENT_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_[].")


class _Tokenizer:
    def __init__(self, text: str):
        self._text = text
        self._pos = 0

    def peek(self) -> str:
        while self._pos < len(self._text) and self._text[self._pos].isspace():
            self._pos += 1
        if self._pos >= len(self._text):
            return ""
        return self._text[self._pos]

    def next_token(self) -> str:
        char = self.peek()
        if not char:
            return ""
        if char in "&|^~()!*+":
            self._pos += 1
            return char
        if char in _IDENT_CHARS:
            start = self._pos
            while self._pos < len(self._text) and self._text[self._pos] in _IDENT_CHARS:
                self._pos += 1
            return self._text[start:self._pos]
        raise ValueError(f"unexpected character {char!r} in expression")


class _Parser:
    """Recursive-descent parser for the small Boolean grammar."""

    def __init__(self, text: str):
        self._tokens = _Tokenizer(text)
        self._lookahead = self._tokens.next_token()

    def _advance(self) -> str:
        token = self._lookahead
        self._lookahead = self._tokens.next_token()
        return token

    def parse(self) -> Expression:
        expression = self._parse_or()
        if self._lookahead:
            raise ValueError(f"unexpected trailing token {self._lookahead!r}")
        return expression

    def _parse_or(self) -> Expression:
        operands = [self._parse_xor()]
        while self._lookahead in ("|", "+"):
            self._advance()
            operands.append(self._parse_xor())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def _parse_xor(self) -> Expression:
        operands = [self._parse_and()]
        while self._lookahead == "^":
            self._advance()
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return Xor(tuple(operands))

    def _parse_and(self) -> Expression:
        operands = [self._parse_factor()]
        while self._lookahead in ("&", "*") or self._lookahead == "(" or (
            self._lookahead and self._lookahead not in "|^)+"
        ):
            if self._lookahead in ("&", "*"):
                self._advance()
            operands.append(self._parse_factor())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def _parse_factor(self) -> Expression:
        token = self._lookahead
        if token in ("~", "!"):
            self._advance()
            return Not(self._parse_factor())
        if token == "(":
            self._advance()
            inner = self._parse_or()
            if self._lookahead != ")":
                raise ValueError("missing closing parenthesis")
            self._advance()
            return inner
        if token == "0":
            self._advance()
            return Const(0)
        if token == "1":
            self._advance()
            return Const(1)
        if token and token[0] in _IDENT_CHARS:
            self._advance()
            return Var(token)
        raise ValueError(f"unexpected token {token!r} in expression")


def parse_expression(text: str) -> Expression:
    """Parse a Boolean expression string into an :class:`Expression` tree."""
    if not text.strip():
        raise ValueError("cannot parse an empty expression")
    return _Parser(text).parse()


def expression_to_table(
    expression: Expression, variable_order: Sequence[str]
) -> TruthTable:
    """Evaluate ``expression`` into a truth table over ``variable_order``.

    ``variable_order[i]`` is the name bound to truth-table variable ``i``.
    """
    missing = set(expression.variables()) - set(variable_order)
    if missing:
        raise ValueError(f"expression uses variables not in the order: {sorted(missing)}")
    num_vars = len(variable_order)
    bits = 0
    for row in range(1 << num_vars):
        assignment = {
            name: (row >> index) & 1 for index, name in enumerate(variable_order)
        }
        if expression.evaluate(assignment):
            bits |= 1 << row
    return TruthTable(num_vars, bits)

"""Single-output Boolean functions represented as packed truth tables.

A :class:`TruthTable` is an immutable value object describing a Boolean
function of ``num_vars`` inputs.  The table is packed into a Python integer:
bit ``r`` is the value of the function on the minterm whose index is ``r``,
with variable 0 occupying the least-significant bit of the minterm index.

This representation makes the Boolean connectives trivial bitwise operations
and keeps cofactoring, support analysis and composition cheap for the block
sizes that matter in this project (4 to about 12 inputs).
"""

from __future__ import annotations

from functools import reduce
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from .._bitops import (
    bit_at,
    mask_for,
    popcount,
    variable_pattern,
)

__all__ = ["TruthTable"]

#: Shared projection-function tables, keyed by ``(var, num_vars)``.  Variable
#: tables are requested extremely often (every cut-function and subtree
#: evaluation starts from them) and :class:`TruthTable` is immutable, so the
#: instances can be shared freely.  The bound keeps pathological workloads
#: from growing the cache without limit.
_VARIABLE_CACHE: dict = {}
_VARIABLE_CACHE_LIMIT = 4096


class TruthTable:
    """An immutable Boolean function of ``num_vars`` inputs."""

    __slots__ = ("_bits", "_num_vars")

    def __init__(self, num_vars: int, bits: int):
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        mask = mask_for(num_vars)
        if bits < 0:
            raise ValueError("bits must be a non-negative integer")
        if bits > mask:
            raise ValueError(
                f"truth table value 0x{bits:x} does not fit {1 << num_vars} rows"
            )
        self._bits = bits
        self._num_vars = num_vars

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def constant(cls, num_vars: int, value: bool) -> "TruthTable":
        """Return the constant-0 or constant-1 function on ``num_vars`` inputs."""
        return cls(num_vars, mask_for(num_vars) if value else 0)

    @classmethod
    def variable(cls, var: int, num_vars: int) -> "TruthTable":
        """Return the projection function ``x_var`` on ``num_vars`` inputs.

        Instances are memoised (tables are immutable), which removes the
        repeated pattern construction from the cut-enumeration hot path.
        """
        key = (var, num_vars)
        cached = _VARIABLE_CACHE.get(key)
        if cached is None:
            cached = cls(num_vars, variable_pattern(var, num_vars))
            if len(_VARIABLE_CACHE) < _VARIABLE_CACHE_LIMIT:
                _VARIABLE_CACHE[key] = cached
        return cached

    @classmethod
    def from_values(cls, values: Sequence[int]) -> "TruthTable":
        """Build a table from an explicit list of 0/1 output values.

        ``values[r]`` is the output for minterm ``r``; the length must be a
        power of two.
        """
        length = len(values)
        if length == 0 or length & (length - 1):
            raise ValueError("number of rows must be a non-zero power of two")
        num_vars = length.bit_length() - 1
        bits = 0
        for row, value in enumerate(values):
            if value not in (0, 1, True, False):
                raise ValueError("truth table values must be 0 or 1")
            if value:
                bits |= 1 << row
        return cls(num_vars, bits)

    @classmethod
    def from_minterms(cls, num_vars: int, minterms: Iterable[int]) -> "TruthTable":
        """Build a table that is 1 exactly on the listed minterm indices."""
        bits = 0
        rows = 1 << num_vars
        for minterm in minterms:
            if not 0 <= minterm < rows:
                raise ValueError(f"minterm {minterm} out of range for {num_vars} inputs")
            bits |= 1 << minterm
        return cls(num_vars, bits)

    @classmethod
    def from_function(cls, num_vars: int, func: Callable[..., int]) -> "TruthTable":
        """Build a table by evaluating ``func`` on every input combination.

        ``func`` receives ``num_vars`` positional 0/1 arguments, variable 0
        first.
        """
        bits = 0
        for row in range(1 << num_vars):
            arguments = [(row >> var) & 1 for var in range(num_vars)]
            if func(*arguments):
                bits |= 1 << row
        return cls(num_vars, bits)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_vars(self) -> int:
        """Number of input variables."""
        return self._num_vars

    @property
    def bits(self) -> int:
        """The packed table as an integer."""
        return self._bits

    @property
    def num_rows(self) -> int:
        """Number of rows, ``2 ** num_vars``."""
        return 1 << self._num_vars

    def value_at(self, minterm: int) -> int:
        """Return the function value (0/1) for the given minterm index."""
        if not 0 <= minterm < self.num_rows:
            raise ValueError(f"minterm {minterm} out of range")
        return bit_at(self._bits, minterm)

    def evaluate(self, assignment: Sequence[int]) -> int:
        """Evaluate on an explicit assignment (``assignment[i]`` is variable i)."""
        if len(assignment) != self._num_vars:
            raise ValueError(
                f"expected {self._num_vars} input values, got {len(assignment)}"
            )
        row = 0
        for var, value in enumerate(assignment):
            if value:
                row |= 1 << var
        return bit_at(self._bits, row)

    def values(self) -> List[int]:
        """Return the output column as a list of 0/1 values."""
        return [bit_at(self._bits, row) for row in range(self.num_rows)]

    def minterms(self) -> List[int]:
        """Return the list of minterm indices on which the function is 1."""
        return [row for row in range(self.num_rows) if bit_at(self._bits, row)]

    def count_ones(self) -> int:
        """Return the number of minterms mapped to 1."""
        return popcount(self._bits)

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #
    def is_constant(self) -> bool:
        """Return True if the function is constant 0 or constant 1."""
        return self._bits == 0 or self._bits == mask_for(self._num_vars)

    def is_constant_zero(self) -> bool:
        """Return True for the constant-0 function."""
        return self._bits == 0

    def is_constant_one(self) -> bool:
        """Return True for the constant-1 function."""
        return self._bits == mask_for(self._num_vars)

    def depends_on(self, var: int) -> bool:
        """Return True if the function depends on variable ``var``."""
        return self.cofactor(var, 0) != self.cofactor(var, 1)

    def support(self) -> Tuple[int, ...]:
        """Return the tuple of variable indices the function depends on."""
        return tuple(var for var in range(self._num_vars) if self.depends_on(var))

    # ------------------------------------------------------------------ #
    # Boolean connectives
    # ------------------------------------------------------------------ #
    def _check_compatible(self, other: "TruthTable") -> None:
        if not isinstance(other, TruthTable):
            raise TypeError("operand must be a TruthTable")
        if other._num_vars != self._num_vars:
            raise ValueError("operands must have the same number of inputs")

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self._num_vars, self._bits & other._bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self._num_vars, self._bits | other._bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self._num_vars, self._bits ^ other._bits)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self._num_vars, self._bits ^ mask_for(self._num_vars))

    def implies(self, other: "TruthTable") -> bool:
        """Return True if this function implies ``other`` (containment of on-sets)."""
        self._check_compatible(other)
        return (self._bits & ~other._bits) == 0

    # ------------------------------------------------------------------ #
    # Cofactors, quantification, composition
    # ------------------------------------------------------------------ #
    def cofactor(self, var: int, value: int) -> "TruthTable":
        """Return the cofactor with variable ``var`` fixed to ``value``.

        The result is still expressed over the original ``num_vars`` inputs
        (it simply no longer depends on ``var``), which keeps chained
        cofactoring simple.
        """
        if not 0 <= var < self._num_vars:
            raise ValueError(f"variable index {var} out of range")
        pattern = variable_pattern(var, self._num_vars)
        if value:
            kept = self._bits & pattern
            shifted = kept >> (1 << var)
            bits = kept | shifted
        else:
            kept = self._bits & ~pattern
            shifted = (kept << (1 << var)) & mask_for(self._num_vars)
            bits = kept | shifted
        return TruthTable(self._num_vars, bits)

    def restrict(self, assignment: dict) -> "TruthTable":
        """Apply several cofactors at once; ``assignment`` maps var -> 0/1."""
        table = self
        for var, value in assignment.items():
            table = table.cofactor(var, value)
        return table

    def exists(self, var: int) -> "TruthTable":
        """Existentially quantify variable ``var``."""
        return self.cofactor(var, 0) | self.cofactor(var, 1)

    def forall(self, var: int) -> "TruthTable":
        """Universally quantify variable ``var``."""
        return self.cofactor(var, 0) & self.cofactor(var, 1)

    def permute_inputs(self, permutation: Sequence[int]) -> "TruthTable":
        """Return the function with inputs relabelled by ``permutation``.

        ``permutation[i] = j`` means old variable ``i`` becomes new variable
        ``j``; i.e. ``result(x_{perm[0]}, ..)`` reads its old input ``i`` from
        new position ``j``.
        """
        if sorted(permutation) != list(range(self._num_vars)):
            raise ValueError("permutation must be a permutation of the input indices")
        bits = 0
        for row in range(self.num_rows):
            if not bit_at(self._bits, row):
                continue
            new_row = 0
            for old_var in range(self._num_vars):
                if (row >> old_var) & 1:
                    new_row |= 1 << permutation[old_var]
            bits |= 1 << new_row
        return TruthTable(self._num_vars, bits)

    def negate_input(self, var: int) -> "TruthTable":
        """Return the function with input ``var`` complemented."""
        if not 0 <= var < self._num_vars:
            raise ValueError(f"variable index {var} out of range")
        bits = 0
        for row in range(self.num_rows):
            if bit_at(self._bits, row):
                bits |= 1 << (row ^ (1 << var))
        return TruthTable(self._num_vars, bits)

    def extend(self, num_vars: int) -> "TruthTable":
        """Re-express the function over a larger variable set (new vars unused)."""
        if num_vars < self._num_vars:
            raise ValueError("cannot extend to fewer variables")
        bits = self._bits
        current = self._num_vars
        while current < num_vars:
            bits = bits | (bits << (1 << current))
            current += 1
        return TruthTable(num_vars, bits)

    def shrink_to_support(self) -> Tuple["TruthTable", Tuple[int, ...]]:
        """Project onto the support variables.

        Returns the reduced table together with the tuple of original
        variable indices that became the new variables (in order).
        """
        support = self.support()
        reduced_vars = len(support)
        bits = 0
        for new_row in range(1 << reduced_vars):
            old_row = 0
            for new_var, old_var in enumerate(support):
                if (new_row >> new_var) & 1:
                    old_row |= 1 << old_var
            if bit_at(self._bits, old_row):
                bits |= 1 << new_row
        return TruthTable(reduced_vars, bits), support

    def compose(self, substitutions: Sequence["TruthTable"]) -> "TruthTable":
        """Substitute a function for every input variable.

        ``substitutions[i]`` replaces variable ``i``; all substitutions must
        share the same number of variables, which becomes the arity of the
        result.
        """
        if len(substitutions) != self._num_vars:
            raise ValueError("one substitution per input variable is required")
        if self._num_vars == 0:
            # A constant stays a constant; arity is taken from context (0).
            return TruthTable(0, self._bits & 1)
        target_vars = substitutions[0].num_vars
        for sub in substitutions:
            if sub.num_vars != target_vars:
                raise ValueError("all substitutions must have the same arity")
        result_bits = 0
        target_mask = mask_for(target_vars)
        for row in range(self.num_rows):
            if not bit_at(self._bits, row):
                continue
            term = target_mask
            for var in range(self._num_vars):
                sub_bits = substitutions[var].bits
                if (row >> var) & 1:
                    term &= sub_bits
                else:
                    term &= sub_bits ^ target_mask
            result_bits |= term
        return TruthTable(target_vars, result_bits)

    # ------------------------------------------------------------------ #
    # Cofactor family (camouflage plausible-function generation)
    # ------------------------------------------------------------------ #
    def all_partial_cofactors(self) -> List["TruthTable"]:
        """Return every cofactor under every partial assignment of the inputs.

        The original function (empty assignment) is included.  This is the
        plausible-function family of a dopant-programmable camouflaged cell
        whose nominal function is this table (see Fig. 1b of the paper).
        """
        seen = {}
        frontier = [self]
        seen[(self._num_vars, self._bits)] = self
        while frontier:
            table = frontier.pop()
            for var in range(self._num_vars):
                if not table.depends_on(var):
                    continue
                for value in (0, 1):
                    cof = table.cofactor(var, value)
                    key = (cof._num_vars, cof._bits)
                    if key not in seen:
                        seen[key] = cof
                        frontier.append(cof)
        return list(seen.values())

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self._num_vars == other._num_vars and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self._num_vars, self._bits))

    def __repr__(self) -> str:
        width = max(1, (self.num_rows + 3) // 4)
        return f"TruthTable(num_vars={self._num_vars}, bits=0x{self._bits:0{width}x})"

    def to_binary_string(self) -> str:
        """Return the output column as a binary string, minterm 0 first."""
        return "".join(str(bit_at(self._bits, row)) for row in range(self.num_rows))


def reduce_and(tables: Iterable[TruthTable]) -> TruthTable:
    """AND-reduce an iterable of same-arity truth tables."""
    return reduce(lambda a, b: a & b, tables)


def reduce_or(tables: Iterable[TruthTable]) -> TruthTable:
    """OR-reduce an iterable of same-arity truth tables."""
    return reduce(lambda a, b: a | b, tables)

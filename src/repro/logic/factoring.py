"""Algebraic factoring of two-level covers into multi-level expressions.

The refactor synthesis pass collapses a cone into a truth table, extracts an
irredundant SOP with :func:`repro.logic.isop.isop`, and then factors the SOP
into a multi-level expression whose literal count approximates the AIG cost
of the resynthesised cone.  The factoring here is the classic "quick factor"
style literal/kernel division: repeatedly divide the cover by its most common
literal.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence, Tuple

from .expr import And, Const, Expression, Not, Or, Var
from .isop import Cover, Cube, isop
from .truthtable import TruthTable

__all__ = [
    "factor_cover",
    "factor_table",
    "expression_literal_count",
]


def _literal_name(var: int) -> str:
    return f"x{var}"


def literal_expression(var: int, is_positive: bool) -> Expression:
    """Return the expression for a single literal of variable ``var``."""
    expression: Expression = Var(_literal_name(var))
    return expression if is_positive else Not(expression)


def cube_expression(cube: Cube) -> Expression:
    """Return the AND expression of a cube (constant 1 for the empty cube)."""
    literals = [literal_expression(var, pos) for var, pos in cube.literals()]
    if not literals:
        return Const(1)
    if len(literals) == 1:
        return literals[0]
    return And(tuple(literals))


def factor_cover(cover: Cover) -> Expression:
    """Factor a cube cover into a multi-level expression.

    Variables are named ``x0 .. x{n-1}`` so that the expression can be turned
    back into a truth table or an AIG with a fixed variable order.
    """
    if not cover.cubes:
        return Const(0)
    return _factor_cubes(list(cover.cubes))


def factor_table(table: TruthTable, dc_set: Optional[TruthTable] = None) -> Expression:
    """Extract an ISOP of ``table`` and factor it."""
    if table.is_constant_zero():
        return Const(0)
    if table.is_constant_one():
        return Const(1)
    return factor_cover(isop(table, dc_set))


def _factor_cubes(cubes: List[Cube]) -> Expression:
    if not cubes:
        return Const(0)
    if len(cubes) == 1:
        return cube_expression(cubes[0])
    if any(cube.num_literals() == 0 for cube in cubes):
        return Const(1)

    best_literal = _most_common_literal(cubes)
    if best_literal is None:
        terms = tuple(cube_expression(cube) for cube in cubes)
        return Or(terms)

    var, is_positive = best_literal
    quotient: List[Cube] = []
    remainder: List[Cube] = []
    for cube in cubes:
        if is_positive and (cube.positive >> var) & 1:
            quotient.append(Cube(cube.positive & ~(1 << var), cube.negative))
        elif not is_positive and (cube.negative >> var) & 1:
            quotient.append(Cube(cube.positive, cube.negative & ~(1 << var)))
        else:
            remainder.append(cube)

    if len(quotient) <= 1:
        # Dividing would not group anything; fall back to a flat OR of cubes,
        # each individually factored (they are single cubes so this is an AND).
        terms = tuple(cube_expression(cube) for cube in cubes)
        return Or(terms)

    literal = literal_expression(var, is_positive)
    quotient_expr = _factor_cubes(quotient)
    factored: Expression
    if isinstance(quotient_expr, Const) and quotient_expr.value == 1:
        factored = literal
    else:
        factored = And((literal, quotient_expr))
    if not remainder:
        return factored
    remainder_expr = _factor_cubes(remainder)
    return Or((factored, remainder_expr))


def _most_common_literal(cubes: Sequence[Cube]) -> Optional[Tuple[int, bool]]:
    """Return the literal occurring in the largest number of cubes (>= 2)."""
    counts: Counter = Counter()
    for cube in cubes:
        for var, is_positive in cube.literals():
            counts[(var, is_positive)] += 1
    if not counts:
        return None
    (literal, count) = counts.most_common(1)[0]
    if count < 2:
        return None
    return literal


def expression_literal_count(expression: Expression) -> int:
    """Count literal occurrences in an expression (factored-form cost metric)."""
    if isinstance(expression, Var):
        return 1
    if isinstance(expression, Const):
        return 0
    if isinstance(expression, Not):
        return expression_literal_count(expression.operand)
    if isinstance(expression, (And, Or)):
        return sum(expression_literal_count(op) for op in expression.operands)
    if hasattr(expression, "operands"):
        return sum(expression_literal_count(op) for op in expression.operands)
    raise TypeError(f"unsupported expression node {type(expression).__name__}")

"""Irredundant sum-of-products extraction (Minato–Morreale ISOP).

The synthesis rewrite/refactor passes resynthesise small cones from their
truth tables.  ISOP gives a compact two-level cover which is subsequently
factored (:mod:`repro.logic.factoring`) into a multi-level form.

Cubes are represented by :class:`Cube`: two bit masks over the variable
indices, one for positive literals and one for negative literals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .._bitops import popcount
from .truthtable import TruthTable

__all__ = ["Cube", "Cover", "isop", "cover_to_table"]


@dataclass(frozen=True)
class Cube:
    """A product term: conjunction of positive and negative literals."""

    positive: int
    negative: int

    def literals(self) -> List[Tuple[int, bool]]:
        """Return (variable, is_positive) pairs for the cube's literals."""
        result: List[Tuple[int, bool]] = []
        var = 0
        positive, negative = self.positive, self.negative
        while positive or negative:
            if positive & 1:
                result.append((var, True))
            if negative & 1:
                result.append((var, False))
            positive >>= 1
            negative >>= 1
            var += 1
        return result

    def num_literals(self) -> int:
        """Return the number of literals in the cube."""
        return popcount(self.positive) + popcount(self.negative)

    def with_literal(self, var: int, is_positive: bool) -> "Cube":
        """Return a copy of the cube with one extra literal."""
        if is_positive:
            return Cube(self.positive | (1 << var), self.negative)
        return Cube(self.positive, self.negative | (1 << var))

    def to_table(self, num_vars: int) -> TruthTable:
        """Return the truth table of the cube over ``num_vars`` inputs."""
        table = TruthTable.constant(num_vars, True)
        for var, is_positive in self.literals():
            literal = TruthTable.variable(var, num_vars)
            table = table & (literal if is_positive else ~literal)
        return table

    def contradicts(self) -> bool:
        """Return True if the cube contains a variable in both polarities."""
        return bool(self.positive & self.negative)


class Cover:
    """A sum of cubes over a fixed number of variables."""

    __slots__ = ("cubes", "num_vars")

    def __init__(self, cubes: List[Cube], num_vars: int):
        self.cubes = list(cubes)
        self.num_vars = num_vars

    def num_literals(self) -> int:
        """Total literal count across all cubes (the classic SOP cost)."""
        return sum(cube.num_literals() for cube in self.cubes)

    def to_table(self) -> TruthTable:
        """Return the truth table of the cover."""
        return cover_to_table(self.cubes, self.num_vars)

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self):
        return iter(self.cubes)

    def __repr__(self) -> str:
        return f"Cover(num_vars={self.num_vars}, cubes={len(self.cubes)})"


def cover_to_table(cubes: List[Cube], num_vars: int) -> TruthTable:
    """OR together the truth tables of all cubes."""
    table = TruthTable.constant(num_vars, False)
    for cube in cubes:
        table = table | cube.to_table(num_vars)
    return table


def isop(onset: TruthTable, dc_set: Optional[TruthTable] = None) -> Cover:
    """Compute an irredundant SOP cover of ``onset`` using the don't-care set.

    The returned cover ``C`` satisfies ``onset <= C <= onset | dc_set``.
    When ``dc_set`` is omitted, the cover is exactly equivalent to ``onset``.
    """
    num_vars = onset.num_vars
    if dc_set is None:
        dc_set = TruthTable.constant(num_vars, False)
    if dc_set.num_vars != num_vars:
        raise ValueError("onset and don't-care set must share the input space")
    upper = onset | dc_set
    memo: Dict[Tuple[int, int], Tuple[List[Cube], TruthTable]] = {}
    cubes, _cover_table = _isop_recursive(onset, upper, num_vars, memo)
    return Cover(cubes, num_vars)


def _isop_recursive(
    lower: TruthTable,
    upper: TruthTable,
    num_vars: int,
    memo: Dict[Tuple[int, int], Tuple[List[Cube], TruthTable]],
) -> Tuple[List[Cube], TruthTable]:
    """Minato–Morreale recursion: return (cubes, table of the cover)."""
    key = (lower.bits, upper.bits)
    cached = memo.get(key)
    if cached is not None:
        return cached

    if lower.is_constant_zero():
        result: Tuple[List[Cube], TruthTable] = ([], TruthTable.constant(num_vars, False))
        memo[key] = result
        return result
    if upper.is_constant_one():
        result = ([Cube(0, 0)], TruthTable.constant(num_vars, True))
        memo[key] = result
        return result

    split = _choose_split_variable(lower, upper)

    lower0, lower1 = lower.cofactor(split, 0), lower.cofactor(split, 1)
    upper0, upper1 = upper.cofactor(split, 0), upper.cofactor(split, 1)

    # Cubes that must contain the negative / positive literal of the split var.
    cubes0, table0 = _isop_recursive(lower0 & ~upper1, upper0, num_vars, memo)
    cubes1, table1 = _isop_recursive(lower1 & ~upper0, upper1, num_vars, memo)

    # Remaining onset that neither literal-bound cover handles.
    remaining = (lower0 & ~table0) | (lower1 & ~table1)
    cubes_star, table_star = _isop_recursive(remaining, upper0 & upper1, num_vars, memo)

    literal = TruthTable.variable(split, num_vars)
    cover_table = (table0 & ~literal) | (table1 & literal) | table_star
    cubes = (
        [cube.with_literal(split, False) for cube in cubes0]
        + [cube.with_literal(split, True) for cube in cubes1]
        + list(cubes_star)
    )
    result = (cubes, cover_table)
    memo[key] = result
    return result


def _choose_split_variable(lower: TruthTable, upper: TruthTable) -> int:
    """Pick a variable that at least one of the bounds depends on."""
    for var in range(lower.num_vars):
        if lower.depends_on(var) or upper.depends_on(var):
            return var
    # Both bounds constant: caller handles constants before splitting, but be
    # defensive and return variable 0.
    return 0

"""Boolean-function substrate: truth tables, expressions, SOP extraction.

This package contains the word- and bit-level function representations used
throughout the reproduction: packed single-output truth tables
(:class:`~repro.logic.truthtable.TruthTable`), multi-output functions
(:class:`~repro.logic.boolfunc.BoolFunction`), a small Boolean expression
language, ISOP extraction and algebraic factoring used by the synthesis
passes, and cryptographic quality measures used to validate the S-box
workloads.
"""

from .boolfunc import BoolFunction
from .expr import (
    And,
    Const,
    Expression,
    Not,
    Or,
    Var,
    Xor,
    expression_to_table,
    parse_expression,
)
from .factoring import expression_literal_count, factor_cover, factor_table
from .isop import Cover, Cube, cover_to_table, isop
from .truthtable import TruthTable
from .analysis import (
    algebraic_degree,
    difference_distribution_table,
    differential_uniformity,
    is_optimal_4bit_sbox,
    linearity,
    nonlinearity,
    walsh_spectrum,
)

__all__ = [
    "TruthTable",
    "BoolFunction",
    "Expression",
    "Var",
    "Const",
    "Not",
    "And",
    "Or",
    "Xor",
    "parse_expression",
    "expression_to_table",
    "Cube",
    "Cover",
    "isop",
    "cover_to_table",
    "factor_cover",
    "factor_table",
    "expression_literal_count",
    "difference_distribution_table",
    "differential_uniformity",
    "walsh_spectrum",
    "linearity",
    "nonlinearity",
    "algebraic_degree",
    "is_optimal_4bit_sbox",
]

"""Cryptographic quality measures for small S-boxes.

The evaluation workloads are 4-bit *optimal* S-boxes in the sense of Leander
and Poschmann: bijective, differential uniformity 4, and linearity 8.  These
helpers compute the standard measures (difference distribution table, Walsh
spectrum, linearity, algebraic degree) from a word-level lookup table so the
S-box data shipped with the library can be validated programmatically.
"""

from __future__ import annotations

from typing import List, Sequence

from .._bitops import parity, popcount
from .boolfunc import BoolFunction

__all__ = [
    "difference_distribution_table",
    "differential_uniformity",
    "walsh_spectrum",
    "linearity",
    "nonlinearity",
    "algebraic_degree",
    "is_optimal_4bit_sbox",
]


def _check_lookup(table: Sequence[int], num_inputs: int, num_outputs: int) -> None:
    if len(table) != 1 << num_inputs:
        raise ValueError(f"lookup table must have {1 << num_inputs} entries")
    limit = 1 << num_outputs
    for value in table:
        if not 0 <= value < limit:
            raise ValueError(f"entry {value} does not fit in {num_outputs} bits")


def difference_distribution_table(
    table: Sequence[int], num_inputs: int, num_outputs: int
) -> List[List[int]]:
    """Return the DDT: ``ddt[a][b] = #{x : S(x) ^ S(x ^ a) == b}``."""
    _check_lookup(table, num_inputs, num_outputs)
    rows = 1 << num_inputs
    cols = 1 << num_outputs
    ddt = [[0] * cols for _ in range(rows)]
    for delta_in in range(rows):
        for x in range(rows):
            delta_out = table[x] ^ table[x ^ delta_in]
            ddt[delta_in][delta_out] += 1
    return ddt


def differential_uniformity(
    table: Sequence[int], num_inputs: int, num_outputs: int
) -> int:
    """Return the maximum DDT entry over non-zero input differences."""
    ddt = difference_distribution_table(table, num_inputs, num_outputs)
    return max(
        ddt[delta_in][delta_out]
        for delta_in in range(1, 1 << num_inputs)
        for delta_out in range(1 << num_outputs)
    )


def walsh_spectrum(
    table: Sequence[int], num_inputs: int, num_outputs: int
) -> List[List[int]]:
    """Return the Walsh spectrum ``W[a][b]`` over input masks a, output masks b.

    ``W[a][b] = sum_x (-1)^(a.x ^ b.S(x))`` where ``.`` is the inner product
    over GF(2).
    """
    _check_lookup(table, num_inputs, num_outputs)
    rows = 1 << num_inputs
    cols = 1 << num_outputs
    spectrum = [[0] * cols for _ in range(rows)]
    for mask_in in range(rows):
        for mask_out in range(cols):
            total = 0
            for x in range(rows):
                sign = parity((mask_in & x) ^ _masked_parity_word(mask_out, table[x]))
                total += -1 if sign else 1
            spectrum[mask_in][mask_out] = total
    return spectrum


def _masked_parity_word(mask: int, word: int) -> int:
    """Return a word whose popcount parity equals parity(mask & word)."""
    return mask & word


def linearity(table: Sequence[int], num_inputs: int, num_outputs: int) -> int:
    """Return the linearity ``Lin(S) = max |W[a][b]|`` over non-zero output masks."""
    spectrum = walsh_spectrum(table, num_inputs, num_outputs)
    return max(
        abs(spectrum[mask_in][mask_out])
        for mask_out in range(1, 1 << num_outputs)
        for mask_in in range(1 << num_inputs)
    )


def nonlinearity(table: Sequence[int], num_inputs: int, num_outputs: int) -> int:
    """Return the nonlinearity ``2^(n-1) - Lin(S)/2``."""
    return (1 << (num_inputs - 1)) - linearity(table, num_inputs, num_outputs) // 2


def algebraic_degree(table: Sequence[int], num_inputs: int, num_outputs: int) -> int:
    """Return the maximum algebraic degree over all output component bits."""
    _check_lookup(table, num_inputs, num_outputs)
    function = BoolFunction.from_lookup(table, num_inputs, num_outputs)
    degree = 0
    for out_index in range(num_outputs):
        values = function.output(out_index).values()
        anf = _moebius_transform(values)
        for monomial, coefficient in enumerate(anf):
            if coefficient:
                degree = max(degree, popcount(monomial))
    return degree


def _moebius_transform(values: Sequence[int]) -> List[int]:
    """Binary Moebius transform: truth table -> ANF coefficients."""
    coefficients = list(values)
    length = len(coefficients)
    step = 1
    while step < length:
        for start in range(0, length, 2 * step):
            for offset in range(step):
                coefficients[start + step + offset] ^= coefficients[start + offset]
        step *= 2
    return coefficients


def is_optimal_4bit_sbox(table: Sequence[int]) -> bool:
    """Check the Leander–Poschmann optimality criteria for a 4-bit S-box.

    Optimal means: bijective, ``Lin(S) = 8`` and differential uniformity 4.
    """
    if len(table) != 16:
        return False
    if sorted(table) != list(range(16)):
        return False
    if linearity(table, 4, 4) != 8:
        return False
    if differential_uniformity(table, 4, 4) != 4:
        return False
    return True

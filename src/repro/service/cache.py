"""The shared synthesis-cache tier: read-through get, write-behind put.

:class:`RemoteCacheTier` wraps the local
:class:`~repro.ga.pinopt.SynthesisDiskCache` surface around the
coordinator's ``GET/PUT /cache/{fingerprint}`` endpoints, so a fleet of
workers shares one synthesis cache without sharing a filesystem:

* **get** consults the local store first (same hit accounting as before);
  on a local miss it asks the coordinator and — on a remote hit — writes
  the entry through into the local store, so each signature crosses the
  network at most once per worker.
* **put** lands locally at once and is uploaded *behind* the caller by a
  daemon thread: synthesis results are pure data keyed by content, so
  nothing waits on the network and a lost upload costs only a future
  remote miss, never correctness.

The tier duck-types the disk cache (``get``/``put``/``hits``/``loaded``/
``len``), so :class:`~repro.ga.pinopt.PinAssignmentProblem` uses either
interchangeably; ``remote_stats()`` adds the tier's own counters, which
:meth:`~repro.ga.pinopt.PinAssignmentProblem.cache_stats` surfaces as
``remote_*`` telemetry.  Wired up via ``REPRO_CACHE_URL`` (see
:func:`repro.ga.pinopt.resolve_synthesis_cache`).
"""

from __future__ import annotations

import json
import os
import threading
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

from ..ga.pinopt import SynthesisDiskCache
from .protocol import cache_fingerprint

__all__ = ["CACHE_URL_ENV_VAR", "RemoteCacheTier"]

#: Environment variable naming the coordinator URL of the shared cache tier.
CACHE_URL_ENV_VAR = "REPRO_CACHE_URL"


class RemoteCacheTier:
    """A synthesis cache backed by a coordinator over HTTP.

    ``local`` is the near store (usually the ``REPRO_CACHE_DIR`` disk
    cache; an in-memory dict when none is configured).  All network
    failures degrade silently to local-only behaviour — the cache is an
    optimisation, never a dependency.
    """

    #: Process-wide instances keyed by URL (mirrors the disk cache's
    #: ``_SHARED`` discipline: one upload queue and one counter set per
    #: process, visible to telemetry via :meth:`active`).
    _SHARED: Dict[str, "RemoteCacheTier"] = {}

    def __init__(
        self,
        url: str,
        local: Optional[SynthesisDiskCache] = None,
        timeout: float = 10.0,
    ):
        self.url = url.rstrip("/")
        self.local = local
        self.timeout = timeout
        self._memory: Dict[Tuple[str, str, Tuple[int, ...]], float] = {}
        self._known_remote: set = set()
        self._pending: List[Tuple[str, Dict]] = []
        self._condition = threading.Condition()
        self._uploader: Optional[threading.Thread] = None
        self.remote_hits = 0
        self.remote_misses = 0
        self.remote_puts = 0
        self.remote_errors = 0
        #: Local-surface counters (duck-typing the disk cache).
        self.hits = 0

    # -------------------------------------------------------------- #
    # Construction
    # -------------------------------------------------------------- #
    @classmethod
    def shared(cls, url: str, local: Optional[SynthesisDiskCache] = None) -> "RemoteCacheTier":
        tier = cls._SHARED.get(url)
        if tier is None:
            tier = cls(url, local=local)
            cls._SHARED[url] = tier
        return tier

    @classmethod
    def from_environment(cls) -> Optional["RemoteCacheTier"]:
        """The shared tier named by ``REPRO_CACHE_URL`` (None when unset)."""
        url = os.environ.get(CACHE_URL_ENV_VAR, "").strip()
        if not url:
            return None
        return cls.shared(url, local=SynthesisDiskCache.from_environment())

    @classmethod
    def active(cls) -> Optional["RemoteCacheTier"]:
        """The process's environment-named tier, if one was constructed."""
        url = os.environ.get(CACHE_URL_ENV_VAR, "").strip()
        return cls._SHARED.get(url) if url else None

    # -------------------------------------------------------------- #
    # Local surface (disk-cache compatible)
    # -------------------------------------------------------------- #
    @property
    def loaded(self) -> int:
        return self.local.loaded if self.local is not None else 0

    def __len__(self) -> int:
        if self.local is not None:
            return len(self.local)
        return len(self._memory)

    def _local_get(self, effort: str, library: str, signature: Tuple[int, ...]):
        if self.local is not None:
            return self.local.get(effort, library, signature)
        return self._memory.get((effort, library, signature))

    def _local_put(
        self, effort: str, library: str, signature: Tuple[int, ...], area: float
    ) -> None:
        if self.local is not None:
            self.local.put(effort, library, signature, area)
        else:
            self._memory[(effort, library, signature)] = area

    # -------------------------------------------------------------- #
    # Read-through get
    # -------------------------------------------------------------- #
    def get(
        self, effort: str, library: str, signature: Tuple[int, ...]
    ) -> Optional[float]:
        area = self._local_get(effort, library, signature)
        if area is not None:
            self.hits += 1
            return area
        fingerprint = cache_fingerprint(effort, library, signature)
        request = urllib.request.Request(f"{self.url}/cache/{fingerprint}")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                entry = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                self.remote_misses += 1
            else:
                self.remote_errors += 1
            return None
        except (urllib.error.URLError, OSError, ValueError):
            self.remote_errors += 1
            return None
        try:
            area = float(entry["area"])
        except (KeyError, TypeError, ValueError):
            self.remote_errors += 1
            return None
        self.remote_hits += 1
        self.hits += 1
        self._known_remote.add(fingerprint)
        self._local_put(effort, library, signature, area)
        return area

    # -------------------------------------------------------------- #
    # Write-behind put
    # -------------------------------------------------------------- #
    def put(
        self, effort: str, library: str, signature: Tuple[int, ...], area: float
    ) -> None:
        self._local_put(effort, library, signature, area)
        fingerprint = cache_fingerprint(effort, library, signature)
        if fingerprint in self._known_remote:
            return  # served from remote: the coordinator already has it
        self._known_remote.add(fingerprint)
        body = {
            "effort": effort,
            "library": library,
            "signature": list(signature),
            "area": float(area),
        }
        with self._condition:
            self._pending.append((fingerprint, body))
            if self._uploader is None or not self._uploader.is_alive():
                self._uploader = threading.Thread(target=self._drain, daemon=True)
                self._uploader.start()
            self._condition.notify_all()

    def _drain(self) -> None:
        while True:
            with self._condition:
                if not self._pending:
                    self._condition.notify_all()
                    return
                fingerprint, body = self._pending.pop(0)
            self._upload(fingerprint, body)
            with self._condition:
                if not self._pending:
                    self._condition.notify_all()

    def _upload(self, fingerprint: str, body: Dict) -> None:
        request = urllib.request.Request(
            f"{self.url}/cache/{fingerprint}",
            data=json.dumps(body).encode("utf-8"),
            method="PUT",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout):
                pass
            self.remote_puts += 1
        except (urllib.error.URLError, OSError):
            self.remote_errors += 1

    def flush(self, timeout: float = 10.0) -> bool:
        """Block until the upload queue drains (True) or ``timeout`` passes.

        Workers call this before reporting a job complete, so the
        coordinator's cache is warm for whichever peer claims next.
        """
        with self._condition:
            while self._pending:
                if not self._condition.wait(timeout=timeout):
                    return False
        uploader = self._uploader
        if uploader is not None and uploader.is_alive():
            uploader.join(timeout=timeout)
        return not self._pending

    # -------------------------------------------------------------- #
    # Telemetry
    # -------------------------------------------------------------- #
    def remote_stats(self) -> Dict[str, int]:
        """The tier's own counters (``remote_*`` in problem cache stats)."""
        return {
            "hits": self.remote_hits,
            "misses": self.remote_misses,
            "puts": self.remote_puts,
            "errors": self.remote_errors,
        }

"""The pull-based worker agent: claim over HTTP, execute, upload.

Runnable on any machine that can reach the coordinator::

    python -m repro.service.worker --server http://coordinator:8765

The agent needs **no shared filesystem**: jobs arrive as JSON
(:class:`~repro.scenarios.campaign.CampaignJob` kind + params), execute
through the exact same :func:`~repro.scenarios.campaign._execute_job_task`
the local campaign runner fans over its worker pool, and finished payloads
are uploaded back.  Lease safety mirrors the local runner: a daemon thread
heartbeats the claimed job every TTL/3, and when a heartbeat comes back
409 — the coordinator reclaimed the lease — the computed result is
*discarded*, never uploaded, because a peer may already own the job.

With the remote cache enabled (default) the agent exports
``REPRO_CACHE_URL`` pointing at the coordinator before executing jobs, so
the synthesis cache stack inside :mod:`repro.ga.pinopt` reads through the
fleet-shared tier; per-job counter deltas ride along with the completion
upload and surface in the campaign's robustness counters.

Fault injection composes: a ``REPRO_FAULTS=worker_kill:...`` spec SIGKILLs
the agent process at job start (the task hook runs in-process here), which
is exactly how the CI smoke leg murders one worker mid-campaign.
"""

from __future__ import annotations

import argparse
import os
import socket
import threading
import time
from typing import Dict, Optional

from ..obs.log import get_logger
from ..scenarios.campaign import CampaignJob, _execute_job_task
from .cache import CACHE_URL_ENV_VAR, RemoteCacheTier
from .client import ServiceClient
from .protocol import (
    DEFAULT_POLL_SECONDS,
    SERVICE_POLL_ENV_VAR,
    ServiceError,
)

__all__ = ["WorkerAgent", "main"]

#: Default-log sentinel: distinguishes "no log argument" (structured
#: worker logger) from an explicit ``log=None`` (silence, kept for tests).
_DEFAULT_LOG = object()


class WorkerAgent:
    """One pull-based worker attached to a coordinator."""

    def __init__(
        self,
        server: str,
        worker_id: Optional[str] = None,
        poll: Optional[float] = None,
        task_jobs: int = 1,
        remote_cache: bool = True,
        log=_DEFAULT_LOG,
    ):
        self.client = ServiceClient(server)
        if worker_id is None:
            worker_id = (
                f"{socket.gethostname()}:{os.getpid()}:{os.urandom(3).hex()}"
            )
        self.worker_id = worker_id
        if poll is None:
            raw = os.environ.get(SERVICE_POLL_ENV_VAR, "").strip()
            try:
                poll = float(raw) if raw else DEFAULT_POLL_SECONDS
            except ValueError:
                poll = DEFAULT_POLL_SECONDS
        self.poll = poll
        self.task_jobs = max(1, int(task_jobs))
        if log is _DEFAULT_LOG:
            log = get_logger("worker")
        self._log = log or (lambda message, **fields: None)
        if remote_cache:
            # The in-process synthesis stack picks the tier up from the
            # environment (resolve_synthesis_cache); an explicit
            # REPRO_CACHE_URL from the operator wins.
            os.environ.setdefault(CACHE_URL_ENV_VAR, self.client.base_url)
        self.counters: Dict[str, int] = {
            "executed": 0,
            "failed": 0,
            "discarded": 0,
        }

    # -------------------------------------------------------------- #
    # Main loop
    # -------------------------------------------------------------- #
    def run(
        self,
        campaign: Optional[str] = None,
        once: bool = False,
        max_jobs: Optional[int] = None,
    ) -> Dict[str, int]:
        """Pull and execute jobs until stopped.

        ``campaign`` pins the agent to one campaign id (default: serve
        every campaign the coordinator lists).  ``once`` exits as soon as
        every served campaign reports done; without it the agent keeps
        polling for new submissions.  ``max_jobs`` caps executed jobs
        (tests).
        """
        from ..backend import backend_report

        report = backend_report()
        self._log(
            f"[{self.worker_id}] compute backend: {report['active']}"
            + (
                f" (fallback: {report['fallback_reason']})"
                if report["fallback_reason"]
                else ""
            ),
            worker=self.worker_id,
            backend=report["active"],
            native_available=report["native_available"],
        )
        while True:
            if campaign is not None:
                campaign_ids = [campaign]
            else:
                campaign_ids = [
                    entry["campaign"]
                    for entry in self.client.campaigns().get("campaigns", [])
                ]
            all_done = bool(campaign_ids)
            claimed_any = False
            for campaign_id in campaign_ids:
                while True:
                    if (
                        max_jobs is not None
                        and self.counters["executed"] >= max_jobs
                    ):
                        return dict(self.counters)
                    try:
                        ticket = self.client.claim(campaign_id, self.worker_id)
                    except ServiceError as exc:
                        self._log(f"claim failed: {exc.message}")
                        all_done = False
                        break
                    if "job" in ticket:
                        claimed_any = True
                        all_done = False
                        self._execute(campaign_id, ticket)
                        continue
                    if not ticket.get("done"):
                        all_done = False  # backed-off or peer-held jobs remain
                    break
            if once and all_done:
                return dict(self.counters)
            if not claimed_any:
                time.sleep(self.poll)

    # -------------------------------------------------------------- #
    # One job
    # -------------------------------------------------------------- #
    def _execute(self, campaign_id: str, ticket: Dict) -> None:
        entry = ticket["job"]
        job = CampaignJob(
            job_id=str(entry["job_id"]),
            kind=str(entry["kind"]),
            params=dict(entry.get("params", {})),
        )
        lease_ttl = float(ticket.get("lease_ttl", 60.0))
        budget = str(ticket.get("budget", ""))
        traceparent = str(ticket.get("traceparent", ""))
        self._log(
            f"[{self.worker_id}] {campaign_id}/{job.job_id}: claimed "
            f"(attempt {ticket.get('attempt', 1)})",
            worker=self.worker_id,
            campaign=campaign_id,
            job=job.job_id,
            attempt=ticket.get("attempt", 1),
        )

        lost = threading.Event()
        stop = threading.Event()

        def beat() -> None:
            interval = lease_ttl / 3.0
            while not stop.wait(interval):
                try:
                    self.client.heartbeat(campaign_id, job.job_id, self.worker_id)
                except ServiceError as exc:
                    if exc.status == 409:
                        lost.set()
                        return
                    # Transient (network, coordinator restart): retry on
                    # the next beat; the lease survives two more misses.

        keeper = threading.Thread(target=beat, daemon=True)
        keeper.start()
        tier = RemoteCacheTier.active()
        cache_before = tier.remote_stats() if tier is not None else {}
        try:
            result = _execute_job_task(
                (job, self.task_jobs, True, budget, traceparent)
            )
        finally:
            stop.set()
        keeper.join(timeout=lease_ttl)

        if lost.is_set():
            # Lost-lease safety, worker side: the coordinator reclaimed the
            # job (we looked dead); a peer may be re-running it, so this
            # result must never be uploaded.
            self.counters["discarded"] += 1
            self._log(
                f"[{self.worker_id}] {campaign_id}/{job.job_id}: lease lost "
                f"mid-run; result discarded"
            )
            return

        cache_delta: Dict[str, float] = {}
        if tier is not None:
            tier.flush(timeout=min(lease_ttl, 10.0))
            after = tier.remote_stats()
            cache_delta = {
                key: after[key] - cache_before.get(key, 0)
                for key in after
                if after[key] - cache_before.get(key, 0)
            }
            if cache_delta.get("hits"):
                self._log(
                    f"[{self.worker_id}] {campaign_id}/{job.job_id}: "
                    f"remote-cache hits={cache_delta['hits']}"
                )

        try:
            if result.ok:
                self.client.complete(
                    campaign_id,
                    job.job_id,
                    self.worker_id,
                    seconds=result.seconds,
                    payload=result.payload,
                    cache=cache_delta or None,
                )
                self.counters["executed"] += 1
                self._log(
                    f"[{self.worker_id}] {campaign_id}/{job.job_id}: "
                    f"ok ({result.seconds:.1f}s)",
                    worker=self.worker_id,
                    campaign=campaign_id,
                    job=job.job_id,
                    status="ok",
                    seconds=round(result.seconds, 3),
                )
            else:
                self.client.fail(
                    campaign_id, job.job_id, self.worker_id, error=result.error
                )
                self.counters["failed"] += 1
                self._log(
                    f"[{self.worker_id}] {campaign_id}/{job.job_id}: "
                    f"{result.status} {result.error}",
                    worker=self.worker_id,
                    campaign=campaign_id,
                    job=job.job_id,
                    status=result.status,
                    error=result.error,
                )
        except ServiceError as exc:
            if exc.status == 409:
                self.counters["discarded"] += 1
                self._log(
                    f"[{self.worker_id}] {campaign_id}/{job.job_id}: "
                    f"discarded at commit ({exc.message})"
                )
            else:
                self.counters["failed"] += 1
                self._log(
                    f"[{self.worker_id}] {campaign_id}/{job.job_id}: "
                    f"upload failed ({exc.message})"
                )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.worker",
        description="Pull-based campaign worker agent",
    )
    parser.add_argument(
        "--server",
        default=None,
        help="coordinator URL (default: $REPRO_SERVICE_URL)",
    )
    parser.add_argument(
        "--campaign", default=None, help="serve only this campaign id"
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="exit when every served campaign is complete",
    )
    parser.add_argument(
        "--poll", type=float, default=None, help="claim poll interval (seconds)"
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None, help="stop after N executed jobs"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per job (job-internal parallelism)",
    )
    parser.add_argument(
        "--worker-id", default=None, help="stable worker identity (default: generated)"
    )
    parser.add_argument(
        "--no-remote-cache",
        action="store_true",
        help="do not read through the coordinator's shared synthesis cache",
    )
    arguments = parser.parse_args(argv)
    try:
        agent = WorkerAgent(
            arguments.server,
            worker_id=arguments.worker_id,
            poll=arguments.poll,
            task_jobs=arguments.jobs,
            remote_cache=not arguments.no_remote_cache,
        )
    except ServiceError as exc:
        parser.error(exc.message)
        return 2
    counters = agent.run(
        campaign=arguments.campaign,
        once=arguments.once,
        max_jobs=arguments.max_jobs,
    )
    agent._log(
        f"[{agent.worker_id}] done: {counters['executed']} executed, "
        f"{counters['failed']} failed, {counters['discarded']} discarded",
        worker=agent.worker_id,
        **counters,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Wire protocol shared by the coordinator, the worker agent and clients.

One small module defines everything both sides of the HTTP boundary must
agree on, so the server and the clients can never drift apart:

* **Campaign identity** — :func:`campaign_fingerprint` hashes the
  canonical JSON of a :class:`~repro.scenarios.campaign.CampaignSpec`;
  two clients submitting the same spec deterministically land on the same
  campaign id (and therefore the same job set and state directory).
* **Cache identity** — :func:`cache_fingerprint` hashes a synthesis-cache
  key (effort, library fingerprint, signature) into the opaque token used
  by ``GET/PUT /cache/{fingerprint}``.
* **Server-sent events** — :func:`sse_event` / :func:`parse_sse` encode
  and decode the ``GET /campaigns/{id}/events`` stream.
* **Artifact normalisation** — :func:`normalized_artifact_json` /
  :func:`normalized_artifact_csv` strip wall-clock and provenance noise
  from campaign artifacts, so "byte-identical to a local run" is a single
  shared definition for tests, CI and operators.

Environment knobs (all optional):

=========================  =================================================
``REPRO_SERVICE_URL``      Default coordinator URL for ``--submit`` and the
                           worker agent.
``REPRO_SERVICE_ROOT``     Default state root of ``repro serve``.
``REPRO_SERVICE_POLL``     Poll interval (seconds) for SSE snapshots and
                           worker claim retries (default 0.25).
``REPRO_CACHE_URL``        Coordinator URL of the shared synthesis-cache
                           tier (see :mod:`repro.service.cache`).
=========================  =================================================
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, Iterator, Mapping, Sequence, Tuple

__all__ = [
    "SERVICE_URL_ENV_VAR",
    "SERVICE_ROOT_ENV_VAR",
    "SERVICE_POLL_ENV_VAR",
    "DEFAULT_POLL_SECONDS",
    "ServiceError",
    "campaign_fingerprint",
    "cache_fingerprint",
    "canonical_json",
    "sse_event",
    "parse_sse",
    "normalized_artifact_json",
    "normalized_artifact_csv",
]

SERVICE_URL_ENV_VAR = "REPRO_SERVICE_URL"
SERVICE_ROOT_ENV_VAR = "REPRO_SERVICE_ROOT"
SERVICE_POLL_ENV_VAR = "REPRO_SERVICE_POLL"

#: Default poll interval: SSE snapshot cadence and worker claim backoff.
DEFAULT_POLL_SECONDS = 0.25


class ServiceError(RuntimeError):
    """An HTTP-level service failure (non-2xx response or bad request).

    ``status`` carries the HTTP status code on both sides: handlers raise
    it to produce an error response, clients raise it when they receive
    one.  Code 409 ("conflict") is the lease-safety verdict: the result a
    worker tried to commit was discarded because its lease was lost.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = int(status)
        self.message = message


# ------------------------------------------------------------------ #
# Identity
# ------------------------------------------------------------------ #
def canonical_json(data: Any) -> str:
    """The one canonical JSON rendering both sides hash (sorted, compact)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def campaign_fingerprint(spec_data: Mapping[str, Any]) -> str:
    """Deterministic campaign id for a spec's :meth:`to_dict` output.

    Concurrent clients posting the same spec dedupe onto one campaign —
    one id, one state directory, one set of jobs — because the id is a
    pure function of the spec content.
    """
    digest = hashlib.sha256(canonical_json(spec_data).encode("utf-8"))
    return f"c{digest.hexdigest()[:12]}"


def cache_fingerprint(
    effort: str, library: str, signature: Sequence[int]
) -> str:
    """Opaque token for one synthesis-cache key (the ``/cache/{fp}`` path).

    The key structure (effort, library fingerprint, merged-function
    signature) stays an implementation detail of the cache; the HTTP
    surface only ever sees this hash.
    """
    blob = f"{effort}|{library}|{','.join(str(int(v)) for v in signature)}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


# ------------------------------------------------------------------ #
# Server-sent events
# ------------------------------------------------------------------ #
def sse_event(event: str, data: Mapping[str, Any]) -> bytes:
    """Encode one SSE frame (``event:`` + single-line ``data:`` JSON)."""
    return (
        f"event: {event}\ndata: {canonical_json(data)}\n\n".encode("utf-8")
    )


def parse_sse(lines: Iterable[bytes]) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Decode an SSE byte-line stream into ``(event, data)`` pairs.

    Comment lines (``: keepalive``) and unknown fields are skipped, per
    the SSE spec; a frame without JSON data is dropped.
    """
    event = ""
    data_text = ""
    for raw in lines:
        line = raw.decode("utf-8", "replace").rstrip("\r\n")
        if not line:
            if event and data_text:
                try:
                    yield event, json.loads(data_text)
                except ValueError:
                    pass
            event = ""
            data_text = ""
            continue
        if line.startswith(":"):
            continue  # keepalive comment
        field, _, value = line.partition(":")
        value = value.lstrip(" ")
        if field == "event":
            event = value
        elif field == "data":
            data_text += value


# ------------------------------------------------------------------ #
# Artifact normalisation (the shared "byte-identical" definition)
# ------------------------------------------------------------------ #
def normalized_artifact_json(text: str) -> str:
    """Campaign JSON with timing/provenance noise zeroed.

    Seconds are wall-clock measurements; ``cached``/``robustness``/
    ``jobs`` describe *how* a run got its results (local worker pool vs a
    remote fleet).  Everything else — statuses, payloads, job sets, the
    merged telemetry — must be byte-identical between a local ``campaign``
    run and a service run of the same spec.
    """
    document = json.loads(text)
    for key in ("total_seconds", "mean_seconds", "wall_seconds"):
        if key in document:
            document[key] = 0.0
    document["job_seconds"] = {
        key: 0.0 for key in document.get("job_seconds", {})
    }
    document["robustness"] = {}
    document["campaign"] = {}
    document["jobs"] = 0
    for row in document.get("results", []):
        row["seconds"] = 0.0
        row["cached"] = False
    return json.dumps(document, indent=2, sort_keys=True)


def normalized_artifact_csv(text: str) -> str:
    """Campaign CSV with the ``seconds`` and ``cached`` columns zeroed."""
    lines = text.splitlines()
    if not lines:
        return ""
    header = lines[0].split(",")
    seconds_column = header.index("seconds")
    cached_column = header.index("cached")
    normalized = [lines[0]]
    for line in lines[1:]:
        cells = line.split(",")
        cells[seconds_column] = "0"
        cells[cached_column] = "0"
        normalized.append(",".join(cells))
    return "\n".join(normalized)

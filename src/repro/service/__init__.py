"""Campaign-as-a-service: HTTP coordinator, pull-based workers, shared cache.

The :mod:`repro.service` package puts a serving layer on top of the
lease-based campaign substrate (:mod:`repro.jobstore`,
:mod:`repro.scenarios.campaign`):

* :mod:`repro.service.server` — the **coordinator**: an asyncio HTTP
  service that accepts :class:`~repro.scenarios.campaign.CampaignSpec`
  JSON, dedupes submissions by fingerprint, arbitrates job leases for
  remote workers, streams per-job progress over SSE, serves JSON/CSV/BENCH
  artifacts, and hosts the shared synthesis-cache tier.
* :mod:`repro.service.worker` — the **worker agent**: pulls pending jobs
  over HTTP (claim / heartbeat / complete), executes them through the
  existing campaign job kinds, and uploads payloads — no shared
  filesystem required.
* :mod:`repro.service.client` — the **client**: submit, watch (SSE),
  fetch artifacts; used by the ``repro campaign --submit`` CLI verb.
* :mod:`repro.service.cache` — :class:`RemoteCacheTier`, the
  read-through / write-behind synthesis-cache tier that lets similar
  rows across a fleet never re-synthesize.

Everything is standard library only (``asyncio`` server, ``urllib``
client); attribute access is lazy so importing the package does not drag
in the campaign machinery.
"""

from __future__ import annotations

__all__ = [
    "CampaignService",
    "ServiceClient",
    "ServiceError",
    "WorkerAgent",
    "RemoteCacheTier",
]

_LAZY = {
    "CampaignService": ("repro.service.server", "CampaignService"),
    "ServiceClient": ("repro.service.client", "ServiceClient"),
    "ServiceError": ("repro.service.protocol", "ServiceError"),
    "WorkerAgent": ("repro.service.worker", "WorkerAgent"),
    "RemoteCacheTier": ("repro.service.cache", "RemoteCacheTier"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attribute)

"""HTTP client for the campaign coordinator (urllib, no dependencies).

:class:`ServiceClient` speaks every endpoint of
:mod:`repro.service.server`: submission, status, the worker protocol
(claim/heartbeat/complete/fail), SSE event streaming, artifact fetching
and the shared cache tier.  Both the ``repro campaign --submit`` CLI verb
and the worker agent are built on it.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from ..obs.trace import current_traceparent, tracing_enabled
from .protocol import SERVICE_URL_ENV_VAR, ServiceError, parse_sse

__all__ = ["ServiceClient"]


class ServiceClient:
    """A thin, synchronous client for one coordinator URL."""

    def __init__(self, base_url: Optional[str] = None, timeout: float = 60.0):
        base_url = base_url or os.environ.get(SERVICE_URL_ENV_VAR, "").strip()
        if not base_url:
            raise ServiceError(
                0, f"no coordinator URL (pass one or set {SERVICE_URL_ENV_VAR})"
            )
        if "://" not in base_url:
            base_url = f"http://{base_url}"
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -------------------------------------------------------------- #
    # Plumbing
    # -------------------------------------------------------------- #
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        raw: bool = False,
    ) -> Any:
        data = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        headers: Dict[str, str] = {}
        if data:
            headers["Content-Type"] = "application/json"
        if tracing_enabled():
            # Propagate the ambient span so coordinator-side records stitch
            # into the caller's trace (W3C-style context propagation).
            traceparent = current_traceparent()
            if traceparent:
                headers["traceparent"] = traceparent
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers=headers,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except (ValueError, OSError, AttributeError):
                pass
            raise ServiceError(exc.code, detail or f"{method} {path}: HTTP {exc.code}")
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"{method} {path}: {exc.reason}")
        except OSError as exc:
            raise ServiceError(0, f"{method} {path}: {exc}")
        if raw:
            return body
        return json.loads(body.decode("utf-8")) if body else {}

    # -------------------------------------------------------------- #
    # Campaigns
    # -------------------------------------------------------------- #
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def submit(self, spec_data: Dict[str, Any]) -> Dict[str, Any]:
        """POST a spec's :meth:`to_dict`; returns campaign id + created flag."""
        return self._request("POST", "/campaigns", payload=spec_data)

    def campaigns(self) -> Dict[str, Any]:
        return self._request("GET", "/campaigns")

    def status(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/campaigns/{campaign_id}")

    def artifact(self, campaign_id: str, kind: str) -> str:
        """Fetch one artifact (``json`` / ``csv`` / ``bench``) as text."""
        body = self._request(
            "GET", f"/campaigns/{campaign_id}/artifacts/{kind}", raw=True
        )
        return body.decode("utf-8")

    def cancel(self, campaign_id: str) -> Dict[str, Any]:
        """Stop the campaign: no further claims succeed, streams close."""
        return self._request("POST", f"/campaigns/{campaign_id}/cancel")

    def metrics(self) -> str:
        """Scrape the coordinator's Prometheus-text ``GET /metrics``."""
        return self._request("GET", "/metrics", raw=True).decode("utf-8")

    # -------------------------------------------------------------- #
    # Worker protocol
    # -------------------------------------------------------------- #
    def claim(self, campaign_id: str, worker: str) -> Dict[str, Any]:
        return self._request(
            "POST", f"/campaigns/{campaign_id}/claim", payload={"worker": worker}
        )

    def heartbeat(self, campaign_id: str, job_id: str, worker: str) -> Dict[str, Any]:
        return self._request(
            "POST",
            f"/campaigns/{campaign_id}/jobs/{job_id}/heartbeat",
            payload={"worker": worker},
        )

    def complete(
        self,
        campaign_id: str,
        job_id: str,
        worker: str,
        seconds: float,
        payload: Dict[str, Any],
        cache: Optional[Dict[str, float]] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "worker": worker,
            "seconds": seconds,
            "payload": payload,
        }
        if cache:
            body["cache"] = cache
        return self._request(
            "POST", f"/campaigns/{campaign_id}/jobs/{job_id}/complete", payload=body
        )

    def fail(
        self, campaign_id: str, job_id: str, worker: str, error: str
    ) -> Dict[str, Any]:
        return self._request(
            "POST",
            f"/campaigns/{campaign_id}/jobs/{job_id}/fail",
            payload={"worker": worker, "error": error},
        )

    # -------------------------------------------------------------- #
    # Events
    # -------------------------------------------------------------- #
    def events(
        self, campaign_id: str
    ) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Subscribe to a campaign's SSE stream; yields (event, data).

        The stream ends when the coordinator closes it (after the final
        ``campaign`` completion event).  The per-read timeout is the
        client timeout; the coordinator's keepalive comments arrive every
        poll interval, so a healthy stream never trips it.
        """
        request = urllib.request.Request(
            f"{self.base_url}/campaigns/{campaign_id}/events"
        )
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, f"events: HTTP {exc.code}")
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"events: {exc.reason}")
        with response:
            yield from parse_sse(iter(response.readline, b""))

    def wait(
        self,
        campaign_id: str,
        timeout: Optional[float] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> Dict[str, Any]:
        """Block until the campaign completes; returns the final status.

        Primarily consumes the SSE stream (reporting per-job transitions
        through ``progress``); if the stream drops, falls back to status
        polling so a transient network blip never strands a waiter.
        """
        deadline = time.monotonic() + timeout if timeout else None
        report = progress or (lambda message: None)
        while True:
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(0, f"campaign {campaign_id} wait timed out")
            try:
                for event, data in self.events(campaign_id):
                    if event == "campaign" and data.get("status") in (
                        "complete",
                        "cancelled",
                    ):
                        return self.status(campaign_id)
                    if event in ("claim", "reclaim", "done", "failed", "retry"):
                        job = data.get("job", "")
                        owner = data.get("owner", "")
                        report(
                            f"{job}: {event}" + (f" ({owner})" if owner else "")
                        )
            except ServiceError:
                pass  # stream dropped; fall back to polling
            try:
                status = self.status(campaign_id)
                if status.get("complete") or status.get("cancelled"):
                    return status
            except ServiceError:
                pass
            time.sleep(0.5)

    # -------------------------------------------------------------- #
    # Cache tier
    # -------------------------------------------------------------- #
    def cache_get(self, fingerprint: str) -> Dict[str, Any]:
        return self._request("GET", f"/cache/{fingerprint}")

    def cache_put(self, fingerprint: str, entry: Dict[str, Any]) -> Dict[str, Any]:
        return self._request("PUT", f"/cache/{fingerprint}", payload=entry)

    def cache_stats(self) -> Dict[str, Any]:
        return self._request("GET", "/cache/stats")

"""The campaign coordinator: an asyncio HTTP front end over the job store.

One coordinator process owns a *service root* directory::

    <root>/campaigns/<id>/spec.json    submitted spec (atomic write)
    <root>/campaigns/<id>/state/       JobStore-backed campaign state dir
    <root>/cache/                      shared synthesis-cache tier

and serves three kinds of traffic over plain HTTP/1.1 (stdlib asyncio,
no dependencies):

* **Submissions** — ``POST /campaigns`` validates a
  :class:`~repro.scenarios.campaign.CampaignSpec`, fingerprints it
  (:func:`~repro.service.protocol.campaign_fingerprint`) and materialises
  its jobs; resubmitting the same spec — even concurrently — dedupes onto
  the same campaign id and job set.
* **The worker protocol** — ``POST .../claim`` / ``jobs/{id}/heartbeat``
  / ``complete`` / ``fail`` proxy the lease arbitration of
  :class:`~repro.jobstore.JobStore` over HTTP, so pull-based workers on
  remote machines need no shared filesystem.  Completion is guarded by a
  commit-time lease check: a result uploaded under a lost lease is
  discarded with 409, never double-written.
* **Observation** — ``GET /campaigns/{id}`` (status + robustness
  counters), ``GET /campaigns/{id}/events`` (SSE stream of per-job
  claim/reclaim/retry/done transitions, driven off the jobstore lease and
  attempts sidecars), and ``GET /campaigns/{id}/artifacts/{json,csv,bench}``
  rendered through the same :class:`CampaignResult` artifact code the
  local CLI uses — byte-identical modulo timings.

The shared cache tier rides on the same server: ``GET/PUT
/cache/{fingerprint}`` is backed by the ordinary
:class:`~repro.ga.pinopt.SynthesisDiskCache` segment format, so a
coordinator cache directory is interchangeable with any ``REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..ga.pinopt import SynthesisDiskCache
from ..jobstore import JobStore, Lease, LeaseLost, RetryPolicy, classify_failure
from ..obs import metrics as obs_metrics
from ..obs.log import get_logger
from ..obs.trace import (
    attach_context,
    current_traceparent,
    event as trace_event,
    format_traceparent,
    job_span_id,
    new_trace_id,
    parse_traceparent,
    record_span,
    tracing_enabled,
)
from ..sat.solver import SolveBudget
from ..telemetry import RunTelemetry
from ..scenarios.campaign import (
    CampaignError,
    CampaignJob,
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    JobResult,
)
from .protocol import (
    DEFAULT_POLL_SECONDS,
    SERVICE_POLL_ENV_VAR,
    SERVICE_ROOT_ENV_VAR,
    ServiceError,
    cache_fingerprint,
    campaign_fingerprint,
    sse_event,
)

__all__ = ["CampaignHandle", "CampaignService", "ServiceThread"]


def _poll_from_environment() -> float:
    raw = os.environ.get(SERVICE_POLL_ENV_VAR, "").strip()
    try:
        return float(raw) if raw else DEFAULT_POLL_SECONDS
    except ValueError:
        return DEFAULT_POLL_SECONDS


class CampaignHandle:
    """Coordinator-side state of one submitted campaign.

    The handle reuses the campaign runner's fingerprinted state files for
    persistence and one :class:`JobStore` per remote worker for lease
    arbitration — the coordinator *is* the filesystem the workers no
    longer need.  Scheduling metadata that is cheap to rebuild (backoff
    deadlines, failure counts) lives in memory; everything a restart must
    not lose (spec, finished job state, attempt history) is on disk.
    """

    def __init__(
        self,
        campaign_id: str,
        spec: CampaignSpec,
        directory: str,
        lease_ttl: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        solve_budget: Optional[SolveBudget] = None,
    ):
        self.campaign_id = campaign_id
        self.spec = spec
        self.directory = directory
        self.state_dir = os.path.join(directory, "state")
        os.makedirs(self.state_dir, exist_ok=True)
        self.lease_ttl = lease_ttl
        self.retry_policy = retry_policy or RetryPolicy.from_environment()
        self._solve_budget = (
            solve_budget
            if solve_budget is not None
            else SolveBudget.from_environment()
        )
        #: State-file I/O only; the runner's worker pool is never started.
        self.runner = CampaignRunner(spec, state_dir=self.state_dir, jobs=1)
        #: Read-only store for lease/attempt inspection (never claims).
        self.inspector = JobStore(
            self.state_dir, owner=f"inspector:{campaign_id}", lease_ttl=lease_ttl
        )
        self._jobs = {job.job_id: job for job in spec.jobs}
        self._stores: Dict[str, JobStore] = {}
        self._leases: Dict[str, Tuple[str, Lease]] = {}
        self._failures: Dict[str, int] = {}
        self._not_before: Dict[str, float] = {}
        self._terminal: Dict[str, Dict[str, Any]] = {}
        self.counters: Dict[str, float] = {}
        self._started = time.monotonic()
        self._cancel_path = os.path.join(directory, "cancelled.json")
        self.cancelled = os.path.exists(self._cancel_path)
        self._trace_path = os.path.join(directory, "trace.json")
        self._trace_id = ""
        self._campaign_span_id = ""
        self._campaign_parent = ""
        self._trace_started = time.time()
        self._trace_finished = False
        self._job_started: Dict[str, float] = {}
        if tracing_enabled():
            self._init_trace()

    # -------------------------------------------------------------- #
    # Tracing
    # -------------------------------------------------------------- #
    def _init_trace(self) -> None:
        """Adopt the campaign's persisted trace context, creating it on the
        first submission.  When the submitting request carried a
        ``traceparent`` header (the CLI's client span), the campaign joins
        that trace; otherwise a fresh trace id is minted.  The context is
        persisted next to the spec so a coordinator restart — and every
        worker attempt — keeps stitching into the same trace."""
        try:
            with open(self._trace_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            persisted = parse_traceparent(str(payload.get("traceparent", "")))
        except (OSError, ValueError):
            payload, persisted = {}, None
        if persisted is not None:
            self._trace_id, self._campaign_span_id = persisted
            self._campaign_parent = str(payload.get("parent", ""))
            started = payload.get("started")
            if isinstance(started, (int, float)):
                self._trace_started = float(started)
            return
        client = parse_traceparent(current_traceparent())
        self._trace_id = client[0] if client is not None else new_trace_id()
        self._campaign_parent = client[1] if client is not None else ""
        self._campaign_span_id = job_span_id(
            self._trace_id, f"campaign:{self.campaign_id}"
        )
        payload = {
            "traceparent": format_traceparent(
                self._trace_id, self._campaign_span_id
            ),
            "parent": self._campaign_parent,
            "started": self._trace_started,
        }
        temp_path = f"{self._trace_path}.tmp.{os.getpid()}"
        try:
            with open(temp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.write("\n")
            os.replace(temp_path, self._trace_path)
        except OSError:
            pass

    def _job_traceparent(self, job_id: str) -> str:
        """The deterministic job-span context claim tickets hand workers."""
        if not self._trace_id:
            return ""
        return format_traceparent(
            self._trace_id, job_span_id(self._trace_id, job_id)
        )

    def _finish_job_span(self, job_id: str, status: str) -> None:
        if not self._trace_id:
            return
        started = self._job_started.pop(job_id, None)
        if started is None:
            return
        record_span(
            "job",
            span_id=job_span_id(self._trace_id, job_id),
            start=started,
            duration=time.time() - started,
            parent=self._campaign_span_id,
            trace_id=self._trace_id,
            job=job_id,
            status=status,
            campaign=self.campaign_id,
        )

    def _finish_campaign_span(self, status: str) -> None:
        if not self._trace_id or self._trace_finished:
            return
        self._trace_finished = True
        record_span(
            "campaign",
            span_id=self._campaign_span_id,
            start=self._trace_started,
            duration=time.time() - self._trace_started,
            parent=self._campaign_parent,
            trace_id=self._trace_id,
            campaign=self.campaign_id,
            status=status,
            jobs=len(self.spec.jobs),
        )

    # -------------------------------------------------------------- #
    # Bookkeeping
    # -------------------------------------------------------------- #
    def bump(self, key: str, amount: float = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    def job(self, job_id: str) -> CampaignJob:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(404, f"unknown job {job_id!r}")

    def store_for(self, worker: str) -> JobStore:
        store = self._stores.get(worker)
        if store is None:
            store = JobStore(
                self.state_dir, owner=f"remote:{worker}", lease_ttl=self.lease_ttl
            )
            self._stores[worker] = store
        return store

    def _budget_spec(self, prior_failures: int) -> str:
        """Per-attempt solve budget, doubled per prior failure (mirrors
        :meth:`CampaignRunner._attempt_budget_spec` so service retries
        escalate exactly like local ones)."""
        if self._solve_budget is None:
            return ""
        if prior_failures <= 0:
            return self._solve_budget.to_spec()
        return self._solve_budget.scaled(2.0 ** prior_failures).to_spec()

    # -------------------------------------------------------------- #
    # Worker protocol
    # -------------------------------------------------------------- #
    def claim(self, worker: str, poll: float) -> Dict[str, Any]:
        """Hand the next runnable job to ``worker`` (or done/wait)."""
        if not worker:
            raise ServiceError(400, "claim requires a worker id")
        if self.cancelled:
            return {"done": True, "cancelled": True}
        now = time.time()
        store = self.store_for(worker)
        obs_metrics.counter(
            "repro_service_claims_total", campaign=self.campaign_id
        )
        for job in self.spec.jobs:
            job_id = job.job_id
            if job_id in self._terminal:
                continue
            if self.runner._load_state(job) is not None:
                continue
            if self._not_before.get(job_id, 0.0) > now:
                continue
            # Claim under the job-span context so the jobstore's reclaim
            # evidence lands inside this campaign's trace.
            with attach_context(self._job_traceparent(job_id)):
                lease = store.claim(job_id)
            if lease is None:
                continue  # a live worker holds it
            previous = self._leases.get(job_id)
            if previous is not None and previous[1].path == lease.path:
                # The claim reclaimed a dead worker's expired lease.
                self.bump("worker_reclaims")
                obs_metrics.counter(
                    "repro_service_reclaims_total", campaign=self.campaign_id
                )
            self._leases[job_id] = (worker, lease)
            self._job_started.setdefault(job_id, time.time())
            prior = self._failures.get(job_id, 0)
            return {
                "job": {
                    "job_id": job_id,
                    "kind": job.kind,
                    "params": job.params,
                },
                "attempt": prior + 1,
                "lease_ttl": store.lease_ttl,
                "budget": self._budget_spec(prior),
                "traceparent": self._job_traceparent(job_id),
            }
        if self.complete():
            self._finish_campaign_span("complete")
            return {"done": True}
        return {"wait": poll}

    def _held_lease(self, worker: str, job_id: str) -> Tuple[JobStore, Lease]:
        entry = self._leases.get(job_id)
        store = self._stores.get(worker)
        if entry is None or entry[0] != worker or store is None:
            raise ServiceError(
                409, f"worker {worker!r} does not hold the lease on {job_id!r}"
            )
        return store, entry[1]

    def heartbeat(self, worker: str, job_id: str) -> Dict[str, Any]:
        began = time.monotonic()
        store, lease = self._held_lease(worker, job_id)
        try:
            store.heartbeat(lease)
        except LeaseLost as exc:
            self._leases.pop(job_id, None)
            obs_metrics.counter(
                "repro_service_lease_lost_total", campaign=self.campaign_id
            )
            raise ServiceError(409, str(exc))
        obs_metrics.observe(
            "repro_service_heartbeat_seconds",
            time.monotonic() - began,
            campaign=self.campaign_id,
        )
        return {"expires": lease.expires}

    def complete_job(
        self,
        worker: str,
        job_id: str,
        seconds: float,
        payload: Dict[str, Any],
        cache: Optional[Dict[str, float]] = None,
    ) -> Dict[str, Any]:
        """Commit an uploaded result — unless the lease was lost (409)."""
        job = self.job(job_id)
        try:
            store, lease = self._held_lease(worker, job_id)
            if not store.holds(lease):
                self._leases.pop(job_id, None)
                raise ServiceError(
                    409, f"lease on {job_id!r} was reclaimed; result discarded"
                )
        except ServiceError:
            self.bump("lease_lost_discards")
            raise
        attempts = self._failures.get(job_id, 0) + 1
        result = JobResult(
            job_id=job_id,
            kind=job.kind,
            status="ok",
            seconds=float(seconds),
            payload=dict(payload),
            attempts=attempts,
            owner=store.owner,
        )
        self.runner._save_state(job, result)
        store.release(lease, status="ok")
        self._leases.pop(job_id, None)
        for key, value in (cache or {}).items():
            self.bump(f"remote_cache_{key}", value)
        obs_metrics.counter(
            "repro_service_jobs_total", campaign=self.campaign_id, status="ok"
        )
        telemetry_dict = payload.get("telemetry")
        if isinstance(telemetry_dict, dict) and telemetry_dict:
            try:
                obs_metrics.absorb_telemetry(
                    RunTelemetry.from_dict(telemetry_dict),
                    campaign=self.campaign_id,
                )
            except ValueError:
                pass  # malformed worker telemetry never fails a commit
        self._finish_job_span(job_id, "ok")
        if self.complete():
            self._finish_campaign_span("complete")
        return {"committed": True, "attempts": attempts}

    def fail_job(self, worker: str, job_id: str, error: str) -> Dict[str, Any]:
        """Record a failure: schedule a retry or finish the job terminally."""
        self.job(job_id)
        store, lease = self._held_lease(worker, job_id)
        self._failures[job_id] = self._failures.get(job_id, 0) + 1
        attempt = self._failures[job_id]
        verdict = classify_failure(None, error)
        self.bump(f"failures_{verdict}")
        if verdict == "transient" and self.retry_policy.should_retry(attempt):
            delay = self.retry_policy.delay(job_id, attempt)
            self._not_before[job_id] = time.time() + delay
            store.release(lease, status="retry")
            self._leases.pop(job_id, None)
            self.bump("retries")
            obs_metrics.counter(
                "repro_service_retries_total", campaign=self.campaign_id
            )
            if self._trace_id:
                with attach_context(self._job_traceparent(job_id)):
                    trace_event(
                        "retry",
                        job=job_id,
                        attempt=attempt,
                        delay=round(delay, 4),
                        error=error,
                    )
            return {"retry": True, "delay": delay, "attempt": attempt}
        status = (
            "timed_out"
            if error.split(":", 1)[0].strip() == "SolveBudgetExceeded"
            else "error"
        )
        if status == "timed_out":
            self.bump("timed_out")
        self._terminal[job_id] = {
            "status": status,
            "error": error,
            "attempts": attempt,
            "owner": store.owner,
        }
        store.release(lease, status=status)
        self._leases.pop(job_id, None)
        obs_metrics.counter(
            "repro_service_jobs_total", campaign=self.campaign_id, status=status
        )
        self._finish_job_span(job_id, status)
        if self.complete():
            self._finish_campaign_span("complete")
        return {"terminal": status}

    def cancel(self) -> Dict[str, Any]:
        """Stop handing out work: claims drain with ``done`` from now on.

        The marker is persisted next to the spec, so a coordinator restart
        keeps the campaign cancelled.  Running attempts finish (or lose
        their lease); no new claims succeed."""
        if not self.cancelled:
            self.cancelled = True
            temp_path = f"{self._cancel_path}.tmp.{os.getpid()}"
            try:
                with open(temp_path, "w", encoding="utf-8") as handle:
                    json.dump({"cancelled_at": time.time()}, handle)
                    handle.write("\n")
                os.replace(temp_path, self._cancel_path)
            except OSError:
                pass
            self.bump("cancelled")
            obs_metrics.counter(
                "repro_service_cancels_total", campaign=self.campaign_id
            )
            if self._trace_id:
                with attach_context(
                    format_traceparent(self._trace_id, self._campaign_span_id)
                ):
                    trace_event("cancel", campaign=self.campaign_id)
            self._finish_campaign_span("cancelled")
        return {"cancelled": True, "campaign": self.campaign_id}

    def finished(self) -> bool:
        """Terminal for observers: cancelled or every job done."""
        return self.cancelled or self.complete()

    # -------------------------------------------------------------- #
    # Observation
    # -------------------------------------------------------------- #
    def job_state(self, job_id: str) -> Tuple[str, str]:
        """Current ``(status, owner)`` of one job, read from disk."""
        job = self.job(job_id)
        restored = self.runner._load_state(job)
        if restored is not None:
            return "done", restored.owner
        terminal = self._terminal.get(job_id)
        if terminal is not None:
            return terminal["status"], terminal["owner"]
        holder = self.inspector._read_lease(self.inspector.lease_path(job_id))
        if holder is not None:
            return "running", str(holder.get("owner", ""))
        return "pending", ""

    def complete(self) -> bool:
        """Every job finished (successfully or terminally)?"""
        for job in self.spec.jobs:
            if job.job_id in self._terminal:
                continue
            if self.runner._load_state(job) is None:
                return False
        return True

    def robustness(self) -> Dict[str, float]:
        counters = dict(self.counters)

        def add(key: str, amount: float) -> None:
            if amount:
                counters[key] = counters.get(key, 0) + amount

        for store in self._stores.values():
            add("lease_claims", store.claims)
            add("lease_conflicts", store.claim_conflicts)
            add("lease_reclaims", store.reclaims)
        return {key: value for key, value in sorted(counters.items()) if value}

    def status(self) -> Dict[str, Any]:
        counts: Dict[str, int] = {}
        states: Dict[str, str] = {}
        for job in self.spec.jobs:
            state, _ = self.job_state(job.job_id)
            states[job.job_id] = state
            counts[state] = counts.get(state, 0) + 1
        return {
            "campaign": self.campaign_id,
            "name": self.spec.name,
            "jobs": len(self.spec.jobs),
            "complete": self.complete(),
            "cancelled": self.cancelled,
            "counts": counts,
            "states": states,
            "robustness": self.robustness(),
        }

    def result(self) -> CampaignResult:
        """The campaign's current results, runner-artifact compatible."""
        results: List[JobResult] = []
        for job in self.spec.jobs:
            restored = self.runner._load_state(job)
            if restored is not None:
                results.append(restored)
                continue
            terminal = self._terminal.get(job.job_id)
            if terminal is not None:
                results.append(
                    JobResult(
                        job_id=job.job_id,
                        kind=job.kind,
                        status=terminal["status"],
                        error=terminal["error"],
                        attempts=terminal["attempts"],
                        owner=terminal["owner"],
                    )
                )
                continue
            results.append(
                JobResult(job_id=job.job_id, kind=job.kind, status="pending")
            )
        return CampaignResult(
            name=self.spec.name,
            results=results,
            total_seconds=time.monotonic() - self._started,
            jobs=1,
            robustness=self.robustness(),
        )

    def artifact(self, kind: str) -> Tuple[str, str]:
        """Render one artifact: returns ``(content_type, text)``."""
        result = self.result()
        if kind == "json":
            return "application/json", result.to_json() + "\n"
        if kind == "csv":
            return "text/csv", result.to_csv()
        if kind == "bench":
            payload = json.dumps(result.bench_payload(), indent=2, sort_keys=True)
            return "application/json", payload + "\n"
        raise ServiceError(404, f"unknown artifact kind {kind!r}")

    # -------------------------------------------------------------- #
    # SSE
    # -------------------------------------------------------------- #
    def snapshot_frame(self) -> Tuple[bytes, Dict[str, Tuple]]:
        """The initial SSE snapshot plus the diff baseline it establishes."""
        states: Dict[str, str] = {}
        baseline: Dict[str, Tuple] = {}
        for job in self.spec.jobs:
            job_id = job.job_id
            state, owner = self.job_state(job_id)
            states[job_id] = state
            attempts = self.inspector.attempts(job_id)
            last = attempts[-1]["status"] if attempts else ""
            baseline[job_id] = (state, owner, len(attempts), last)
        frame = sse_event(
            "snapshot", {"campaign": self.campaign_id, "jobs": states}
        )
        return frame, baseline

    def event_frames(
        self, previous: Dict[str, Tuple]
    ) -> Tuple[List[bytes], Dict[str, Tuple]]:
        """SSE frames for every per-job transition since ``previous``.

        Transitions are derived from the jobstore's own evidence — lease
        files and ``.attempts.json`` sidecars — not from in-memory
        scheduling state, so the stream reports what *actually* happened
        on disk (including reclaims of dead workers' leases).
        """
        frames: List[bytes] = []
        current: Dict[str, Tuple] = {}
        for job in self.spec.jobs:
            job_id = job.job_id
            state, owner = self.job_state(job_id)
            attempts = self.inspector.attempts(job_id)
            last = attempts[-1]["status"] if attempts else ""
            key = (state, owner, len(attempts), last)
            current[job_id] = key
            prev = previous.get(job_id, ("pending", "", 0, ""))
            if key == prev:
                continue
            if len(attempts) > prev[2]:
                record = attempts[-1]
                frames.append(
                    sse_event(
                        "reclaim" if record.get("reclaimed") else "claim",
                        {"job": job_id, "owner": str(record.get("owner", ""))},
                    )
                )
            if last != prev[3] and last in ("retry", "requeued"):
                frames.append(
                    sse_event("retry", {"job": job_id, "attempts": len(attempts)})
                )
            if state == "done" and prev[0] != "done":
                frames.append(sse_event("done", {"job": job_id, "owner": owner}))
            elif state in ("error", "timed_out") and prev[0] != state:
                terminal = self._terminal.get(job_id, {})
                frames.append(
                    sse_event(
                        "failed",
                        {
                            "job": job_id,
                            "status": state,
                            "error": str(terminal.get("error", "")),
                        },
                    )
                )
        return frames, current

    def final_frame(self) -> bytes:
        status = self.status()
        terminal = "cancelled" if self.cancelled else "complete"
        self._finish_campaign_span(terminal)
        return sse_event(
            "campaign",
            {
                "campaign": self.campaign_id,
                "status": terminal,
                "counts": status["counts"],
            },
        )

    def metrics_frame(self) -> bytes:
        """A live-metrics SSE frame: robustness counters plus the process
        registry snapshot (the same numbers ``GET /metrics`` renders)."""
        return sse_event(
            "metrics",
            {
                "campaign": self.campaign_id,
                "robustness": self.robustness(),
                "metrics": obs_metrics.registry().snapshot(),
            },
        )


class CampaignService:
    """The coordinator: campaign registry, request router, cache tier.

    All request handling is synchronous and runs between awaits on the
    event loop, so handlers never interleave — the single coordinator
    process is the serialization point the filesystem was in PR 7.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        lease_ttl: Optional[float] = None,
        poll: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        solve_budget: Optional[SolveBudget] = None,
    ):
        root = root or os.environ.get(SERVICE_ROOT_ENV_VAR, "").strip()
        if not root:
            raise ServiceError(500, "a service root directory is required")
        self.root = root
        self.lease_ttl = lease_ttl
        self.poll = poll if poll is not None else _poll_from_environment()
        self.retry_policy = retry_policy
        self.solve_budget = solve_budget
        self.campaigns_dir = os.path.join(root, "campaigns")
        os.makedirs(self.campaigns_dir, exist_ok=True)
        cache_dir = os.path.join(root, "cache")
        os.makedirs(cache_dir, exist_ok=True)
        self.cache = SynthesisDiskCache(cache_dir)
        self._cache_index: Dict[str, Tuple[str, str, Tuple[int, ...]]] = {
            cache_fingerprint(effort, library, signature): (
                effort,
                library,
                signature,
            )
            for effort, library, signature, _ in self.cache.entries()
        }
        self.cache_counters: Dict[str, int] = {
            "gets": 0,
            "get_hits": 0,
            "get_misses": 0,
            "puts": 0,
        }
        self._handles: Dict[str, CampaignHandle] = {}
        self._recover()

    # -------------------------------------------------------------- #
    # Campaign registry
    # -------------------------------------------------------------- #
    def _recover(self) -> None:
        """Re-register every campaign found under the root (restart-safe)."""
        try:
            entries = sorted(os.listdir(self.campaigns_dir))
        except OSError:
            return
        for campaign_id in entries:
            spec_path = os.path.join(self.campaigns_dir, campaign_id, "spec.json")
            try:
                with open(spec_path, "r", encoding="utf-8") as handle:
                    spec = CampaignSpec.from_dict(json.load(handle))
            except (OSError, ValueError, CampaignError):
                continue
            self._handles[campaign_id] = self._handle_for(campaign_id, spec)

    def _handle_for(self, campaign_id: str, spec: CampaignSpec) -> CampaignHandle:
        return CampaignHandle(
            campaign_id,
            spec,
            os.path.join(self.campaigns_dir, campaign_id),
            lease_ttl=self.lease_ttl,
            retry_policy=self.retry_policy,
            solve_budget=self.solve_budget,
        )

    def submit(self, spec_data: Dict[str, Any]) -> Dict[str, Any]:
        try:
            spec = CampaignSpec.from_dict(spec_data)
        except CampaignError as exc:
            raise ServiceError(400, str(exc))
        campaign_id = campaign_fingerprint(spec.to_dict())
        existing = self._handles.get(campaign_id)
        if existing is not None:
            return {
                "campaign": campaign_id,
                "created": False,
                "jobs": len(existing.spec.jobs),
            }
        directory = os.path.join(self.campaigns_dir, campaign_id)
        os.makedirs(directory, exist_ok=True)
        spec_path = os.path.join(directory, "spec.json")
        temp_path = f"{spec_path}.tmp.{os.getpid()}"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(spec.to_dict(), handle, indent=2, sort_keys=True)
        os.replace(temp_path, spec_path)
        self._handles[campaign_id] = self._handle_for(campaign_id, spec)
        return {"campaign": campaign_id, "created": True, "jobs": len(spec.jobs)}

    def campaign(self, campaign_id: str) -> CampaignHandle:
        handle = self._handles.get(campaign_id)
        if handle is None:
            raise ServiceError(404, f"unknown campaign {campaign_id!r}")
        return handle

    # -------------------------------------------------------------- #
    # Cache tier
    # -------------------------------------------------------------- #
    def cache_get(self, fingerprint: str) -> Dict[str, Any]:
        self.cache_counters["gets"] += 1
        key = self._cache_index.get(fingerprint)
        if key is None:
            self.cache_counters["get_misses"] += 1
            raise ServiceError(404, f"no cache entry {fingerprint!r}")
        effort, library, signature = key
        area = self.cache.get(effort, library, signature)
        if area is None:
            self.cache_counters["get_misses"] += 1
            raise ServiceError(404, f"no cache entry {fingerprint!r}")
        self.cache_counters["get_hits"] += 1
        return {
            "effort": effort,
            "library": library,
            "signature": list(signature),
            "area": area,
        }

    def cache_put(self, fingerprint: str, body: Dict[str, Any]) -> Dict[str, Any]:
        try:
            effort = str(body["effort"])
            library = str(body["library"])
            signature = tuple(int(value) for value in body["signature"])
            area = float(body["area"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(400, f"malformed cache entry: {exc}")
        if cache_fingerprint(effort, library, signature) != fingerprint:
            raise ServiceError(
                400, "cache entry does not match its fingerprint path"
            )
        self.cache.put(effort, library, signature, area)
        self._cache_index[fingerprint] = (effort, library, signature)
        self.cache_counters["puts"] += 1
        return {"stored": True}

    def cache_stats(self) -> Dict[str, Any]:
        return {
            "entries": len(self.cache),
            "hits": self.cache.hits,
            "appends": self.cache.appends,
            **self.cache_counters,
        }

    # -------------------------------------------------------------- #
    # Router
    # -------------------------------------------------------------- #
    def handle(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, str, bytes]:
        """Route one request; returns ``(status, content_type, body)``."""
        try:
            return self._route(method, path, body)
        except ServiceError as exc:
            payload = json.dumps({"error": exc.message}).encode("utf-8")
            return exc.status, "application/json", payload

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, Any]:
        if not body:
            return {}
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(400, f"request body is not JSON: {exc}")
        if not isinstance(data, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return data

    @staticmethod
    def _ok(payload: Any, status: int = 200) -> Tuple[int, str, bytes]:
        text = json.dumps(payload, sort_keys=True)
        return status, "application/json", text.encode("utf-8")

    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, str, bytes]:
        parts = [part for part in path.split("?", 1)[0].split("/") if part]
        obs_metrics.counter(
            "repro_service_requests_total",
            route=parts[0] if parts else "root",
            method=method,
        )
        if parts == ["healthz"] and method == "GET":
            return self._ok({"ok": True, "campaigns": len(self._handles)})
        if parts == ["metrics"] and method == "GET":
            obs_metrics.gauge("repro_service_campaigns", len(self._handles))
            obs_metrics.gauge(
                "repro_service_campaigns_active",
                sum(
                    1 for handle in self._handles.values() if not handle.finished()
                ),
            )
            text = obs_metrics.render_prometheus()
            return 200, "text/plain; version=0.0.4", text.encode("utf-8")
        if parts == ["campaigns"]:
            if method == "POST":
                submitted = self.submit(self._json_body(body))
                return self._ok(submitted, status=201 if submitted["created"] else 200)
            if method == "GET":
                return self._ok(
                    {
                        "campaigns": [
                            {
                                "campaign": campaign_id,
                                "name": handle.spec.name,
                                "jobs": len(handle.spec.jobs),
                                "complete": handle.complete(),
                                "cancelled": handle.cancelled,
                                "robustness": handle.robustness(),
                            }
                            for campaign_id, handle in sorted(self._handles.items())
                        ]
                    }
                )
        if parts[:1] == ["campaigns"] and len(parts) >= 2:
            handle = self.campaign(parts[1])
            rest = parts[2:]
            if not rest and method == "GET":
                return self._ok(handle.status())
            if rest == ["cancel"] and method == "POST":
                return self._ok(handle.cancel())
            if rest == ["claim"] and method == "POST":
                data = self._json_body(body)
                return self._ok(
                    handle.claim(str(data.get("worker", "")), self.poll)
                )
            if len(rest) == 3 and rest[0] == "jobs" and method == "POST":
                data = self._json_body(body)
                worker = str(data.get("worker", ""))
                job_id = rest[1]
                if rest[2] == "heartbeat":
                    return self._ok(handle.heartbeat(worker, job_id))
                if rest[2] == "complete":
                    return self._ok(
                        handle.complete_job(
                            worker,
                            job_id,
                            float(data.get("seconds", 0.0)),
                            dict(data.get("payload", {})),
                            cache=data.get("cache"),
                        )
                    )
                if rest[2] == "fail":
                    return self._ok(
                        handle.fail_job(worker, job_id, str(data.get("error", "")))
                    )
            if len(rest) == 2 and rest[0] == "artifacts" and method == "GET":
                content_type, text = handle.artifact(rest[1])
                return 200, content_type, text.encode("utf-8")
        if parts[:1] == ["cache"]:
            if parts == ["cache", "stats"] and method == "GET":
                return self._ok(self.cache_stats())
            if len(parts) == 2:
                if method == "GET":
                    return self._ok(self.cache_get(parts[1]))
                if method == "PUT":
                    return self._ok(
                        self.cache_put(parts[1], self._json_body(body))
                    )
        raise ServiceError(404, f"no route for {method} {path}")

    # -------------------------------------------------------------- #
    # asyncio HTTP plumbing
    # -------------------------------------------------------------- #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                header_blob = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=60.0
                )
            except (
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                ConnectionError,
            ):
                return
            try:
                head = header_blob.decode("latin-1")
                request_line, *header_lines = head.split("\r\n")
                method, path, _ = request_line.split(" ", 2)
            except ValueError:
                await self._write_response(
                    writer, 400, "application/json", b'{"error": "bad request"}'
                )
                return
            headers = {}
            for line in header_lines:
                name, _, value = line.partition(":")
                if _:
                    headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or 0)
            body = await reader.readexactly(length) if length > 0 else b""

            event_parts = [part for part in path.split("/") if part]
            if (
                method == "GET"
                and len(event_parts) == 3
                and event_parts[0] == "campaigns"
                and event_parts[2] == "events"
            ):
                await self._stream_events(writer, event_parts[1])
                return
            # Requests join the caller's trace: spans and events recorded
            # while handling parent under the client's ambient span.
            traceparent = headers.get("traceparent", "")
            if traceparent and tracing_enabled():
                with attach_context(traceparent):
                    status, content_type, payload = self.handle(method, path, body)
            else:
                status, content_type, payload = self.handle(method, path, body)
            await self._write_response(writer, status, content_type, payload)
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        payload: bytes,
    ) -> None:
        reason = http.client.responses.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def _stream_events(
        self, writer: asyncio.StreamWriter, campaign_id: str
    ) -> None:
        """Serve one SSE subscription until the campaign completes."""
        try:
            handle = self.campaign(campaign_id)
        except ServiceError as exc:
            await self._write_response(
                writer,
                exc.status,
                "application/json",
                json.dumps({"error": exc.message}).encode("utf-8"),
            )
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("latin-1"))
            frame, baseline = handle.snapshot_frame()
            writer.write(frame)
            await writer.drain()
            while True:
                frames, baseline = handle.event_frames(baseline)
                for frame in frames:
                    writer.write(frame)
                if handle.finished():
                    writer.write(handle.final_frame())
                    await writer.drain()
                    return
                # Live metrics ride the same stream: one frame per poll,
                # mirroring what a /metrics scrape would report right now.
                writer.write(handle.metrics_frame())
                # Keepalive comment: clients with read timeouts see bytes
                # every poll even when nothing happened.
                writer.write(b": keepalive\n\n")
                await writer.drain()
                await asyncio.sleep(self.poll)
        except (ConnectionError, OSError):
            return  # subscriber went away

    async def start(self, host: str = "127.0.0.1", port: int = 0):
        """Start the asyncio server; returns the ``asyncio.Server``."""
        return await asyncio.start_server(self._handle_connection, host, port)

    def run(self, host: str = "127.0.0.1", port: int = 8765) -> None:
        """Serve forever in the current thread (the ``repro serve`` verb)."""
        log = get_logger("serve")

        async def main() -> None:
            server = await self.start(host, port)
            addr = server.sockets[0].getsockname()
            log(
                f"serving campaigns on http://{addr[0]}:{addr[1]} (root {self.root})",
                host=addr[0],
                port=addr[1],
                root=self.root,
            )
            async with server:
                await server.serve_forever()

        asyncio.run(main())


class ServiceThread:
    """A coordinator running on a background thread (tests, benchmarks).

    ::

        with ServiceThread(root=tmp_path) as service:
            client = ServiceClient(service.url)
            ...
    """

    def __init__(self, root: str, host: str = "127.0.0.1", port: int = 0, **kwargs):
        self.service = CampaignService(root=root, **kwargs)
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self.url = ""

    def __enter__(self) -> "ServiceThread":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("service thread failed to start")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def main() -> None:
            self._stop = asyncio.Event()
            server = await self.service.start(self._host, self._port)
            address = server.sockets[0].getsockname()
            self.url = f"http://{address[0]}:{address[1]}"
            self._ready.set()
            await self._stop.wait()
            server.close()
            await server.wait_closed()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

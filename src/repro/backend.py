"""Backend dispatch between the pure-Python cores and the compiled twin.

The repository ships two implementations of its hottest loops: the
always-available pure-Python reference (``repro.sat.solver``,
``repro.sim.engine``) and an optional C extension
(``repro._native._core``) that mirrors them instruction-for-instruction
— same decisions, same conflict/propagation counts, same packed lanes.
This module decides which one runs:

* ``REPRO_BACKEND`` unset (or ``auto``): use ``native`` when the
  extension imports cleanly, ``pure`` otherwise.
* ``REPRO_BACKEND=pure``: always use the reference implementation.
* ``REPRO_BACKEND=native``: require the extension; raise
  :class:`BackendUnavailable` (with the original import error text) if
  it is not built.

Constructors (`SatSolver`, `NetlistSimulator`, `AigSimulator`) also take
an explicit ``backend=`` argument which wins over the environment.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

BACKEND_ENV_VAR = "REPRO_BACKEND"
BACKENDS = ("pure", "native")


class BackendUnavailable(RuntimeError):
    """Raised when ``REPRO_BACKEND=native`` is forced but the extension is missing."""


def native_module() -> Optional[Any]:
    """Return the compiled core module, or ``None`` when not built."""

    from repro import _native

    return _native.core


def native_import_error() -> Optional[str]:
    """Return the import-error text explaining why the extension is absent."""

    from repro import _native

    return _native.IMPORT_ERROR


def requested_backend() -> str:
    """Return the backend requested via the environment: ``auto``/``pure``/``native``."""

    raw = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if raw in ("", "auto"):
        return "auto"
    if raw in BACKENDS:
        return raw
    raise ValueError(
        f"{BACKEND_ENV_VAR} must be one of 'auto', 'pure', or 'native', got {raw!r}"
    )


def active_backend(requested: Optional[str] = None) -> str:
    """Resolve the backend that should actually run.

    ``requested`` overrides the environment when given (constructor
    arguments use this).  Returns ``"pure"`` or ``"native"``.
    """

    choice = requested if requested is not None else requested_backend()
    choice = choice.strip().lower()
    if choice in ("", "auto"):
        return "native" if native_module() is not None else "pure"
    if choice == "pure":
        return "pure"
    if choice == "native":
        if native_module() is None:
            raise BackendUnavailable(
                "REPRO_BACKEND=native was requested but the compiled extension "
                "is not available: "
                f"{native_import_error()} "
                "(build it with `python setup.py build_ext --inplace`)"
            )
        return "native"
    raise ValueError(f"unknown backend {choice!r}; expected one of {BACKENDS}")


def backend_report() -> Dict[str, Any]:
    """Structured backend status for ``repro doctor`` and tests."""

    module = native_module()
    try:
        requested = requested_backend()
    except ValueError as exc:
        requested = f"invalid ({exc})"
    report: Dict[str, Any] = {
        "requested": requested,
        "native_available": module is not None,
        "native_import_error": native_import_error(),
        "native_module": getattr(module, "__file__", None),
    }
    try:
        report["active"] = active_backend()
        report["fallback_reason"] = None
    except (BackendUnavailable, ValueError) as exc:
        report["active"] = "unavailable"
        report["fallback_reason"] = str(exc)
    return report

"""Deterministic fault injection for chaos-testing the campaign stack.

Robustness claims are only worth something when they are *tested*: this
module turns "what if a worker dies mid-sweep?" into a reproducible
experiment.  Fault points are named hooks compiled into the execution
layer (worker kill, solver budget exhaustion, torn state writes, cache
corruption, lease-clock skew); they are inert unless the ``REPRO_FAULTS``
environment variable selects them, so the production paths pay one cheap
guard per hook and nothing else.

Spec syntax
-----------

``REPRO_FAULTS`` is a semicolon-separated list of fault entries::

    REPRO_FAULTS="worker_kill:job=window_001,once;solver_unknown:after=2,count=1"

Each entry is ``<point>`` or ``<point>:<opt>,<opt>,...`` where an option is
``key=value`` or the bare flag ``once``.  Options understood everywhere:

``job=<substring>``
    Only hits whose context key contains the substring match (job ids for
    campaign-level faults).
``after=<n>``
    Skip the first *n* matching hits before firing.
``count=<n>``
    Fire at most *n* times (default 1; ``count=0`` means unlimited).
``once``
    Fire at most once *across processes*, coordinated through a marker
    file in ``REPRO_FAULTS_DIR`` (O_EXCL create — exactly one process
    wins).  Without a marker directory ``once`` degrades to
    process-local ``count=1``.

Point-specific options (e.g. ``seconds=-30`` for ``clock_skew``) are kept
verbatim and read back via :func:`fault_param`.

Fault points compiled into the stack
------------------------------------

===================  =======================================================
``worker_kill``      SIGKILL the executing process at job start
                     (``scenarios/campaign._execute_job_task``).
``solver_unknown``   Force a budget-exhausted UNKNOWN verdict from
                     ``SatSolver.solve``.
``torn_state``       Truncate a campaign per-job state file mid-write
                     (simulates a torn write / partial flush).
``cache_corrupt``    Garble a line appended to the synthesis disk cache.
``clock_skew``       Constant offset (``seconds=<float>``) added to the
                     job-store lease clock.
===================  =======================================================

Determinism: hits are counted in program order within each process, and
cross-process coordination uses atomic marker files, so a fault spec plus
a seeded workload yields the same injected fault every run.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FAULTS_ENV_VAR",
    "FAULTS_DIR_ENV_VAR",
    "FaultSpec",
    "faults_enabled",
    "fault_fires",
    "fault_param",
    "clock_skew_seconds",
    "maybe_kill_process",
    "corrupt_text",
    "fired_counts",
    "reset_fault_state",
]

#: Environment variable holding the fault spec (empty/unset = no faults).
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Directory for cross-process ``once`` marker files (optional).
FAULTS_DIR_ENV_VAR = "REPRO_FAULTS_DIR"


@dataclass
class FaultSpec:
    """One parsed ``REPRO_FAULTS`` entry plus its process-local counters."""

    point: str
    job: Optional[str] = None
    after: int = 0
    count: int = 1  # 0 = unlimited
    once: bool = False
    params: Dict[str, str] = field(default_factory=dict)
    # Process-local counters (cross-process state lives in marker files).
    hits: int = 0
    fires: int = 0
    exhausted: bool = False

    def matches(self, key: Optional[str]) -> bool:
        if self.job is None:
            return True
        return key is not None and self.job in key


def _parse_spec(raw: str) -> List[FaultSpec]:
    specs: List[FaultSpec] = []
    for entry in raw.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        point, _, options = entry.partition(":")
        spec = FaultSpec(point=point.strip())
        for option in options.split(","):
            option = option.strip()
            if not option:
                continue
            if option == "once":
                spec.once = True
                continue
            key, separator, value = option.partition("=")
            if not separator:
                raise ValueError(
                    f"bad {FAULTS_ENV_VAR} option {option!r} in entry {entry!r}: "
                    "expected key=value or the flag 'once'"
                )
            key = key.strip()
            value = value.strip()
            if key == "job":
                spec.job = value
            elif key == "after":
                spec.after = int(value)
            elif key == "count":
                spec.count = int(value)
            else:
                spec.params[key] = value
        specs.append(spec)
    return specs


# Parsed plan cached against the exact environment strings, so tests can
# monkeypatch the environment and the next call re-parses.
_PLAN_CACHE: Optional[Tuple[Tuple[str, str], List[FaultSpec]]] = None


def _active_specs() -> List[FaultSpec]:
    global _PLAN_CACHE
    raw = os.environ.get(FAULTS_ENV_VAR, "")
    marker_dir = os.environ.get(FAULTS_DIR_ENV_VAR, "")
    cache_key = (raw, marker_dir)
    if _PLAN_CACHE is not None and _PLAN_CACHE[0] == cache_key:
        return _PLAN_CACHE[1]
    specs = _parse_spec(raw) if raw else []
    _PLAN_CACHE = (cache_key, specs)
    return specs


def reset_fault_state() -> None:
    """Drop the parsed plan and all process-local counters (for tests)."""
    global _PLAN_CACHE
    _PLAN_CACHE = None


def faults_enabled() -> bool:
    """True when a fault spec is active (cheap guard for hot paths)."""
    return bool(os.environ.get(FAULTS_ENV_VAR))


def _claim_once_marker(spec: FaultSpec, index: int) -> bool:
    """Atomically claim the cross-process right to fire a ``once`` fault."""
    marker_dir = os.environ.get(FAULTS_DIR_ENV_VAR, "")
    if not marker_dir:
        return True  # degrade to process-local count=1
    os.makedirs(marker_dir, exist_ok=True)
    marker = os.path.join(marker_dir, f"{spec.point}-{index}.fired")
    try:
        handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False  # another process already fired this fault
    with os.fdopen(handle, "w") as stream:
        stream.write(f"{os.getpid()}\n")
    return True


def fault_fires(point: str, key: Optional[str] = None) -> bool:
    """Should the named fault point fire for this hit?  Counts the hit."""
    if not os.environ.get(FAULTS_ENV_VAR):
        return False
    fired = False
    for index, spec in enumerate(_active_specs()):
        if spec.point != point or not spec.matches(key):
            continue
        spec.hits += 1
        if spec.exhausted or spec.hits <= spec.after:
            continue
        if spec.once:
            if spec.fires:
                continue
            if not _claim_once_marker(spec, index):
                spec.exhausted = True  # someone else fired; never retry the marker
                continue
        elif spec.count and spec.fires >= spec.count:
            continue
        spec.fires += 1
        fired = True
    return fired


def fault_param(point: str, name: str, default: Optional[str] = None) -> Optional[str]:
    """First point-specific option value for ``point`` (spec order)."""
    for spec in _active_specs():
        if spec.point == point and name in spec.params:
            return spec.params[name]
    return default


def clock_skew_seconds() -> float:
    """Constant clock offset from an active ``clock_skew`` fault (else 0)."""
    if not os.environ.get(FAULTS_ENV_VAR):
        return 0.0
    raw = fault_param("clock_skew", "seconds")
    if raw is None:
        return 0.0
    return float(raw)


def maybe_kill_process(key: Optional[str] = None) -> None:
    """SIGKILL the current process if the ``worker_kill`` fault fires."""
    if fault_fires("worker_kill", key):
        os.kill(os.getpid(), signal.SIGKILL)


def corrupt_text(point: str, text: str, key: Optional[str] = None) -> str:
    """Return ``text`` truncated mid-way when the fault fires (else intact)."""
    if fault_fires(point, key):
        return text[: max(1, len(text) // 2)]
    return text


def fired_counts() -> Dict[str, int]:
    """Process-local fire counts per point (robustness telemetry)."""
    counts: Dict[str, int] = {}
    for spec in _active_specs():
        if spec.fires:
            counts[spec.point] = counts.get(spec.point, 0) + spec.fires
    return counts

"""Low-level bit-manipulation helpers shared across the library.

Truth tables throughout :mod:`repro` are stored as Python integers used as
bit vectors: bit ``r`` of the integer holds the function value for the input
minterm whose index is ``r`` (variable 0 is the least-significant bit of the
minterm index).  These helpers centralise the bit tricks used to manipulate
such packed tables.
"""

from __future__ import annotations

from typing import Iterator, List

__all__ = [
    "mask_for",
    "popcount",
    "bit_at",
    "set_bit",
    "variable_pattern",
    "iter_minterms",
    "swap_adjacent_variables",
    "expand_with_new_variable",
    "parity",
]


def mask_for(num_vars: int) -> int:
    """Return the all-ones mask covering the ``2**num_vars`` rows of a table."""
    if num_vars < 0:
        raise ValueError("num_vars must be non-negative")
    return (1 << (1 << num_vars)) - 1


if hasattr(int, "bit_count"):

    def popcount(value: int) -> int:
        """Return the number of set bits in ``value`` (which must be >= 0)."""
        if value < 0:
            raise ValueError("popcount is only defined for non-negative integers")
        return value.bit_count()

else:  # Python < 3.10 fallback

    def popcount(value: int) -> int:
        """Return the number of set bits in ``value`` (which must be >= 0)."""
        if value < 0:
            raise ValueError("popcount is only defined for non-negative integers")
        return bin(value).count("1")


def bit_at(value: int, position: int) -> int:
    """Return bit ``position`` of ``value`` as 0 or 1."""
    return (value >> position) & 1


def set_bit(value: int, position: int, bit: int) -> int:
    """Return ``value`` with bit ``position`` forced to ``bit``."""
    if bit:
        return value | (1 << position)
    return value & ~(1 << position)


def variable_pattern(var: int, num_vars: int) -> int:
    """Return the truth table (packed int) of projection ``x_var`` on ``num_vars`` inputs.

    Bit ``r`` of the result is the value of variable ``var`` in minterm ``r``.
    For example ``variable_pattern(0, 2) == 0b1010`` and
    ``variable_pattern(1, 2) == 0b1100``.
    """
    if not 0 <= var < num_vars:
        raise ValueError(f"variable index {var} out of range for {num_vars} inputs")
    rows = 1 << num_vars
    block = 1 << var  # run length of identical values of x_var
    # One period (2*block rows: zeros then ones), then double the covered
    # span until it spans all rows — O(num_vars) big-int operations instead
    # of one OR per period, which matters enormously for wide exhaustive
    # batches (2**20+ rows) where low-index variables have millions of
    # periods.
    pattern = ((1 << block) - 1) << block
    size = 2 * block
    while size < rows:
        pattern |= pattern << size
        size *= 2
    return pattern


def iter_minterms(table: int, num_vars: int) -> Iterator[int]:
    """Yield the minterm indices (rows) on which the packed ``table`` is 1."""
    rows = 1 << num_vars
    for row in range(rows):
        if (table >> row) & 1:
            yield row


def parity(value: int) -> int:
    """Return the parity (XOR of all bits) of ``value``."""
    return popcount(value) & 1


def swap_adjacent_variables(table: int, var: int, num_vars: int) -> int:
    """Return ``table`` with variables ``var`` and ``var + 1`` exchanged."""
    if not 0 <= var < num_vars - 1:
        raise ValueError("var must identify a pair of adjacent variables")
    rows = 1 << num_vars
    low = 1 << var
    result = 0
    for row in range(rows):
        bit = (table >> row) & 1
        if not bit:
            continue
        b_lo = (row >> var) & 1
        b_hi = (row >> (var + 1)) & 1
        if b_lo == b_hi:
            result |= 1 << row
        else:
            swapped = row ^ low ^ (low << 1)
            result |= 1 << swapped
    return result


def expand_with_new_variable(table: int, num_vars: int) -> int:
    """Duplicate ``table`` so it becomes a function of ``num_vars + 1`` inputs.

    The new variable is the most significant one and the function does not
    depend on it.
    """
    rows = 1 << num_vars
    return table | (table << rows)


def project_rows(table: int, rows: List[int]) -> int:
    """Build a new packed table from the listed rows of ``table`` (in order)."""
    result = 0
    for new_row, old_row in enumerate(rows):
        if (table >> old_row) & 1:
            result |= 1 << new_row
    return result

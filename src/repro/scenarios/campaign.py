"""Campaign runner: declarative experiment sweeps with resumable state.

A *campaign* is a Table-I/Figure-4-style sweep expressed as data: a
:class:`CampaignSpec` holds a list of :class:`CampaignJob`\\ s (workload x
configuration x experiment kind), and :class:`CampaignRunner` executes them
over :mod:`repro.parallel` worker processes.  The runner is the single
engine behind :func:`repro.evaluation.table1.run_table1`,
:func:`repro.evaluation.figure4.run_figure4a` / ``run_figure4b`` and the
``campaign`` CLI subcommand.

Three properties the ad-hoc sweep loops did not have:

* **Declarative job graph** — a spec is plain JSON-safe data
  (:meth:`CampaignSpec.to_dict` / :meth:`~CampaignSpec.from_dict`), so
  sweeps can be stored, diffed and generated.
* **Resumable on-disk state** — with a ``state_dir`` every finished job is
  persisted as ``<state_dir>/<job_id>.json`` (written atomically) together
  with a fingerprint of its parameters; a rerun skips jobs whose state file
  matches and only executes what is missing, so an interrupted campaign
  completes from where it stopped instead of recomputing finished rows.
* **Artifact emission** — results render to CSV and to a ``BENCH_*.json``
  payload compatible with ``benchmarks/bench_diff.py``, so campaign timings
  plug into the existing trajectory tooling.

Seeding discipline is inherited from the harnesses: every job is seeded
independently, so results are bit-identical for any ``jobs`` value and any
interleaving of cached and fresh jobs.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import os
import pickle
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..faults import corrupt_text, faults_enabled, fired_counts, maybe_kill_process
from ..jobstore import JobStore, Lease, LeaseLost, RetryPolicy, classify_failure
from ..obs import trace as obs_trace
from ..obs.trace import (
    attach_context,
    current_traceparent,
    format_traceparent,
    job_span_id,
    tracing_enabled,
)
from ..parallel import WorkerCrashed, WorkerPool, resolve_jobs
from ..sat.solver import BUDGET_ENV_VAR, SolveBudget, SolveBudgetExceeded
from ..telemetry import RunTelemetry

__all__ = [
    "CampaignError",
    "CampaignJob",
    "CampaignSpec",
    "JobResult",
    "CampaignResult",
    "CampaignRunner",
    "run_campaign",
    "run_windowed_campaign",
    "window_record_from_payload",
]


class CampaignError(ValueError):
    """Raised for malformed specs, duplicate job ids, or unknown job kinds."""


@dataclass(frozen=True)
class CampaignJob:
    """One unit of campaign work (JSON-safe, stable identity).

    ``job_id`` doubles as the state-file name; ``params`` must stay
    JSON-serialisable because the fingerprint and the on-disk state are
    derived from it.
    """

    job_id: str
    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Stable hash of (kind, params): the resume-safety token.

        A state file only short-circuits a job whose fingerprint matches, so
        editing a spec invalidates exactly the jobs it changed.  Non-JSON
        params are rejected outright — a fallback stringification (e.g. an
        object repr with a memory address) would fingerprint differently on
        every run and silently defeat resume.
        """
        try:
            blob = json.dumps(
                {"kind": self.kind, "params": self.params}, sort_keys=True
            )
        except (TypeError, ValueError) as exc:
            raise CampaignError(
                f"job {self.job_id!r} params are not JSON-serialisable: {exc}"
            ) from exc
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _profile_to_dict(profile) -> Dict[str, Any]:
    """Encode an ExperimentProfile as JSON-safe data."""
    return asdict(profile)


def _profile_from_dict(data: Dict[str, Any]):
    """Rebuild an ExperimentProfile from :func:`_profile_to_dict` output."""
    from ..evaluation.workloads import ExperimentProfile

    payload = dict(data)
    for key in ("present_counts", "des_counts"):
        if key in payload:
            payload[key] = tuple(payload[key])
    return ExperimentProfile(**payload)


# ------------------------------------------------------------------ #
# Job kinds
# ------------------------------------------------------------------ #
# Each handler takes (params, task_jobs) and returns (value, payload):
# ``value`` is the rich in-memory result (picklable; not persisted),
# ``payload`` the JSON-safe summary written to the state file.


def _synth_snapshot() -> Dict[str, float]:
    """Snapshot the process-wide synthesis telemetry counters."""
    from ..synth.script import synthesis_telemetry

    return dict(synthesis_telemetry().scopes.get("synth", {}))


def _synth_delta(before: Dict[str, float]) -> RunTelemetry:
    """Telemetry record holding synthesis counters accrued since *before*."""
    from ..synth.script import synthesis_telemetry

    delta = RunTelemetry()
    after = synthesis_telemetry().scopes.get("synth", {})
    for key, value in after.items():
        diff = value - before.get(key, 0)
        if diff:
            delta.count("synth", key, diff)
    return delta


def _run_table1_row(params: Dict[str, Any], task_jobs: int) -> Tuple[Any, dict]:
    from ..evaluation.table1 import run_table1_entry

    synth_before = _synth_snapshot()
    entry = run_table1_entry(
        params["family"],
        int(params["count"]),
        profile=_profile_from_dict(params["profile"]),
        seed=int(params.get("seed", 1)),
        verify=bool(params.get("verify", True)),
        jobs=task_jobs,
    )
    payload = {
        "row": entry.row.as_dict(),
        "ga_evaluations": entry.ga_evaluations,
        "verification_ok": entry.verification_ok,
        "telemetry": _synth_delta(synth_before).to_dict(),
    }
    return entry, payload


def _run_figure4a(params: Dict[str, Any], task_jobs: int) -> Tuple[Any, dict]:
    from ..evaluation.figure4 import compute_figure4a

    data = compute_figure4a(
        profile=_profile_from_dict(params["profile"]),
        num_samples=params.get("num_samples"),
        seed=int(params.get("seed", 11)),
        bin_width=float(params.get("bin_width", 5.0)),
        jobs=task_jobs,
    )
    payload = {
        "average": data.average,
        "best": data.best,
        "worst": data.worst,
        "samples": len(data.areas),
    }
    return data, payload


def _run_figure4b(params: Dict[str, Any], task_jobs: int) -> Tuple[Any, dict]:
    from ..evaluation.figure4 import compute_figure4b

    data = compute_figure4b(
        profile=_profile_from_dict(params["profile"]),
        seed=int(params.get("seed", 11)),
        jobs=task_jobs,
    )
    payload = {
        "final_best": data.best_so_far[-1],
        "random_best": data.random_best,
        "random_average": data.random_average,
        "ga_evaluations": data.ga_evaluations,
        "ga_beats_best_random": data.ga_beats_best_random,
    }
    return data, payload


def _run_attack(params: Dict[str, Any], task_jobs: int) -> Tuple[Any, dict]:
    from ..attacks.oracle_guided import attack_mapping
    from ..evaluation.workloads import workload_functions
    from ..flow.obfuscate import obfuscate
    from ..ga.engine import GAParameters

    functions = workload_functions(params["family"], int(params["count"]))
    parameters = GAParameters(
        population_size=int(params.get("population", 4)),
        generations=int(params.get("generations", 1)),
        seed=int(params.get("seed", 1)),
    )
    flow = obfuscate(
        functions,
        ga_parameters=parameters,
        fitness_effort=params.get("fitness_effort", "fast"),
        final_effort=params.get("final_effort", "fast"),
        jobs=task_jobs,
    )
    outcome = attack_mapping(
        flow.mapping,
        true_select=int(params.get("true_select", 0)),
        max_queries=int(params.get("max_queries", 256)),
        presample=params.get("presample"),
        jobs=task_jobs,
    )
    if outcome.timed_out:
        # A partial attack transcript must not be persisted as a verdict;
        # surfacing the budget exhaustion lets the campaign retry the job
        # with an escalated budget (and mark it "timed_out" if that fails).
        raise SolveBudgetExceeded(
            f"oracle-guided attack exhausted its solve budget after "
            f"{outcome.num_queries} DIP queries"
        )
    payload = {
        "success": outcome.success,
        "dip_queries": outcome.num_queries,
        "presample_queries": len(outcome.presample_queries),
        "total_oracle_queries": outcome.total_oracle_queries,
        "camouflaged_area": flow.camouflaged_area,
        "camouflaged_cells": flow.mapping.num_camouflaged_cells(),
        "solver": {
            key: int(value) for key, value in outcome.solver_stats.items()
        },
        "telemetry": RunTelemetry.from_solver_stats(
            outcome.solver_stats, label="attack"
        ).to_dict(),
    }
    return outcome, payload


def _run_decamouflage(params: Dict[str, Any], task_jobs: int) -> Tuple[Any, dict]:
    """CEGAR decamouflage hardness: which viable functions stay plausible?

    Obfuscates a workload, then runs the adversary's plausibility oracle
    (possibility pre-filter + simulation-guided CEGAR) over every viable
    function in its designer pin view.  The payload records the verdicts and
    the oracle's work counters — the hardness measures of the sweep.
    """
    from ..attacks.decamouflage import PlausibleFunctionOracle
    from ..evaluation.workloads import workload_functions
    from ..flow.obfuscate import obfuscate
    from ..ga.engine import GAParameters

    functions = workload_functions(params["family"], int(params["count"]))
    parameters = GAParameters(
        population_size=int(params.get("population", 4)),
        generations=int(params.get("generations", 1)),
        seed=int(params.get("seed", 1)),
    )
    flow = obfuscate(
        functions,
        ga_parameters=parameters,
        fitness_effort=params.get("fitness_effort", "fast"),
        final_effort=params.get("final_effort", "fast"),
        jobs=task_jobs,
    )
    oracle = PlausibleFunctionOracle.from_mapping(flow.mapping)
    views = flow.assignment.apply(list(functions))
    verdicts = [bool(oracle.is_plausible(view)) for view in views]
    solver_stats = {
        key: int(value) for key, value in oracle.solver_stats().items()
    }
    payload = {
        "plausible": sum(verdicts),
        "total": len(verdicts),
        "all_plausible": all(verdicts),
        "verdicts": verdicts,
        "camouflaged_cells": flow.mapping.num_camouflaged_cells(),
        "prefilter": {
            key: int(value) for key, value in oracle.prefilter_stats().items()
        },
        "solver": solver_stats,
        "telemetry": oracle.telemetry(label="decamouflage").to_dict(),
    }
    return {"verdicts": verdicts, "prefilter": oracle.prefilter_stats()}, payload


def _run_random_camo(params: Dict[str, Any], task_jobs: int) -> Tuple[Any, dict]:
    """Random-camouflaging baseline: Section I's negative result as a job.

    Synthesises the first viable function alone, camouflages a random
    fraction of its gates, and asks the adversary which viable functions
    remain plausible — quantifying how little random camouflage protects
    against a list of viable functions.
    """
    from ..attacks.random_camo import random_camouflage_experiment
    from ..evaluation.workloads import workload_functions
    from ..synth.script import synthesize

    functions = workload_functions(params["family"], int(params["count"]))
    synthesis = synthesize(
        functions[0], effort=params.get("effort", "fast")
    )
    experiment = random_camouflage_experiment(
        synthesis.netlist,
        functions,
        fraction=float(params.get("fraction", 0.5)),
        seed=int(params.get("seed", 1)),
    )
    payload = {
        "num_plausible": experiment.num_plausible,
        "total": len(experiment.plausible),
        "verdicts": list(experiment.plausible),
        "fraction": float(params.get("fraction", 0.5)),
        "area": experiment.circuit.area(),
        "camouflaged_cells": len(experiment.circuit.camouflaged_instances),
    }
    return experiment, payload


def _run_window_obfuscate(params: Dict[str, Any], task_jobs: int) -> Tuple[Any, dict]:
    """Obfuscate one window of a BLIF circuit (resumable windowed pipeline).

    The windowed campaign fans one such job per window over the worker
    pool; each job re-derives the (deterministic) window decomposition from
    the BLIF source, obfuscates its assigned window, and persists a fully
    self-describing payload — the camouflaged window as BLIF text plus the
    serialised true configuration — so a resumed campaign can stitch
    without re-running finished windows.
    """
    from ..flow.target import decoy_budgets, obfuscate_window
    from ..ga.engine import GAParameters
    from ..netlist.blif import write_blif
    from ..netlist.window import extract_windows, window_subnetlist

    netlist = _read_blif_workload(params["path"])
    windows = extract_windows(
        netlist,
        max_inputs=int(params.get("max_window_inputs", 8)),
        max_instances=int(params.get("max_window_instances", 48)),
        strategy=params.get("windowing"),
    )
    expected = params.get("num_windows")
    if expected is not None and int(expected) != len(windows):
        raise CampaignError(
            f"{params['path']}: circuit decomposes into {len(windows)} windows "
            f"but the spec was built for {expected}; the BLIF changed — "
            f"rebuild the campaign spec"
        )
    index = int(params["index"])
    if not 0 <= index < len(windows):
        raise CampaignError(f"window index {index} out of range")
    window = windows[index]
    parameters = GAParameters(
        population_size=int(params.get("population", 4)),
        generations=int(params.get("generations", 2)),
        seed=int(params.get("seed", 1)),
    )
    hardness_param = params.get("hardness")
    hardness = (
        {int(key): float(value) for key, value in hardness_param.items()}
        if hardness_param
        else None
    )
    budgets = decoy_budgets(windows, int(params.get("decoys", 1)), hardness)
    record = obfuscate_window(
        window_subnetlist(netlist, window),
        window,
        decoys=budgets[window.index],
        seed=int(params.get("seed", 1)) + window.index,
        ga_parameters=parameters,
        fitness_effort=params.get("fitness_effort", "fast"),
        final_effort=params.get("final_effort", "fast"),
        verify=bool(params.get("verify", True)),
        jobs=task_jobs,
        scheduler=params.get("scheduler"),
        probe_hardness=bool(params.get("probe_hardness", False)),
    )
    payload = {
        "index": window.index,
        "inputs": window.num_inputs,
        "outputs": window.num_outputs,
        "instances": window.num_instances,
        "num_viable": record.num_viable,
        "synthesized_area": record.synthesized_area,
        "camouflaged_area": record.camouflaged_area,
        "verification_ok": record.verification_ok,
        "telemetry": (
            record.telemetry.to_dict() if record.telemetry is not None else {}
        ),
        "camo_blif": write_blif(record.netlist),
        # Keyed by output net: BLIF .gate lines carry no instance names, so
        # the net is the identity that survives the serialisation round trip.
        "true_config": {
            record.netlist.instance(name).output: {
                "vars": table.num_vars,
                "bits": table.bits,
            }
            for name, table in record.true_configuration.items()
        },
    }
    return record, payload


def _run_probe(params: Dict[str, Any], task_jobs: int) -> Tuple[Any, dict]:
    """Self-test job: a cheap, deterministic workload for chaos testing.

    Computes a digest of its own parameters (so the payload proves which
    parameters actually executed) with two optional behaviours the fault
    and recovery tests rely on:

    * ``sleep`` — hold the job open for the given number of seconds, so
      lease/heartbeat behaviour can be observed mid-flight.
    * ``fail_marker`` — a file path; when the file does not exist yet the
      job creates it and raises :class:`OSError` (a *transient* failure).
      The retried attempt finds the marker and succeeds, which exercises
      the retry/backoff machinery end to end without any randomness.
    """
    marker = params.get("fail_marker")
    if marker and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write(f"{os.getpid()}\n")
        raise OSError(f"probe failing transiently (marker {marker} created)")
    delay = float(params.get("sleep", 0.0))
    if delay > 0:
        time.sleep(delay)
    blob = json.dumps(
        {key: value for key, value in params.items() if key != "fail_marker"},
        sort_keys=True,
    )
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    payload = {"digest": digest, "value": params.get("value", 0)}
    return digest, payload


def _read_blif_workload(path: str):
    """Parse a BLIF circuit over the standard cell library."""
    from ..netlist.blif import read_blif
    from ..netlist.library import standard_cell_library

    with open(path, "r", encoding="utf-8") as handle:
        return read_blif(handle.read(), standard_cell_library())


def window_record_from_payload(payload: Dict[str, Any], window) -> "object":
    """Rebuild a :class:`~repro.flow.target.WindowRecord` from job state.

    The camouflaged window netlist is re-parsed from the persisted BLIF text
    (over the camouflage-extended cell library) and the true configuration
    from its serialised truth tables, so cached window jobs stitch exactly
    like freshly executed ones.
    """
    from ..camo.library import default_camouflage_library
    from ..flow.target import WindowRecord
    from ..logic.truthtable import TruthTable
    from ..netlist.blif import read_blif
    from ..netlist.library import standard_cell_library

    base = standard_cell_library()
    library = default_camouflage_library(base).as_cell_library(include=base)
    netlist = read_blif(payload["camo_blif"], library)
    true_configuration = {}
    for net, entry in payload["true_config"].items():
        driver = netlist.driver_of(net)
        if driver is None:
            raise CampaignError(
                f"window state is corrupt: configured net {net!r} has no "
                f"driver in the persisted camouflaged window"
            )
        true_configuration[driver.name] = TruthTable(
            int(entry["vars"]), int(entry["bits"])
        )
    telemetry_dict = payload.get("telemetry")
    return WindowRecord(
        window=window,
        netlist=netlist,
        true_configuration=true_configuration,
        num_viable=int(payload.get("num_viable", 1)),
        seed=0,
        synthesized_area=float(payload.get("synthesized_area", 0.0)),
        camouflaged_area=float(payload.get("camouflaged_area", 0.0)),
        verification_ok=bool(payload.get("verification_ok", True)),
        telemetry=(
            RunTelemetry.from_dict(telemetry_dict) if telemetry_dict else None
        ),
    )


JOB_KINDS: Dict[str, Callable[[Dict[str, Any], int], Tuple[Any, dict]]] = {
    "table1_row": _run_table1_row,
    "figure4a": _run_figure4a,
    "figure4b": _run_figure4b,
    "attack": _run_attack,
    "decamouflage": _run_decamouflage,
    "random_camo": _run_random_camo,
    "window_obfuscate": _run_window_obfuscate,
    "probe": _run_probe,
}


# ------------------------------------------------------------------ #
# Spec
# ------------------------------------------------------------------ #
@dataclass
class CampaignSpec:
    """A named, ordered collection of campaign jobs."""

    name: str
    jobs: List[CampaignJob] = field(default_factory=list)

    def __post_init__(self):
        seen = set()
        for job in self.jobs:
            if job.kind not in JOB_KINDS:
                raise CampaignError(
                    f"unknown job kind {job.kind!r}; available: {sorted(JOB_KINDS)}"
                )
            if job.job_id in seen:
                raise CampaignError(f"duplicate job id {job.job_id!r}")
            seen.add(job.job_id)
            job.fingerprint()  # rejects non-JSON params at build time

    # -------------------------------------------------------------- #
    # Builders
    # -------------------------------------------------------------- #
    @classmethod
    def table1(
        cls,
        profile,
        families: Sequence[Tuple[str, int]],
        seed: int = 1,
        verify: bool = True,
        name: str = "table1",
    ) -> "CampaignSpec":
        """One ``table1_row`` job per (family, count) configuration."""
        profile_data = _profile_to_dict(profile)
        jobs = [
            CampaignJob(
                job_id=f"table1_{family}_x{count}",
                kind="table1_row",
                params={
                    "family": family,
                    "count": count,
                    "profile": profile_data,
                    "seed": seed,
                    "verify": verify,
                },
            )
            for family, count in families
        ]
        return cls(name=name, jobs=jobs)

    @classmethod
    def figure4(cls, profile, seed: int = 11, name: str = "figure4") -> "CampaignSpec":
        """The Fig. 4a histogram job plus the Fig. 4b convergence job."""
        profile_data = _profile_to_dict(profile)
        return cls(
            name=name,
            jobs=[
                CampaignJob("figure4a", "figure4a", {"profile": profile_data, "seed": seed}),
                CampaignJob("figure4b", "figure4b", {"profile": profile_data, "seed": seed}),
            ],
        )

    @classmethod
    def attacks(
        cls,
        families: Sequence[Tuple[str, int]],
        population: int = 4,
        generations: int = 1,
        seed: int = 1,
        max_queries: int = 256,
        name: str = "attacks",
    ) -> "CampaignSpec":
        """One oracle-guided attack job per workload configuration."""
        jobs = [
            CampaignJob(
                job_id=f"attack_{family}_x{count}",
                kind="attack",
                params={
                    "family": family,
                    "count": count,
                    "population": population,
                    "generations": generations,
                    "seed": seed,
                    "max_queries": max_queries,
                },
            )
            for family, count in families
        ]
        return cls(name=name, jobs=jobs)

    @classmethod
    def adversary(
        cls,
        families: Sequence[Tuple[str, int]],
        population: int = 4,
        generations: int = 1,
        seed: int = 1,
        fraction: float = 0.5,
        name: str = "adversary",
        decamouflage: bool = True,
        random_camo: bool = True,
    ) -> "CampaignSpec":
        """The adversary-side matrix: CEGAR hardness + random-camo baseline.

        One ``decamouflage`` job (plausibility-oracle hardness sweep) and
        one ``random_camo`` job (the paper's Section-I negative baseline)
        per workload configuration.
        """
        jobs: List[CampaignJob] = []
        for family, count in families:
            if decamouflage:
                jobs.append(
                    CampaignJob(
                        job_id=f"decamo_{family}_x{count}",
                        kind="decamouflage",
                        params={
                            "family": family,
                            "count": count,
                            "population": population,
                            "generations": generations,
                            "seed": seed,
                        },
                    )
                )
            if random_camo:
                jobs.append(
                    CampaignJob(
                        job_id=f"randcamo_{family}_x{count}",
                        kind="random_camo",
                        params={
                            "family": family,
                            "count": count,
                            "fraction": fraction,
                            "seed": seed,
                        },
                    )
                )
        return cls(name=name, jobs=jobs)

    @classmethod
    def windowed(
        cls,
        path: str,
        max_window_inputs: int = 8,
        max_window_instances: int = 48,
        decoys: int = 1,
        seed: int = 1,
        population: int = 4,
        generations: int = 2,
        verify: bool = True,
        name: Optional[str] = None,
        windowing: Optional[str] = None,
        scheduler: Optional[str] = None,
        probe_hardness: bool = False,
        hardness: Optional[Dict[int, float]] = None,
    ) -> "CampaignSpec":
        """One ``window_obfuscate`` job per window of a BLIF circuit.

        The window decomposition is deterministic, so the builder, every
        worker, and every resumed run agree on the job graph; the window
        count is baked into the params so a changed BLIF fails loudly
        instead of stitching stale windows.

        ``windowing`` / ``scheduler`` pick the strategy layers by name
        (``None`` keeps the byte-identical defaults — and keeps job
        fingerprints compatible with specs built before the strategy
        layer existed).  ``probe_hardness`` runs a bounded oracle-guided
        attack on each finished window and records its work counters in
        the job telemetry; ``hardness`` feeds such measurements (window
        index -> score, e.g. from
        :func:`repro.telemetry.window_hardness_from_payloads`) back in to
        weight the per-window decoy budgets.
        """
        from ..netlist.window import extract_windows

        netlist = _read_blif_workload(path)
        windows = extract_windows(
            netlist,
            max_inputs=max_window_inputs,
            max_instances=max_window_instances,
            strategy=windowing,
        )
        common = {
            "path": path,
            "max_window_inputs": max_window_inputs,
            "max_window_instances": max_window_instances,
            "num_windows": len(windows),
            "decoys": decoys,
            "seed": seed,
            "population": population,
            "generations": generations,
            "verify": verify,
        }
        if windowing is not None:
            common["windowing"] = windowing
        if scheduler is not None:
            common["scheduler"] = scheduler
        if probe_hardness:
            common["probe_hardness"] = True
        if hardness:
            common["hardness"] = {
                str(index): float(score) for index, score in hardness.items()
            }
        jobs = [
            CampaignJob(
                job_id=f"window_{window.index:03d}",
                kind="window_obfuscate",
                params={**common, "index": window.index},
            )
            for window in windows
        ]
        return cls(name=name or f"windowed_{netlist.name}", jobs=jobs)

    def merged(self, other: "CampaignSpec", name: Optional[str] = None) -> "CampaignSpec":
        """Concatenate two specs (job ids must stay unique)."""
        return CampaignSpec(name=name or self.name, jobs=self.jobs + other.jobs)

    # -------------------------------------------------------------- #
    # JSON round trip
    # -------------------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe encoding of the spec."""
        return {
            "name": self.name,
            "jobs": [
                {"job_id": job.job_id, "kind": job.kind, "params": job.params}
                for job in self.jobs
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        try:
            jobs = [
                CampaignJob(entry["job_id"], entry["kind"], dict(entry.get("params", {})))
                for entry in data["jobs"]
            ]
            return cls(name=str(data["name"]), jobs=jobs)
        except (KeyError, TypeError) as exc:
            raise CampaignError(f"malformed campaign spec: {exc}") from exc


# ------------------------------------------------------------------ #
# Results
# ------------------------------------------------------------------ #
@dataclass
class JobResult:
    """Outcome of one campaign job.

    ``value`` is the rich in-memory result (``None`` for jobs restored from
    on-disk state or not yet executed); ``payload`` is the JSON-safe summary
    that is persisted and rendered into artifacts.
    """

    job_id: str
    kind: str
    status: str  # "ok" | "error" | "timed_out" | "pending"
    seconds: float = 0.0
    payload: Dict[str, Any] = field(default_factory=dict)
    cached: bool = False
    error: str = ""
    value: Any = None
    #: The original exception of an "error" result (not persisted; wrappers
    #: chain it so library callers keep the real type and traceback).
    exception: Optional[BaseException] = None
    #: How many attempts this invocation spent on the job (1 = first try
    #: succeeded; 0 = cached/pending) and which store owner ran the last
    #: one — the per-job evidence trail behind "every job ran exactly once".
    attempts: int = 0
    owner: str = ""

    @property
    def ok(self) -> bool:
        """True when the job finished successfully (fresh or cached)."""
        return self.status == "ok"


@dataclass
class CampaignResult:
    """All job results of one campaign run, in spec order."""

    name: str
    results: List[JobResult]
    total_seconds: float
    jobs: int = 1
    #: Runner-level robustness counters (retries, lease traffic, worker
    #: crashes, fired faults).  Kept separate from :meth:`telemetry` — that
    #: record is a pure function of the job payloads, so chaos runs still
    #: produce byte-identical job artifacts.
    robustness: Dict[str, float] = field(default_factory=dict)

    @property
    def completed(self) -> List[JobResult]:
        """Successfully finished jobs (fresh and cached)."""
        return [result for result in self.results if result.ok]

    @property
    def executed(self) -> List[JobResult]:
        """Jobs actually run in this invocation (not restored from state)."""
        return [result for result in self.results if result.ok and not result.cached]

    @property
    def cached(self) -> List[JobResult]:
        """Jobs restored from the on-disk campaign state."""
        return [result for result in self.results if result.cached]

    @property
    def failed(self) -> List[JobResult]:
        """Jobs that raised — including budget exhaustions ("timed_out")."""
        return [
            result
            for result in self.results
            if result.status in ("error", "timed_out")
        ]

    @property
    def pending(self) -> List[JobResult]:
        """Jobs not attempted (e.g. beyond a ``limit``)."""
        return [result for result in self.results if result.status == "pending"]

    @property
    def all_ok(self) -> bool:
        """True when every job of the spec finished successfully."""
        return all(result.ok for result in self.results)

    def result_for(self, job_id: str) -> JobResult:
        """Return the result of one job by id."""
        for result in self.results:
            if result.job_id == job_id:
                return result
        raise KeyError(f"no result for job {job_id!r}")

    # -------------------------------------------------------------- #
    # Artifacts
    # -------------------------------------------------------------- #
    def bench_payload(self) -> Dict[str, Any]:
        """A ``BENCH_*.json``-style payload (``bench_diff.py`` compatible).

        ``total_seconds`` / ``mean_seconds`` are the timing keys the diff
        tool enforces thresholds on.  They sum the *recorded per-job*
        seconds over every completed job — cached jobs contribute the
        seconds persisted when they actually ran — so the metric measures
        the campaign's compute cost and stays comparable between fresh and
        partially-cached invocations.  The wall clock of this invocation is
        reported separately (``wall_seconds``, informational).
        """
        completed = self.completed
        total = sum(result.seconds for result in completed)
        return {
            "name": f"campaign_{self.name}",
            "total_seconds": total,
            "mean_seconds": total / len(completed) if completed else 0.0,
            "wall_seconds": self.total_seconds,
            "jobs": self.jobs,
            "campaign": {
                "executed": len(self.executed),
                "cached": len(self.cached),
                "failed": len(self.failed),
                "pending": len(self.pending),
            },
            "job_seconds": {
                result.job_id: result.seconds for result in completed
            },
            "telemetry": self.telemetry().to_dict()["scopes"],
            "robustness": dict(sorted(self.robustness.items())),
        }

    def telemetry(self, label: str = "") -> RunTelemetry:
        """Merge every completed job's persisted telemetry into one record.

        Counters sum across jobs scope by scope, so the campaign-level
        record answers "how much work did this campaign do" (solver
        conflicts, synthesis passes, attack queries, ...) and lands in
        ``BENCH_*.json`` where ``bench_diff.py`` can diff it run to run.
        """
        records = [
            RunTelemetry.from_dict(result.payload["telemetry"])
            for result in self.completed
            if result.payload.get("telemetry")
        ]
        return RunTelemetry(label=label or f"campaign_{self.name}").merged(*records)

    def to_json(self) -> str:
        """Full campaign result as a JSON document."""
        document = dict(self.bench_payload())
        document["results"] = [
            {
                "job_id": result.job_id,
                "kind": result.kind,
                "status": result.status,
                "cached": result.cached,
                "seconds": result.seconds,
                "error": result.error,
                "payload": result.payload,
            }
            for result in self.results
        ]
        return json.dumps(document, indent=2, sort_keys=True, default=str)

    def to_csv(self) -> str:
        """Flat CSV: one row per job, numeric payload fields as columns."""
        flattened = [
            _flatten_numeric(result.payload) for result in self.results
        ]
        keys: List[str] = sorted({key for row in flattened for key in row})
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(["job_id", "kind", "status", "cached", "seconds"] + keys)
        for result, row in zip(self.results, flattened):
            writer.writerow(
                [
                    result.job_id,
                    result.kind,
                    result.status,
                    int(result.cached),
                    f"{result.seconds:.4f}",
                ]
                + [row.get(key, "") for key in keys]
            )
        return buffer.getvalue()

    def write_artifacts(
        self,
        json_path: Optional[str] = None,
        csv_path: Optional[str] = None,
        bench_dir: Optional[str] = None,
    ) -> List[str]:
        """Write the requested artifact files; returns the paths written."""
        written: List[str] = []
        if json_path:
            _atomic_write(json_path, self.to_json() + "\n")
            written.append(json_path)
        if csv_path:
            _atomic_write(csv_path, self.to_csv())
            written.append(csv_path)
        if bench_dir:
            os.makedirs(bench_dir, exist_ok=True)
            path = os.path.join(bench_dir, f"BENCH_campaign_{self.name}.json")
            _atomic_write(
                path,
                json.dumps(self.bench_payload(), indent=2, sort_keys=True) + "\n",
            )
            written.append(path)
        return written


def _flatten_numeric(payload: Dict[str, Any], prefix: str = "") -> Dict[str, Any]:
    """Flatten nested payload dicts into dot-joined scalar columns."""
    flat: Dict[str, Any] = {}
    for key, value in sorted(payload.items()):
        label = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten_numeric(value, prefix=f"{label}."))
        elif isinstance(value, (int, float, bool, str)):
            flat[label] = value
    return flat


def _atomic_write(path: str, text: str) -> None:
    """Write a file via rename so readers never see a torn state file."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    temp_path = f"{path}.tmp.{os.getpid()}"
    with open(temp_path, "w", encoding="utf-8") as handle:
        handle.write(text)
    os.replace(temp_path, path)


# ------------------------------------------------------------------ #
# Runner
# ------------------------------------------------------------------ #
def _portable_exception(exc: BaseException) -> Optional[BaseException]:
    """The exception iff it survives a pickle round trip (else None).

    A JobResult may cross the worker-process boundary; an unpicklable
    exception riding along would crash the pool result transfer — the exact
    sweep-wide failure the per-job try/except exists to prevent.  Such
    exceptions are reported through the ``error`` string only.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return None


def _execute_job_task(task: Tuple) -> JobResult:
    """Worker task: run one campaign job (module-level so it pickles).

    With ``capture_errors`` a failure becomes an "error" JobResult (a sweep
    with on-disk state must record its siblings); without it the exception
    propagates, which is how fail-fast wrappers abort a sweep immediately.

    The optional fourth tuple element is a solve-budget spec
    (:meth:`~repro.sat.solver.SolveBudget.to_spec`): it is installed in the
    executing process's environment for the duration of the job, which is
    how the runner escalates budgets per retry attempt without touching the
    job's fingerprinted parameters.

    The optional fifth element is a ``traceparent``: with tracing active
    the attempt runs inside an ``attempt`` span parented under the job's
    deterministic span, so attempts recorded by any process — local pool
    worker or remote fleet agent — stitch into one trace.  The span's
    start record is flushed *before* the chaos kill hook runs: a
    SIGKILLed attempt stays visible in the trace as an unfinished span.
    """
    budget_spec, traceparent = "", ""
    if len(task) == 3:
        job, task_jobs, capture_errors = task
    elif len(task) == 4:
        job, task_jobs, capture_errors, budget_spec = task
    else:
        job, task_jobs, capture_errors, budget_spec, traceparent = task
    with attach_context(traceparent):
        with obs_trace.span("attempt", job=job.job_id, kind=job.kind):
            if faults_enabled():
                # Chaos hook: a matching ``worker_kill`` fault SIGKILLs this
                # process right here, at job start — the hard-crash case
                # supervision, leases, and resumable state exist for.
                maybe_kill_process(job.job_id)
            previous_budget = os.environ.get(BUDGET_ENV_VAR)
            if budget_spec:
                os.environ[BUDGET_ENV_VAR] = budget_spec
            start = time.perf_counter()
            try:
                try:
                    value, payload = JOB_KINDS[job.kind](job.params, task_jobs)
                except Exception as exc:
                    if not capture_errors:
                        raise
                    return JobResult(
                        job_id=job.job_id,
                        kind=job.kind,
                        status="error",
                        seconds=time.perf_counter() - start,
                        error=f"{type(exc).__name__}: {exc}",
                        exception=_portable_exception(exc),
                    )
                return JobResult(
                    job_id=job.job_id,
                    kind=job.kind,
                    status="ok",
                    seconds=time.perf_counter() - start,
                    payload=payload,
                    value=value,
                )
            finally:
                if budget_spec:
                    if previous_budget is None:
                        os.environ.pop(BUDGET_ENV_VAR, None)
                    else:
                        os.environ[BUDGET_ENV_VAR] = previous_budget


class _LeaseKeeper:
    """Background heartbeat for the leases a runner currently holds.

    A daemon thread refreshes every registered lease each TTL/3, so a lease
    only goes stale after three consecutive missed heartbeats — i.e. when
    the owning process is genuinely wedged or dead, not merely busy.  A
    lease that comes back :class:`LeaseLost` (stolen after an expiry the
    heartbeat was too late to prevent) is dropped, counted, *and flagged*:
    the runner consults :meth:`is_lost` before committing the job's result,
    so work finished under a stolen lease is discarded instead of
    double-written over the thief's state.
    """

    def __init__(self, store: JobStore):
        self._store = store
        self._leases: Dict[str, Lease] = {}
        self._lost_jobs: set = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.lost = 0

    def add(self, lease: Lease) -> None:
        with self._lock:
            self._leases[lease.job_id] = lease

    def remove(self, job_id: str) -> None:
        with self._lock:
            self._leases.pop(job_id, None)

    def is_lost(self, job_id: str) -> bool:
        """Did a heartbeat on this job's lease fail since it was added?"""
        with self._lock:
            return job_id in self._lost_jobs

    def __enter__(self) -> "_LeaseKeeper":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self._store.lease_ttl)

    def _run(self) -> None:
        interval = self._store.lease_ttl / 3.0
        while not self._stop.wait(interval):
            with self._lock:
                leases = list(self._leases.values())
            for lease in leases:
                try:
                    self._store.heartbeat(lease)
                except LeaseLost:
                    self.lost += 1
                    with self._lock:
                        self._lost_jobs.add(lease.job_id)
                    self.remove(lease.job_id)
                except OSError:
                    pass  # transient I/O: the next beat retries


class CampaignRunner:
    """Execute a :class:`CampaignSpec` over the worker pool, resumably.

    With a ``state_dir`` every successful job writes
    ``<state_dir>/<job_id>.json`` (atomic rename); a later run loads those
    files, verifies the parameter fingerprint, and skips matching jobs.
    Failed jobs are never persisted, so they retry on the next run.

    A ``state_dir`` also turns the directory into a lease-based
    :class:`~repro.jobstore.JobStore`: several concurrent runner processes
    can share it and every pending job is executed exactly once — claiming
    is atomic, held leases are heartbeated, and a crashed peer's lease is
    reclaimed so its job re-runs from the last persisted state.

    Transient failures (crashed workers, exhausted solve budgets, I/O
    errors) are retried under ``retry_policy`` with capped exponential
    backoff; a solve budget (``solve_budget`` or ``REPRO_SOLVE_BUDGET``)
    is doubled on every retry and a job still timing out when attempts run
    out finishes as ``"timed_out"`` instead of looping forever.
    """

    STATE_SUFFIX = ".json"

    #: Poll interval while every remaining job is leased by a live peer.
    PEER_POLL_SECONDS = 0.1

    def __init__(
        self,
        spec: CampaignSpec,
        state_dir: Optional[str] = None,
        jobs: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        solve_budget: Optional[SolveBudget] = None,
        lease_ttl: Optional[float] = None,
        oversubscribe: bool = False,
    ):
        self.spec = spec
        self.state_dir = state_dir
        self.jobs = resolve_jobs(jobs)
        self._progress = progress or (lambda message: None)
        self.retry_policy = retry_policy or RetryPolicy.from_environment()
        self._solve_budget = (
            solve_budget if solve_budget is not None else SolveBudget.from_environment()
        )
        self._lease_ttl = lease_ttl
        #: Spawn ``jobs`` worker processes even beyond the CPU count.  Off
        #: by default (extra workers only duplicate compute); wait-heavy
        #: sweeps and crash-isolation (a dying worker must not be this
        #: process) justify turning it on.
        self.oversubscribe = oversubscribe
        # Trace bookkeeping (inert unless REPRO_TRACE is set).
        self._trace_id = ""
        self._job_started: Dict[str, float] = {}

    # -------------------------------------------------------------- #
    # State files
    # -------------------------------------------------------------- #
    def _state_path(self, job: CampaignJob) -> str:
        assert self.state_dir is not None
        return os.path.join(self.state_dir, f"{job.job_id}{self.STATE_SUFFIX}")

    def _load_state(self, job: CampaignJob) -> Optional[JobResult]:
        """Restore a completed job from disk (None = must run)."""
        if self.state_dir is None:
            return None
        path = self._state_path(job)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict):
            # Valid JSON but not a state object: corrupt, recompute.
            return None
        if data.get("fingerprint") != job.fingerprint():
            # The spec changed under this job id; the stale result must not
            # short-circuit the new parameters.
            return None
        if data.get("status") != "ok":
            return None
        return JobResult(
            job_id=job.job_id,
            kind=job.kind,
            status="ok",
            seconds=float(data.get("seconds", 0.0)),
            payload=dict(data.get("payload", {})),
            cached=True,
            attempts=int(data.get("attempts", 0)),
            owner=str(data.get("owner", "")),
        )

    def _save_state(self, job: CampaignJob, result: JobResult) -> None:
        if self.state_dir is None or not result.ok:
            return
        document = {
            "job_id": job.job_id,
            "kind": job.kind,
            "fingerprint": job.fingerprint(),
            "status": result.status,
            "seconds": result.seconds,
            "payload": result.payload,
            "attempts": result.attempts,
            "owner": result.owner,
        }
        text = json.dumps(document, indent=2, sort_keys=True, default=str) + "\n"
        if faults_enabled():
            # Chaos hook: a matching ``torn_state`` fault persists only the
            # first half of the document — the partial flush a crash
            # mid-write would leave.  ``_load_state`` must reject it and
            # re-run exactly this job on the next invocation.
            text = corrupt_text("torn_state", text, job.job_id)
        _atomic_write(self._state_path(job), text)

    # -------------------------------------------------------------- #
    # Tracing
    # -------------------------------------------------------------- #
    def _campaign_span(self):
        """This invocation's campaign span, joined to the persisted trace.

        With a ``state_dir`` the first traced invocation persists its
        trace context to ``<state_dir>/trace.json``; later invocations
        (resumes, concurrent peers) adopt it as their parent, so every
        attempt across crashes and restarts lands in *one* trace — the
        deterministic per-job span ids do the rest of the stitching.
        """
        if not tracing_enabled():
            return obs_trace.span("campaign")  # the shared no-op
        parent = ""
        trace_path = None
        if self.state_dir is not None:
            os.makedirs(self.state_dir, exist_ok=True)
            trace_path = os.path.join(self.state_dir, "trace.json")
            try:
                with open(trace_path, "r", encoding="utf-8") as handle:
                    parent = str(json.load(handle).get("traceparent", ""))
            except (OSError, ValueError):
                parent = ""
        span = obs_trace.span(
            "campaign", parent=parent, campaign=self.spec.name, jobs=self.jobs
        )
        self._trace_id = span.trace_id
        if trace_path is not None and not parent:
            _atomic_write(
                trace_path,
                json.dumps(
                    {
                        "traceparent": format_traceparent(
                            span.trace_id, span.span_id
                        )
                    }
                )
                + "\n",
            )
        return span

    def _job_traceparent(self, job_id: str) -> str:
        """The traceparent attempt spans for ``job_id`` parent under."""
        if not tracing_enabled() or not self._trace_id:
            return ""
        return format_traceparent(
            self._trace_id, job_span_id(self._trace_id, job_id)
        )

    def _finish_job_span(self, job_id: str, status: str) -> None:
        """Emit the job's span once it reaches a terminal state."""
        if not tracing_enabled() or not self._trace_id:
            return
        started = self._job_started.get(job_id)
        if started is None:
            return
        obs_trace.record_span(
            "job",
            span_id=job_span_id(self._trace_id, job_id),
            start=started,
            duration=max(0.0, time.time() - started),
            trace_id=self._trace_id,
            job=job_id,
            status=status,
        )

    # -------------------------------------------------------------- #
    # Execution
    # -------------------------------------------------------------- #
    def _attempt_budget_spec(self, prior_failures: int) -> str:
        """Solve-budget spec for the next attempt (doubled per failure)."""
        if self._solve_budget is None:
            return ""
        if prior_failures <= 0:
            return self._solve_budget.to_spec()
        return self._solve_budget.scaled(2.0 ** prior_failures).to_spec()

    @staticmethod
    def _is_timeout(result: JobResult) -> bool:
        """Did this error result come from an exhausted solve budget?"""
        if isinstance(result.exception, SolveBudgetExceeded):
            return True
        return result.error.split(":", 1)[0].strip() == "SolveBudgetExceeded"

    def run(
        self, limit: Optional[int] = None, fail_fast: bool = False
    ) -> CampaignResult:
        """Run the campaign; ``limit`` caps the number of jobs executed.

        Cached jobs never count against ``limit`` (they cost nothing), so a
        limited run always makes forward progress until the campaign is
        complete.

        With ``fail_fast`` the first job failure propagates immediately
        (remaining serial jobs do not run; in-flight parallel work is
        abandoned) instead of being recorded as an "error" result — the
        pre-campaign sweep-loop behaviour the ``table1``/``figure4``
        wrappers preserve.  Fail-fast also disables the retry machinery:
        the caller asked for the first exception, not for healing.

        Execution proceeds in *rounds*: each round claims every currently
        runnable job (not backed off, not leased by a live peer), fans the
        claims over the worker pool, and checkpoints results as they
        stream back.  Failed jobs re-enter later rounds while retries
        remain; jobs leased by peers are polled until the peer's state
        lands (adopted as cached) or its lease goes stale (reclaimed).
        """
        with self._campaign_span():
            return self._run_traced(limit=limit, fail_fast=fail_fast)

    def _run_traced(
        self, limit: Optional[int] = None, fail_fast: bool = False
    ) -> CampaignResult:
        """The body of :meth:`run` (inside this invocation's trace span)."""
        start = time.perf_counter()
        slots: Dict[str, JobResult] = {}
        pending: List[CampaignJob] = []
        for job in self.spec.jobs:
            restored = self._load_state(job)
            if restored is not None:
                slots[job.job_id] = restored
                self._progress(f"{job.job_id}: cached (state matches)")
            else:
                pending.append(job)

        if limit is not None and limit >= 0:
            for job in pending[limit:]:
                slots[job.job_id] = JobResult(
                    job_id=job.job_id, kind=job.kind, status="pending"
                )
            pending = pending[:limit]

        robustness: Dict[str, float] = {}

        def bump(key: str, amount: float = 1) -> None:
            robustness[key] = robustness.get(key, 0) + amount

        store: Optional[JobStore] = None
        if self.state_dir is not None and pending:
            store = JobStore(self.state_dir, lease_ttl=self._lease_ttl)

        if pending:
            with WorkerPool(
                _execute_job_task, jobs=self.jobs, oversubscribe=self.oversubscribe
            ) as pool:
                self._run_rounds(
                    pending, slots, pool, store, fail_fast=fail_fast, bump=bump
                )
            bump("worker_crashes", pool.worker_crashes)
            bump("pool_restarts", pool.pool_restarts)

        if store is not None:
            bump("lease_claims", store.claims)
            bump("lease_conflicts", store.claim_conflicts)
            bump("lease_reclaims", store.reclaims)
        if faults_enabled():
            for point, count in sorted(fired_counts().items()):
                bump(f"fault_{point}", count)

        ordered = [slots[job.job_id] for job in self.spec.jobs]
        return CampaignResult(
            name=self.spec.name,
            results=ordered,
            total_seconds=time.perf_counter() - start,
            jobs=self.jobs,
            robustness={key: value for key, value in robustness.items() if value},
        )

    def _run_rounds(
        self,
        pending: List[CampaignJob],
        slots: Dict[str, JobResult],
        pool: WorkerPool,
        store: Optional[JobStore],
        fail_fast: bool,
        bump: Callable[..., None],
    ) -> None:
        """Drive ``pending`` to completion through claim/execute rounds."""
        capture_errors = not fail_fast
        failures: Dict[str, int] = {}
        not_before: Dict[str, float] = {}
        remaining: List[CampaignJob] = list(pending)

        while remaining:
            now = time.monotonic()
            # A peer sharing the store may have finished some jobs since the
            # last round: adopt their persisted state instead of re-claiming.
            if store is not None:
                for job in list(remaining):
                    restored = self._load_state(job)
                    if restored is not None:
                        slots[job.job_id] = restored
                        remaining.remove(job)
                        self._progress(
                            f"{job.job_id}: cached (completed by a peer)"
                        )
            if not remaining:
                return

            runnable: List[CampaignJob] = []
            leases: Dict[str, Lease] = {}
            for job in remaining:
                if not_before.get(job.job_id, 0.0) > now:
                    continue  # still backing off
                if store is not None:
                    # Claim under the job's trace context so a reclaim of a
                    # dead owner's lease is recorded under the job's span.
                    with attach_context(self._job_traceparent(job.job_id)):
                        lease = store.claim(job.job_id)
                    if lease is None:
                        continue  # a live peer holds it; poll again later
                    leases[job.job_id] = lease
                runnable.append(job)

            if not runnable:
                # Everything left is backed off or peer-held: sleep until
                # the earliest backoff expires (or one poll interval).
                waits = [
                    not_before[job.job_id] - now
                    for job in remaining
                    if not_before.get(job.job_id, 0.0) > now
                ]
                if waits:
                    time.sleep(min(max(min(waits), 0.01), self.PEER_POLL_SECONDS))
                else:
                    time.sleep(self.PEER_POLL_SECONDS)
                continue

            # Mirror the historical sweep split: concurrent rows share the
            # worker budget, any leftover is handed down to each job's own
            # parallelism (nested pools are supported).
            parallel = self.jobs > 1 and len(runnable) > 1
            task_jobs = max(1, self.jobs // len(runnable)) if parallel else self.jobs
            if parallel:
                for job in runnable:
                    self._progress(f"{job.job_id}: queued (jobs={self.jobs})")
            for job in runnable:
                self._job_started.setdefault(job.job_id, time.time())
            tasks = [
                (
                    job,
                    task_jobs,
                    capture_errors,
                    self._attempt_budget_spec(failures.get(job.job_id, 0)),
                    self._job_traceparent(job.job_id),
                )
                for job in runnable
            ]

            completed: Dict[str, JobResult] = {}
            crashed: Optional[WorkerCrashed] = None
            crashed_position = -1
            keeper = _LeaseKeeper(store) if store is not None else None
            released: set = set()

            def let_go(job_id: str, status: str) -> None:
                if store is None or job_id in released:
                    return
                released.add(job_id)
                if keeper is not None:
                    keeper.remove(job_id)
                store.release(leases[job_id], status=status)

            try:
                if keeper is not None:
                    for lease in leases.values():
                        keeper.add(lease)
                    keeper.__enter__()
                # Results stream back in job order and each is checkpointed
                # as it lands, so an interrupted run — serial or parallel,
                # even a fail-fast abort mid-sweep — leaves every finished
                # job's state on disk for the next invocation to resume from.
                results = pool.imap(tasks)
                for position, job in enumerate(runnable):
                    if not parallel:
                        # Serial execution is lazy: the job runs when the
                        # next result is pulled, so this line precedes it.
                        self._progress(f"{job.job_id}: running")
                    try:
                        result = next(results)
                    except WorkerCrashed as exc:
                        # Supervision gave up on one item; the rest of the
                        # round is lost with the pool and re-runs next round.
                        crashed = exc
                        crashed_position = (
                            exc.item_index
                            if exc.item_index is not None
                            else position
                        )
                        break
                    if result.ok and store is not None:
                        # Lost-lease safety: a reclaimed lease means a peer
                        # may already be re-running this job — committing
                        # our result now could double-write its state.
                        # Discard the work; the job stays in ``remaining``
                        # and the thief's result is adopted (or the job is
                        # re-claimed) next round.
                        lost = (
                            keeper is not None and keeper.is_lost(job.job_id)
                        ) or not store.holds(leases[job.job_id])
                        if lost:
                            bump("lease_lost_discards")
                            let_go(job.job_id, "requeued")
                            self._progress(
                                f"{job.job_id}: lease lost mid-run; "
                                f"discarding result (peer owns the job)"
                            )
                            continue
                    result.attempts = failures.get(job.job_id, 0) + 1
                    result.owner = store.owner if store is not None else ""
                    if result.ok:
                        self._save_state(job, result)
                        slots[job.job_id] = result
                        remaining.remove(job)
                        let_go(job.job_id, "ok")
                        self._finish_job_span(job.job_id, "ok")
                    completed[job.job_id] = result
                    self._progress(
                        f"{job.job_id}: {result.status} ({result.seconds:.1f}s)"
                        + (f" {result.error}" if result.error else "")
                    )
            except BaseException:
                # A propagating exception (fail-fast job failure, interrupt)
                # abandons the round: drop the held leases so peers — or the
                # next invocation — can pick the unfinished jobs up at once
                # instead of waiting out the TTL.
                for job_id in list(leases):
                    let_go(job_id, "aborted")
                raise
            finally:
                if keeper is not None:
                    keeper.__exit__(None, None, None)

            for position, job in enumerate(runnable):
                result = completed.get(job.job_id)
                if result is not None and result.ok:
                    continue
                if result is None:
                    if crashed is not None and position == crashed_position:
                        # The item supervision blames: account it a failure.
                        result = JobResult(
                            job_id=job.job_id,
                            kind=job.kind,
                            status="error",
                            error=f"WorkerCrashed: {crashed}",
                            exception=crashed,
                        )
                    else:
                        # Lost to a pool crash without being at fault: the
                        # job simply re-enters the next round, no attempt
                        # counted against it.
                        let_go(job.job_id, "requeued")
                        continue
                failures[job.job_id] = failures.get(job.job_id, 0) + 1
                verdict = classify_failure(result.exception, result.error)
                bump(f"failures_{verdict}")
                attempt = failures[job.job_id]
                if verdict == "transient" and self.retry_policy.should_retry(attempt):
                    delay = self.retry_policy.delay(job.job_id, attempt)
                    not_before[job.job_id] = time.monotonic() + delay
                    let_go(job.job_id, "retry")
                    bump("retries")
                    if tracing_enabled():
                        obs_trace.event(
                            "retry",
                            job=job.job_id,
                            attempt=attempt + 1,
                            delay=round(delay, 4),
                            error=result.error,
                        )
                    self._progress(
                        f"{job.job_id}: retrying in {delay:.2f}s "
                        f"(attempt {attempt + 1}, {verdict}: {result.error})"
                    )
                    continue
                result.attempts = attempt
                result.owner = store.owner if store is not None else ""
                if self._is_timeout(result):
                    result.status = "timed_out"
                    bump("timed_out")
                slots[job.job_id] = result
                remaining.remove(job)
                let_go(job.job_id, result.status)
                self._finish_job_span(job.job_id, result.status)


def run_campaign(
    spec: CampaignSpec,
    state_dir: Optional[str] = None,
    jobs: Optional[int] = None,
    limit: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    fail_fast: bool = False,
    retry_policy: Optional[RetryPolicy] = None,
    solve_budget: Optional[SolveBudget] = None,
    lease_ttl: Optional[float] = None,
    oversubscribe: bool = False,
) -> CampaignResult:
    """One-shot convenience wrapper around :class:`CampaignRunner`."""
    return CampaignRunner(
        spec,
        state_dir=state_dir,
        jobs=jobs,
        progress=progress,
        retry_policy=retry_policy,
        solve_budget=solve_budget,
        lease_ttl=lease_ttl,
        oversubscribe=oversubscribe,
    ).run(limit=limit, fail_fast=fail_fast)


def run_windowed_campaign(
    path: str,
    state_dir: Optional[str] = None,
    jobs: Optional[int] = None,
    limit: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    spec: Optional[CampaignSpec] = None,
    verify: bool = True,
    sat_check: Optional[bool] = None,
    retry_policy: Optional[RetryPolicy] = None,
    solve_budget: Optional[SolveBudget] = None,
    lease_ttl: Optional[float] = None,
    oversubscribe: bool = False,
    **window_params,
) -> Tuple[CampaignResult, Optional["object"]]:
    """Run the windowed obfuscation of a BLIF circuit as a campaign.

    Per-window jobs fan out over the worker pool with resumable per-window
    state (``state_dir``): an interrupted run resumes from the finished
    windows, whose camouflaged netlists and true configurations are
    reconstructed from the persisted payloads.  Once every window is done
    the windows are stitched back into the parent and verified (packed sim
    plus SAT miter, width permitting); the second element of the returned
    pair is the :class:`~repro.flow.target.WindowedObfuscationResult`, or
    ``None`` while windows are still pending or failed.
    """
    from ..flow.target import assemble_windowed_result
    from ..netlist.window import extract_windows
    from ..parallel import resolve_jobs as _resolve

    spec = spec if spec is not None else CampaignSpec.windowed(path, **window_params)
    outcome = run_campaign(
        spec,
        state_dir=state_dir,
        jobs=jobs,
        limit=limit,
        progress=progress,
        retry_policy=retry_policy,
        solve_budget=solve_budget,
        lease_ttl=lease_ttl,
        oversubscribe=oversubscribe,
    )
    if outcome.failed or outcome.pending:
        return outcome, None

    netlist = _read_blif_workload(path)
    first = spec.jobs[0].params
    windows = extract_windows(
        netlist,
        max_inputs=int(first.get("max_window_inputs", 8)),
        max_instances=int(first.get("max_window_instances", 48)),
        strategy=first.get("windowing"),
    )
    records = []
    for result in outcome.results:
        index = int(result.payload["index"]) if "index" in result.payload else None
        if index is None:
            raise CampaignError(
                f"window job {result.job_id!r} has no window index in its state"
            )
        if result.value is not None:
            records.append(result.value)
        else:
            records.append(window_record_from_payload(result.payload, windows[index]))
    records.sort(key=lambda record: record.window.index)
    assembled = assemble_windowed_result(
        netlist,
        records,
        verify=verify,
        sat_check=sat_check,
        jobs=_resolve(jobs),
    )
    return outcome, assembled

"""Scenario subsystem: the workload registry and the campaign runner.

* :mod:`repro.scenarios.registry` — pluggable viable-function families
  (PRESENT, DES, AES-style 8-bit, seeded RANDOM, BLIF-imported) behind a
  single :func:`~repro.scenarios.registry.workload_functions` resolver.
* :mod:`repro.scenarios.campaign` — declarative experiment sweeps
  (workload x configuration x experiment) executed over the worker pool
  with resumable on-disk state and JSON/CSV artifact emission.
"""

from .campaign import (
    CampaignError,
    CampaignJob,
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    JobResult,
    run_campaign,
    run_windowed_campaign,
)
from .registry import (
    BLIF_EXTRACT_LIMIT,
    Workload,
    WorkloadError,
    WorkloadFamily,
    available_families,
    build_workload,
    get_family,
    register_family,
    workload_functions,
)

__all__ = [
    "Workload",
    "WorkloadFamily",
    "WorkloadError",
    "register_family",
    "get_family",
    "available_families",
    "build_workload",
    "workload_functions",
    "BLIF_EXTRACT_LIMIT",
    "CampaignError",
    "CampaignJob",
    "CampaignSpec",
    "JobResult",
    "CampaignResult",
    "CampaignRunner",
    "run_campaign",
    "run_windowed_campaign",
]

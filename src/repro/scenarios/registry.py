"""Workload registry: pluggable viable-function families for the flows.

The paper's evaluation hard-wires two workloads (4-bit optimal "PRESENT-
style" S-boxes and the DES S-boxes).  The registry generalises that to a
catalogue of *workload families*, each able to build a :class:`Workload` —
a named bundle of viable :class:`~repro.logic.boolfunc.BoolFunction`\\ s of
a common width, optionally carrying reference netlists — so the experiment
harnesses, the campaign runner, and the CLI can sweep any registered family
without code changes.

Built-in families:

``PRESENT``
    The 16 optimal 4-bit S-boxes (:mod:`repro.sboxes.optimal4`).
``DES``
    The eight 6x4 DES S-boxes (:mod:`repro.sboxes.des`).
``AES``
    Sixteen AES-style 8-bit S-boxes — the canonical AES S-box plus pinned
    affine-constant variants (:mod:`repro.sboxes.aes`), the wide workload
    the word-parallel engines unlocked.
``RANDOM``
    Seeded random balanced functions of configurable width — the
    unstructured stress workload (``num_inputs`` / ``num_outputs`` /
    ``seed`` parameters).
``BLIF``
    Functions extracted from structural BLIF netlists (``paths``
    parameter), with the parsed netlists kept as references — the bridge
    for external circuits.

Families registered here are automatically available to
:func:`repro.evaluation.workloads.workload_functions`, the Table I /
Figure 4 harnesses, the campaign runner, and the ``campaign`` CLI.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable
from ..netlist.netlist import Netlist
from ..sboxes.aes import NUM_AES_SBOXES, aes_sboxes
from ..sboxes.des import NUM_DES_SBOXES, des_sboxes
from ..sboxes.optimal4 import optimal_sboxes

__all__ = [
    "Workload",
    "WorkloadFamily",
    "WorkloadError",
    "register_family",
    "get_family",
    "available_families",
    "build_workload",
    "workload_functions",
    "PresentFamily",
    "DesFamily",
    "AesFamily",
    "RandomFamily",
    "BlifFamily",
    "BLIF_EXTRACT_LIMIT",
]


class WorkloadError(ValueError):
    """Raised for unknown families or unbuildable workload requests."""


@dataclass(frozen=True)
class Workload:
    """A resolved workload: what one experiment obfuscates.

    Two shapes exist:

    * **function workloads** — the classic case: viable
      :class:`~repro.logic.boolfunc.BoolFunction`\\ s sharing one width
      (validated at construction), optionally with ``reference_netlists``
      aligned to them;
    * **netlist workloads** — wide circuits kept as first-class
      :class:`~repro.netlist.netlist.Netlist` objects with *no* extracted
      functions (``functions`` empty): truth tables would be exponential in
      the input count, so these workloads flow through the windowed netlist
      pipeline (:meth:`targets`) instead of the function pipeline.
    """

    name: str
    family: str
    functions: Tuple[BoolFunction, ...]
    reference_netlists: Tuple[Netlist, ...] = ()

    def __post_init__(self):
        if not self.functions and not self.reference_netlists:
            raise WorkloadError(
                f"workload {self.name!r} has neither functions nor netlists"
            )
        if self.functions:
            widths = {(f.num_inputs, f.num_outputs) for f in self.functions}
            if len(widths) != 1:
                raise WorkloadError(
                    f"workload {self.name!r} mixes function widths: {sorted(widths)}"
                )
            if self.reference_netlists and len(self.reference_netlists) != len(
                self.functions
            ):
                raise WorkloadError(
                    f"workload {self.name!r} has {len(self.reference_netlists)} "
                    f"reference netlists for {len(self.functions)} functions"
                )

    @property
    def is_netlist_only(self) -> bool:
        """True for netlist workloads (no exact functions were extracted)."""
        return not self.functions

    @property
    def num_inputs(self) -> int:
        """Input width (of the functions, else of the first netlist)."""
        if self.functions:
            return self.functions[0].num_inputs
        return len(self.reference_netlists[0].primary_inputs)

    @property
    def num_outputs(self) -> int:
        """Output width (of the functions, else of the first netlist)."""
        if self.functions:
            return self.functions[0].num_outputs
        return len(self.reference_netlists[0].primary_outputs)

    @property
    def count(self) -> int:
        """Number of viable functions (or netlists, for netlist workloads)."""
        return len(self.functions) or len(self.reference_netlists)

    def lookup_tables(self) -> List[List[int]]:
        """Word-level lookup tables of every function (for artifacts/tests).

        Netlist workloads raise: materialising ``2**n``-entry tables is the
        exact exponential step they exist to avoid.
        """
        if self.is_netlist_only:
            raise WorkloadError(
                f"workload {self.name!r} is netlist-only; lookup tables would "
                f"be exponential in {self.num_inputs} inputs"
            )
        return [function.lookup_table() for function in self.functions]

    def targets(self) -> List["ObfuscationTarget"]:
        """The workload as :class:`~repro.flow.target.ObfuscationTarget`\\ s.

        Function workloads become one :class:`~repro.flow.target.
        FunctionTarget` holding the merged viable set; netlist workloads
        become one :class:`~repro.flow.target.NetlistTarget` per netlist,
        which the flow windows and stitches instead of extracting.
        """
        from ..flow.target import FunctionTarget, NetlistTarget

        if self.functions:
            return [FunctionTarget(list(self.functions), name=self.name)]
        return [
            NetlistTarget(netlist, name=f"{self.name}_{index}")
            for index, netlist in enumerate(self.reference_netlists)
        ]


class WorkloadFamily(ABC):
    """A named, parameterised source of workloads."""

    #: Registry key (canonically upper-case).
    name: str = ""
    #: One-line description shown by the CLI.
    description: str = ""
    #: Largest supported ``count`` (None = unbounded).
    max_count: Optional[int] = None

    @abstractmethod
    def build(self, count: int, **params) -> Workload:
        """Build a workload of ``count`` viable functions."""

    def check_count(self, count: int) -> None:
        if count < 1:
            raise WorkloadError(f"{self.name}: count must be at least 1")
        if self.max_count is not None and count > self.max_count:
            raise WorkloadError(
                f"{self.name}: count {count} exceeds the family maximum "
                f"({self.max_count})"
            )

    @staticmethod
    def _reject_params(params: dict, allowed: Sequence[str] = ()) -> None:
        unknown = set(params) - set(allowed)
        if unknown:
            raise WorkloadError(f"unknown workload parameters: {sorted(unknown)}")


class PresentFamily(WorkloadFamily):
    """The paper's PRESENT-style workload: optimal 4-bit S-boxes."""

    name = "PRESENT"
    description = "optimal 4-bit S-boxes (PRESENT-style, 4x4)"
    max_count = 16

    def build(self, count: int, **params) -> Workload:
        self._reject_params(params)
        self.check_count(count)
        return Workload(
            name=f"PRESENT_x{count}",
            family=self.name,
            functions=tuple(optimal_sboxes(count)),
        )


class DesFamily(WorkloadFamily):
    """The paper's DES workload: 6x4 S-boxes from FIPS 46-3."""

    name = "DES"
    description = "DES S-boxes (6x4)"
    max_count = NUM_DES_SBOXES

    def build(self, count: int, **params) -> Workload:
        self._reject_params(params)
        self.check_count(count)
        return Workload(
            name=f"DES_x{count}",
            family=self.name,
            functions=tuple(des_sboxes(count)),
        )


class AesFamily(WorkloadFamily):
    """AES-style 8-bit S-boxes: the wide workload (8x8, 2^8 words)."""

    name = "AES"
    description = "AES-style 8-bit S-boxes (8x8, affine-constant variants)"
    max_count = NUM_AES_SBOXES

    def build(self, count: int, **params) -> Workload:
        self._reject_params(params)
        self.check_count(count)
        return Workload(
            name=f"AES_x{count}",
            family=self.name,
            functions=tuple(aes_sboxes(count)),
        )


class RandomFamily(WorkloadFamily):
    """Seeded random balanced functions of configurable width."""

    name = "RANDOM"
    description = "seeded random functions (num_inputs/num_outputs/seed params)"
    max_count = None

    DEFAULT_NUM_INPUTS = 6
    DEFAULT_NUM_OUTPUTS = 4

    def build(self, count: int, **params) -> Workload:
        self._reject_params(params, ("num_inputs", "num_outputs", "seed"))
        self.check_count(count)
        num_inputs = int(params.get("num_inputs", self.DEFAULT_NUM_INPUTS))
        num_outputs = int(params.get("num_outputs", self.DEFAULT_NUM_OUTPUTS))
        seed = int(params.get("seed", 2017))
        if num_inputs < 1 or num_outputs < 1:
            raise WorkloadError(f"{self.name}: widths must be positive")
        rng = random.Random(seed)
        rows = 1 << num_inputs
        # Distinct balanced functions available at this width; a request past
        # the space (tiny widths) must fail loudly, not spin in the dedup loop.
        capacity = math.comb(rows, rows // 2) ** num_outputs
        if count > capacity:
            raise WorkloadError(
                f"{self.name}: only {capacity} distinct balanced "
                f"{num_inputs}x{num_outputs} functions exist; count {count} "
                f"is unsatisfiable"
            )
        functions = []
        seen = set()
        for index in range(count):
            while True:
                # Balanced per-output tables: a random permutation of an
                # exactly half-ones column keeps the workload non-degenerate.
                tables = []
                for _ in range(num_outputs):
                    column = [1] * (rows // 2) + [0] * (rows - rows // 2)
                    rng.shuffle(column)
                    bits = 0
                    for row, value in enumerate(column):
                        if value:
                            bits |= 1 << row
                    tables.append(TruthTable(num_inputs, bits))
                key = tuple(table.bits for table in tables)
                if key not in seen:
                    seen.add(key)
                    break
            functions.append(
                BoolFunction(
                    tables, name=f"rand{num_inputs}x{num_outputs}_s{seed}_{index}"
                )
            )
        return Workload(
            name=f"RANDOM_x{count}_{num_inputs}x{num_outputs}_s{seed}",
            family=self.name,
            functions=tuple(functions),
        )


#: BLIF netlists with more primary inputs than this stay netlist workloads:
#: exhaustive truth-table extraction is exponential in the input count, so
#: wide circuits flow through the windowed netlist pipeline instead.
BLIF_EXTRACT_LIMIT = 16


class BlifFamily(WorkloadFamily):
    """Workloads imported from structural BLIF netlists (``paths`` param).

    Circuits whose input count is at most ``extract_limit`` (default
    :data:`BLIF_EXTRACT_LIMIT`) are extracted into exact viable functions,
    exactly as before.  Wider circuits are kept as first-class netlist
    workloads — no truth table is ever built — and are obfuscated through
    the windowed pipeline (:meth:`Workload.targets`).
    """

    name = "BLIF"
    description = (
        "BLIF netlists (paths param); wide circuits stay netlist workloads"
    )
    max_count = None

    def build(self, count: int, **params) -> Workload:
        from ..netlist.blif import read_blif
        from ..netlist.library import standard_cell_library
        from ..netlist.simulate import extract_function

        self._reject_params(params, ("paths", "library", "extract_limit"))
        self.check_count(count)
        paths = params.get("paths")
        if not paths:
            raise WorkloadError(f"{self.name}: the 'paths' parameter is required")
        if isinstance(paths, str):
            paths = [part for part in paths.split(",") if part]
        if len(paths) != count:
            raise WorkloadError(
                f"{self.name}: {len(paths)} BLIF paths for count {count}"
            )
        extract_limit = int(params.get("extract_limit", BLIF_EXTRACT_LIMIT))
        library = params.get("library") or standard_cell_library()
        netlists: List[Netlist] = []
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                netlist = read_blif(handle.read(), library)
            netlists.append(netlist)
        wide = [
            netlist
            for netlist in netlists
            if len(netlist.primary_inputs) > extract_limit
        ]
        if wide:
            # One wide circuit makes the whole workload netlist-first: mixed
            # widths could not form a valid function workload anyway, and the
            # netlist path handles narrow members just as well.
            return Workload(
                name=f"BLIF_x{count}",
                family=self.name,
                functions=(),
                reference_netlists=tuple(netlists),
            )
        functions = tuple(
            extract_function(netlist, name=netlist.name) for netlist in netlists
        )
        return Workload(
            name=f"BLIF_x{count}",
            family=self.name,
            functions=functions,
            reference_netlists=tuple(netlists),
        )


_REGISTRY: Dict[str, WorkloadFamily] = {}


def register_family(family: WorkloadFamily, replace: bool = False) -> WorkloadFamily:
    """Register a family under its (upper-cased) name."""
    key = family.name.upper()
    if not key:
        raise WorkloadError("a workload family needs a non-empty name")
    if key in _REGISTRY and not replace:
        raise WorkloadError(f"workload family {key!r} is already registered")
    _REGISTRY[key] = family
    return family


def get_family(name: str) -> WorkloadFamily:
    """Look up a registered family by (case-insensitive) name."""
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise WorkloadError(
            f"unknown workload family {name!r}; available: {available_families()}"
        ) from None


def available_families() -> List[str]:
    """Sorted names of every registered family."""
    return sorted(_REGISTRY)


def build_workload(family: str, count: int, **params) -> Workload:
    """Build a workload from a registered family."""
    return get_family(family).build(count, **params)


def workload_functions(family: str, count: int, **params) -> List[BoolFunction]:
    """The viable functions of one workload configuration.

    This is the registry-backed successor of the ad-hoc table that used to
    live in :mod:`repro.evaluation.workloads`; that module re-exports it, so
    existing callers keep working unchanged.  Netlist-only workloads (wide
    BLIF circuits) have no extracted functions and raise — route those
    through :meth:`Workload.targets` and the windowed flow instead.
    """
    workload = build_workload(family, count, **params)
    if workload.is_netlist_only:
        raise WorkloadError(
            f"workload {workload.name!r} is netlist-only ({workload.num_inputs} "
            f"inputs); use Workload.targets() and the windowed netlist flow"
        )
    return list(workload.functions)


for _family in (PresentFamily(), DesFamily(), AesFamily(), RandomFamily(), BlifFamily()):
    register_family(_family)

"""BLIF reading and writing.

The paper's flow uses Yosys to bridge RTL into BLIF for ABC.  This module
provides the equivalent interoperability layer for our netlists:

* :func:`write_blif` emits a mapped netlist using ``.gate`` statements (plus
  ``.names`` fallbacks for constants).
* :func:`read_blif` parses a structural BLIF with ``.names`` (sum-of-products
  logic) and/or ``.gate`` statements into a :class:`Netlist`; ``.names``
  blocks are converted into library cells when an exact single-output match
  exists, otherwise they are rejected with a clear error.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..logic.truthtable import TruthTable
from .library import CellLibrary, CellType
from .netlist import CONST0_NET, CONST1_NET, Netlist, NetlistError

__all__ = ["write_blif", "read_blif", "BlifError"]


class BlifError(Exception):
    """Raised for malformed BLIF input or non-representable constructs."""


def write_blif(netlist: Netlist, model_name: Optional[str] = None) -> str:
    """Serialise a mapped netlist to BLIF text."""
    lines: List[str] = []
    lines.append(f".model {model_name or netlist.name}")
    lines.append(".inputs " + " ".join(netlist.primary_inputs))
    lines.append(".outputs " + " ".join(netlist.primary_outputs))
    used_nets = set(netlist.nets())
    if CONST0_NET in used_nets or _netlist_uses(netlist, CONST0_NET):
        lines.append(f".names {CONST0_NET}")
    if _netlist_uses(netlist, CONST1_NET):
        lines.append(f".names {CONST1_NET}")
        lines.append("1")
    for instance in netlist.topological_order():
        cell = netlist.library[instance.cell]
        formals = " ".join(
            f"{pin}={net}" for pin, net in zip(cell.input_names, instance.inputs)
        )
        lines.append(f".gate {cell.name} {formals} Y={instance.output}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _netlist_uses(netlist: Netlist, net: str) -> bool:
    return any(net in instance.inputs for instance in netlist.instances)


def read_blif(text: str, library: CellLibrary) -> Netlist:
    """Parse BLIF text into a :class:`Netlist` over ``library``."""
    statements = _split_statements(text)
    model_name = "blif_model"
    netlist: Optional[Netlist] = None
    pending_names: Optional[Tuple[List[str], List[str]]] = None  # (signals, cube lines)

    def _ensure() -> Netlist:
        nonlocal netlist
        if netlist is None:
            netlist = Netlist(model_name, library)
        return netlist

    def _flush_names() -> None:
        nonlocal pending_names
        if pending_names is None:
            return
        signals, cubes = pending_names
        _add_names_block(_ensure(), signals, cubes, library)
        pending_names = None

    for tokens, raw_line in statements:
        keyword = tokens[0]
        if keyword.startswith("."):
            _flush_names()
        if keyword == ".model":
            model_name = tokens[1] if len(tokens) > 1 else model_name
            if netlist is not None:
                netlist.name = model_name
        elif keyword == ".inputs":
            target = _ensure()
            for net in tokens[1:]:
                target.add_input(net)
        elif keyword == ".outputs":
            target = _ensure()
            for net in tokens[1:]:
                target.add_output(net)
        elif keyword == ".names":
            pending_names = (tokens[1:], [])
        elif keyword == ".gate":
            _add_gate(_ensure(), tokens[1:], library)
        elif keyword == ".end":
            break
        elif keyword.startswith("."):
            raise BlifError(f"unsupported BLIF construct {keyword!r}")
        else:
            if pending_names is None:
                raise BlifError(f"unexpected line outside .names block: {raw_line!r}")
            pending_names[1].append(raw_line)
    _flush_names()
    if netlist is None:
        raise BlifError("BLIF text contained no model")
    return netlist


def _split_statements(text: str) -> List[Tuple[List[str], str]]:
    """Tokenise BLIF, handling comments and line continuations."""
    statements: List[Tuple[List[str], str]] = []
    pending = ""
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        full = (pending + line).strip()
        pending = ""
        statements.append((full.split(), full))
    if pending.strip():
        statements.append((pending.split(), pending.strip()))
    return statements


def _add_gate(netlist: Netlist, tokens: Sequence[str], library: CellLibrary) -> None:
    if not tokens:
        raise BlifError(".gate statement missing a cell name")
    cell_name = tokens[0]
    cell = library.get(cell_name)
    if cell is None:
        raise BlifError(f".gate references unknown cell {cell_name!r}")
    formal_to_actual: Dict[str, str] = {}
    for binding in tokens[1:]:
        if "=" not in binding:
            raise BlifError(f"malformed pin binding {binding!r}")
        formal, actual = binding.split("=", 1)
        formal_to_actual[formal] = actual
    try:
        inputs = [formal_to_actual[pin] for pin in cell.input_names]
        output = formal_to_actual["Y"]
    except KeyError as exc:
        raise BlifError(f".gate {cell_name} is missing a binding for pin {exc}") from exc
    netlist.add_instance(cell_name, inputs, output=output)


def _add_names_block(
    netlist: Netlist,
    signals: List[str],
    cube_lines: List[str],
    library: CellLibrary,
) -> None:
    if not signals:
        raise BlifError(".names block with no signals")
    *input_nets, output_net = signals
    num_inputs = len(input_nets)

    if num_inputs == 0:
        # Constant definition: "1" means constant one, empty means constant zero.
        is_one = any(line.strip() == "1" for line in cube_lines)
        source = CONST1_NET if is_one else CONST0_NET
        _emit_buffer(netlist, source, output_net, library)
        return

    table = _names_to_table(cube_lines, num_inputs)
    cell, pin_order = _match_cell(table, num_inputs, library)
    if cell is None:
        raise BlifError(
            f".names block for {output_net!r} does not match any library cell; "
            "only mapped BLIF is supported"
        )
    ordered_inputs = [input_nets[index] for index in pin_order]
    netlist.add_instance(cell.name, ordered_inputs, output=output_net)


def _emit_buffer(netlist: Netlist, source: str, output: str, library: CellLibrary) -> None:
    if "BUF" not in library:
        raise BlifError("library has no BUF cell for constant/alias modelling")
    netlist.add_instance("BUF", [source], output=output)


def _names_to_table(cube_lines: List[str], num_inputs: int) -> TruthTable:
    onset = TruthTable.constant(num_inputs, False)
    for line in cube_lines:
        parts = line.split()
        if len(parts) != 2:
            raise BlifError(f"malformed .names cube line {line!r}")
        pattern, value = parts
        if value != "1":
            raise BlifError("only on-set .names cubes are supported")
        if len(pattern) != num_inputs:
            raise BlifError(f"cube {pattern!r} does not match {num_inputs} inputs")
        cube = TruthTable.constant(num_inputs, True)
        for var, char in enumerate(pattern):
            if char == "1":
                cube = cube & TruthTable.variable(var, num_inputs)
            elif char == "0":
                cube = cube & ~TruthTable.variable(var, num_inputs)
            elif char != "-":
                raise BlifError(f"invalid cube character {char!r}")
        onset = onset | cube
    return onset


def _match_cell(
    table: TruthTable, num_inputs: int, library: CellLibrary
) -> Tuple[Optional[CellType], List[int]]:
    """Find a library cell (and pin permutation) implementing ``table`` exactly."""
    from itertools import permutations

    for cell in library.by_num_inputs(num_inputs):
        for permutation in permutations(range(num_inputs)):
            if cell.function.permute_inputs(list(permutation)) == table:
                # permutation maps cell-pin index -> .names input index; we
                # need, for each cell pin, which .names input connects to it.
                inverse = [0] * num_inputs
                for cell_pin, names_index in enumerate(permutation):
                    inverse[cell_pin] = names_index
                return cell, inverse
    return None, []

"""Gate-level netlist container.

A :class:`Netlist` is a combinational, single-output-cell netlist: primary
inputs, primary outputs, and cell instances.  Nets are identified by name.
Constants are modelled with the special nets ``$const0`` and ``$const1``
which every netlist implicitly provides.

The class offers the structural queries the rest of the flow relies on:
topological ordering, fanout counts, transitive fanin cones, total area, and
simple editing (adding instances, renaming nets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .library import CellLibrary, CellType

__all__ = ["Instance", "Netlist", "CONST0_NET", "CONST1_NET"]

CONST0_NET = "$const0"
CONST1_NET = "$const1"


@dataclass
class Instance:
    """A cell instance: one output net driven by a library cell."""

    name: str
    cell: str
    inputs: List[str]
    output: str
    attributes: Dict[str, object] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"Instance({self.name!r}, cell={self.cell!r}, "
            f"inputs={self.inputs!r}, output={self.output!r})"
        )


class NetlistError(Exception):
    """Raised for structural problems in a netlist."""


class Netlist:
    """A combinational gate-level netlist over a cell library."""

    def __init__(self, name: str, library: CellLibrary):
        self.name = name
        self.library = library
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        self._instances: Dict[str, Instance] = {}
        self._driver: Dict[str, str] = {}  # net name -> instance name
        self._instance_counter = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_input(self, net: str) -> str:
        """Declare a primary input net."""
        if net in self.primary_inputs:
            raise NetlistError(f"primary input {net!r} already declared")
        if net in self._driver:
            raise NetlistError(f"net {net!r} is already driven by an instance")
        self.primary_inputs.append(net)
        return net

    def add_output(self, net: str) -> str:
        """Declare a primary output net (it must eventually have a driver)."""
        if net in self.primary_outputs:
            raise NetlistError(f"primary output {net!r} already declared")
        self.primary_outputs.append(net)
        return net

    def new_net(self, prefix: str = "n") -> str:
        """Return a fresh net name not used anywhere in the netlist."""
        while True:
            self._instance_counter += 1
            candidate = f"{prefix}{self._instance_counter}"
            if (
                candidate not in self._driver
                and candidate not in self.primary_inputs
                and candidate not in self.primary_outputs
            ):
                return candidate

    def add_instance(
        self,
        cell: str,
        inputs: Sequence[str],
        output: Optional[str] = None,
        name: Optional[str] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> Instance:
        """Add a cell instance and return it.

        When ``output`` is omitted a fresh net name is allocated.
        """
        cell_type = self.library.get(cell)
        if cell_type is None:
            raise NetlistError(f"cell {cell!r} is not in library {self.library.name!r}")
        if len(inputs) != cell_type.num_inputs:
            raise NetlistError(
                f"cell {cell} expects {cell_type.num_inputs} inputs, got {len(inputs)}"
            )
        if output is None:
            output = self.new_net()
        if output in self._driver:
            raise NetlistError(f"net {output!r} already has a driver")
        if output in self.primary_inputs:
            raise NetlistError(f"net {output!r} is a primary input and cannot be driven")
        if name is None:
            name = f"u_{len(self._instances)}_{cell.lower()}"
        if name in self._instances:
            raise NetlistError(f"instance name {name!r} already used")
        instance = Instance(name, cell, list(inputs), output, dict(attributes or {}))
        self._instances[name] = instance
        self._driver[output] = name
        return instance

    def remove_instance(self, name: str) -> None:
        """Remove an instance (its output net becomes undriven)."""
        instance = self._instances.pop(name, None)
        if instance is None:
            raise NetlistError(f"no instance named {name!r}")
        self._driver.pop(instance.output, None)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def instances(self) -> List[Instance]:
        """All instances in insertion order."""
        return list(self._instances.values())

    def instance(self, name: str) -> Instance:
        """Return an instance by name."""
        try:
            return self._instances[name]
        except KeyError as exc:
            raise NetlistError(f"no instance named {name!r}") from exc

    def num_instances(self) -> int:
        """Number of cell instances."""
        return len(self._instances)

    def driver_of(self, net: str) -> Optional[Instance]:
        """Return the instance driving ``net`` (None for PIs and constants)."""
        name = self._driver.get(net)
        return self._instances.get(name) if name is not None else None

    def nets(self) -> List[str]:
        """Return every net name referenced in the netlist."""
        seen: List[str] = []
        seen_set: Set[str] = set()

        def _add(net: str) -> None:
            if net not in seen_set:
                seen_set.add(net)
                seen.append(net)

        for net in self.primary_inputs:
            _add(net)
        for instance in self._instances.values():
            for net in instance.inputs:
                _add(net)
            _add(instance.output)
        for net in self.primary_outputs:
            _add(net)
        return seen

    def fanout_counts(self) -> Dict[str, int]:
        """Return the number of sinks of every net (POs count as one sink)."""
        counts: Dict[str, int] = {net: 0 for net in self.nets()}
        for instance in self._instances.values():
            for net in instance.inputs:
                counts[net] = counts.get(net, 0) + 1
        for net in self.primary_outputs:
            counts[net] = counts.get(net, 0) + 1
        return counts

    def topological_order(self) -> List[Instance]:
        """Return instances sorted so every instance follows its drivers.

        Raises :class:`NetlistError` when the netlist has a combinational
        cycle or an instance reads an undriven internal net.
        """
        available: Set[str] = set(self.primary_inputs) | {CONST0_NET, CONST1_NET}
        # Kahn's algorithm over the instance graph: an instance is ready once
        # every one of its input nets is available.
        pending: Dict[str, int] = {}
        waiters: Dict[str, List[str]] = {}
        ready: List[str] = []
        for name, instance in self._instances.items():
            missing = 0
            for net in set(instance.inputs):
                if net not in available:
                    missing += 1
                    waiters.setdefault(net, []).append(name)
            if missing == 0:
                ready.append(name)
            pending[name] = missing
        order: List[Instance] = []
        while ready:
            name = ready.pop()
            instance = self._instances[name]
            order.append(instance)
            produced = instance.output
            if produced in available:
                continue
            available.add(produced)
            for waiter in waiters.get(produced, ()):
                pending[waiter] -= 1
                if pending[waiter] == 0:
                    ready.append(waiter)
        if len(order) != len(self._instances):
            blocked = sorted(name for name, count in pending.items() if count > 0)
            raise NetlistError(
                "combinational cycle or undriven net; blocked instances: "
                + ", ".join(blocked[:5])
            )
        return order

    def transitive_fanin(self, net: str) -> List[Instance]:
        """Return the instances in the cone of ``net`` (topological order)."""
        cone: List[Instance] = []
        visited: Set[str] = set()

        def _visit(current: str) -> None:
            if current in visited:
                return
            visited.add(current)
            driver = self.driver_of(current)
            if driver is None:
                return
            for fanin in driver.inputs:
                _visit(fanin)
            cone.append(driver)

        _visit(net)
        return cone

    def area(self) -> float:
        """Return the total cell area in gate equivalents."""
        return sum(self.library[instance.cell].area for instance in self._instances.values())

    def cell_histogram(self) -> Dict[str, int]:
        """Return a cell-name -> instance-count histogram."""
        histogram: Dict[str, int] = {}
        for instance in self._instances.values():
            histogram[instance.cell] = histogram.get(instance.cell, 0) + 1
        return histogram

    # ------------------------------------------------------------------ #
    # Editing helpers
    # ------------------------------------------------------------------ #
    def rename_net(self, old: str, new: str) -> None:
        """Rename a net everywhere it appears."""
        if old == new:
            return
        if new in self.nets():
            raise NetlistError(f"net {new!r} already exists")
        self.primary_inputs = [new if net == old else net for net in self.primary_inputs]
        self.primary_outputs = [new if net == old else net for net in self.primary_outputs]
        for instance in self._instances.values():
            instance.inputs = [new if net == old else net for net in instance.inputs]
            if instance.output == old:
                instance.output = new
        if old in self._driver:
            self._driver[new] = self._driver.pop(old)

    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Return a deep copy of the netlist (library object is shared)."""
        clone = Netlist(name or self.name, self.library)
        clone.primary_inputs = list(self.primary_inputs)
        clone.primary_outputs = list(self.primary_outputs)
        for instance in self._instances.values():
            clone.add_instance(
                instance.cell,
                list(instance.inputs),
                output=instance.output,
                name=instance.name,
                attributes=dict(instance.attributes),
            )
        return clone

    def __repr__(self) -> str:
        return (
            f"Netlist(name={self.name!r}, inputs={len(self.primary_inputs)}, "
            f"outputs={len(self.primary_outputs)}, instances={len(self._instances)}, "
            f"area={self.area():.2f} GE)"
        )

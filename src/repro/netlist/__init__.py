"""Gate-level netlist substrate: cells, netlists, I/O, simulation, checks."""

from .blif import BlifError, read_blif, write_blif
from .library import GE_AREAS, CellLibrary, CellType, standard_cell_library
from .netlist import CONST0_NET, CONST1_NET, Instance, Netlist, NetlistError
from .simulate import extract_function, simulate_assignment, simulate_word, simulate_words
from .validate import assert_valid, validate_netlist
from .verilog import sanitize_identifier, write_verilog
from .window import (
    WINDOWING_ENV_VAR,
    WINDOWING_NAMES,
    LevelizedGreedy,
    MinCutSeeded,
    Window,
    WindowError,
    WindowingStrategy,
    extract_windows,
    resolve_windowing,
    stitch_windows,
)

__all__ = [
    "Window",
    "WindowError",
    "WindowingStrategy",
    "LevelizedGreedy",
    "MinCutSeeded",
    "WINDOWING_ENV_VAR",
    "WINDOWING_NAMES",
    "resolve_windowing",
    "extract_windows",
    "stitch_windows",
    "CellType",
    "CellLibrary",
    "standard_cell_library",
    "GE_AREAS",
    "Instance",
    "Netlist",
    "NetlistError",
    "CONST0_NET",
    "CONST1_NET",
    "simulate_word",
    "simulate_words",
    "simulate_assignment",
    "extract_function",
    "write_blif",
    "read_blif",
    "BlifError",
    "write_verilog",
    "sanitize_identifier",
    "validate_netlist",
    "assert_valid",
]

"""Standard-cell library with gate-equivalent (GE) areas.

The paper reports all areas in gate equivalents: the area of a cell divided
by the area of a two-input NAND in the same technology.  The library below
mirrors the cell families the paper's ABC script maps to (inverter, buffer,
and 2- to 4-input NAND / NOR / AND / OR gates) with typical relative areas,
plus a 2:1 multiplexer used by the merged-circuit construction.

All cells are single-output.  The logic function of each cell is stored as a
:class:`~repro.logic.truthtable.TruthTable` over the cell's ordered input
pins, which is what the camouflage library and the technology mapper consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce
from typing import Dict, Iterable, List, Optional, Tuple

from ..logic.truthtable import TruthTable

__all__ = ["CellType", "CellLibrary", "standard_cell_library", "GE_AREAS"]


@dataclass(frozen=True)
class CellType:
    """A single-output combinational standard cell."""

    name: str
    input_names: Tuple[str, ...]
    function: TruthTable
    area: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.function.num_vars != len(self.input_names):
            raise ValueError(
                f"cell {self.name}: function arity {self.function.num_vars} does not "
                f"match {len(self.input_names)} input pins"
            )
        if self.area < 0:
            raise ValueError(f"cell {self.name}: area must be non-negative")

    @property
    def num_inputs(self) -> int:
        """Number of input pins."""
        return len(self.input_names)

    def evaluate(self, inputs: Iterable[int]) -> int:
        """Evaluate the cell on 0/1 input values given in pin order."""
        return self.function.evaluate(list(inputs))


class CellLibrary:
    """A named collection of :class:`CellType` objects."""

    def __init__(self, name: str, cells: Iterable[CellType]):
        self.name = name
        self._cells: Dict[str, CellType] = {}
        for cell in cells:
            self.add(cell)

    def add(self, cell: CellType) -> None:
        """Register a cell; names must be unique."""
        if cell.name in self._cells:
            raise ValueError(f"duplicate cell name {cell.name!r}")
        self._cells[cell.name] = cell

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __getitem__(self, name: str) -> CellType:
        try:
            return self._cells[name]
        except KeyError as exc:
            raise KeyError(f"library {self.name!r} has no cell {name!r}") from exc

    def get(self, name: str) -> Optional[CellType]:
        """Return a cell by name, or None when absent."""
        return self._cells.get(name)

    def cells(self) -> List[CellType]:
        """Return all cells in insertion order."""
        return list(self._cells.values())

    def names(self) -> List[str]:
        """Return all cell names in insertion order."""
        return list(self._cells.keys())

    def by_num_inputs(self, num_inputs: int) -> List[CellType]:
        """Return cells with exactly ``num_inputs`` input pins."""
        return [cell for cell in self._cells.values() if cell.num_inputs == num_inputs]

    def __len__(self) -> int:
        return len(self._cells)

    def __repr__(self) -> str:
        return f"CellLibrary(name={self.name!r}, cells={len(self._cells)})"


#: Typical cell areas normalised to NAND2 = 1.0 GE.
GE_AREAS: Dict[str, float] = {
    "INV": 0.67,
    "BUF": 1.00,
    "NAND2": 1.00,
    "NAND3": 1.33,
    "NAND4": 1.67,
    "NOR2": 1.00,
    "NOR3": 1.33,
    "NOR4": 1.67,
    "AND2": 1.33,
    "AND3": 1.67,
    "AND4": 2.00,
    "OR2": 1.33,
    "OR3": 1.67,
    "OR4": 2.00,
    "XOR2": 2.33,
    "XNOR2": 2.33,
    "MUX2": 2.33,
}


def _and_table(num_inputs: int) -> TruthTable:
    tables = [TruthTable.variable(var, num_inputs) for var in range(num_inputs)]
    return reduce(lambda a, b: a & b, tables)


def _or_table(num_inputs: int) -> TruthTable:
    tables = [TruthTable.variable(var, num_inputs) for var in range(num_inputs)]
    return reduce(lambda a, b: a | b, tables)


def _pin_names(num_inputs: int) -> Tuple[str, ...]:
    return tuple("ABCDEFGH"[:num_inputs])


def standard_cell_library() -> CellLibrary:
    """Build the default standard-cell library used by synthesis and mapping."""
    cells: List[CellType] = []

    inv = TruthTable(1, 0b01)
    buf = TruthTable(1, 0b10)
    cells.append(CellType("INV", ("A",), inv, GE_AREAS["INV"], "inverter"))
    cells.append(CellType("BUF", ("A",), buf, GE_AREAS["BUF"], "buffer"))

    for num_inputs in (2, 3, 4):
        pins = _pin_names(num_inputs)
        and_table = _and_table(num_inputs)
        or_table = _or_table(num_inputs)
        cells.append(
            CellType(
                f"NAND{num_inputs}", pins, ~and_table, GE_AREAS[f"NAND{num_inputs}"],
                f"{num_inputs}-input NAND",
            )
        )
        cells.append(
            CellType(
                f"NOR{num_inputs}", pins, ~or_table, GE_AREAS[f"NOR{num_inputs}"],
                f"{num_inputs}-input NOR",
            )
        )
        cells.append(
            CellType(
                f"AND{num_inputs}", pins, and_table, GE_AREAS[f"AND{num_inputs}"],
                f"{num_inputs}-input AND",
            )
        )
        cells.append(
            CellType(
                f"OR{num_inputs}", pins, or_table, GE_AREAS[f"OR{num_inputs}"],
                f"{num_inputs}-input OR",
            )
        )

    xor2 = TruthTable.variable(0, 2) ^ TruthTable.variable(1, 2)
    cells.append(CellType("XOR2", ("A", "B"), xor2, GE_AREAS["XOR2"], "2-input XOR"))
    cells.append(CellType("XNOR2", ("A", "B"), ~xor2, GE_AREAS["XNOR2"], "2-input XNOR"))

    # MUX2: output = S ? B : A with pin order (A, B, S).
    var_a = TruthTable.variable(0, 3)
    var_b = TruthTable.variable(1, 3)
    var_s = TruthTable.variable(2, 3)
    mux = (var_s & var_b) | (~var_s & var_a)
    cells.append(CellType("MUX2", ("A", "B", "S"), mux, GE_AREAS["MUX2"], "2:1 mux"))

    return CellLibrary("standard", cells)

"""Structural Verilog emission.

The mapped (and camouflaged) netlists can be exported as structural Verilog
for inspection or for use with external simulators.  Camouflaged cells are
emitted with their look-alike cell name — exactly what an adversary imaging
the chip would recover — while an optional ``reveal_configuration`` flag
emits the configured (true) function of each camouflaged instance as a
comment, which is useful for debugging the designer-side view.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional

from .netlist import CONST0_NET, CONST1_NET, Netlist

__all__ = ["write_verilog", "sanitize_identifier"]

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def sanitize_identifier(name: str) -> str:
    """Turn a net or instance name into a legal Verilog identifier."""
    if _IDENT_RE.match(name):
        return name
    cleaned = re.sub(r"[^A-Za-z0-9_]", "_", name)
    if not cleaned or not re.match(r"[A-Za-z_]", cleaned[0]):
        cleaned = "n_" + cleaned
    return cleaned


def write_verilog(
    netlist: Netlist,
    module_name: Optional[str] = None,
    instance_comments: Optional[Mapping[str, str]] = None,
) -> str:
    """Serialise the netlist as structural Verilog.

    ``instance_comments`` maps instance names to a comment appended on the
    instantiation line (used e.g. to annotate camouflaged-cell configurations).
    """
    rename: Dict[str, str] = {}
    used: Dict[str, int] = {}

    def _name(net: str) -> str:
        if net in rename:
            return rename[net]
        base = sanitize_identifier(net)
        candidate = base
        while candidate in used:
            used[base] += 1
            candidate = f"{base}_{used[base]}"
        used.setdefault(base, 0)
        used[candidate] = used.get(candidate, 0)
        rename[net] = candidate
        return candidate

    module = sanitize_identifier(module_name or netlist.name)
    inputs = [_name(net) for net in netlist.primary_inputs]
    outputs = [_name(net) for net in netlist.primary_outputs]

    lines: List[str] = []
    lines.append(f"module {module} (")
    ports = [f"    input  wire {name}" for name in inputs]
    ports += [f"    output wire {name}" for name in outputs]
    lines.append(",\n".join(ports))
    lines.append(");")
    lines.append("")

    internal = [
        net
        for net in netlist.nets()
        if net not in netlist.primary_inputs
        and net not in netlist.primary_outputs
        and net not in (CONST0_NET, CONST1_NET)
    ]
    for net in internal:
        lines.append(f"  wire {_name(net)};")
    uses_const0 = any(CONST0_NET in inst.inputs for inst in netlist.instances)
    uses_const1 = any(CONST1_NET in inst.inputs for inst in netlist.instances)
    if uses_const0:
        lines.append(f"  wire {_name(CONST0_NET)} = 1'b0;")
    if uses_const1:
        lines.append(f"  wire {_name(CONST1_NET)} = 1'b1;")
    if internal or uses_const0 or uses_const1:
        lines.append("")

    for instance in netlist.topological_order():
        cell = netlist.library[instance.cell]
        bindings = [
            f".{pin}({_name(net)})" for pin, net in zip(cell.input_names, instance.inputs)
        ]
        bindings.append(f".Y({_name(instance.output)})")
        comment = ""
        if instance_comments and instance.name in instance_comments:
            comment = f"  // {instance_comments[instance.name]}"
        lines.append(
            f"  {cell.name} {sanitize_identifier(instance.name)} "
            f"({', '.join(bindings)});{comment}"
        )

    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"

"""Netlist simulation.

Two levels of service are provided:

* :func:`simulate_word` — evaluate the netlist on a single input word.
* :func:`extract_function` — exhaustively simulate the netlist and return a
  :class:`~repro.logic.boolfunc.BoolFunction`, using bit-parallel simulation
  (every net carries a packed truth table over the primary inputs) so the
  cost is linear in the number of instances rather than in
  ``2**num_inputs * instances``.

Both entry points accept a ``cell_functions`` override that substitutes the
logic function of individual *instances*.  The camouflage verification flow
uses this to evaluate a mapped netlist under a specific configuration of its
camouflaged cells without rebuilding the netlist.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable
from .netlist import CONST0_NET, CONST1_NET, Netlist, NetlistError

__all__ = ["simulate_word", "simulate_assignment", "extract_function"]


def simulate_assignment(
    netlist: Netlist,
    assignment: Mapping[str, int],
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
) -> Dict[str, int]:
    """Simulate the netlist for one assignment of primary-input values.

    Returns a dict with the value of every net.  ``cell_functions`` maps
    *instance names* to replacement truth tables (same arity as the cell).
    """
    values: Dict[str, int] = {CONST0_NET: 0, CONST1_NET: 1}
    for net in netlist.primary_inputs:
        if net not in assignment:
            raise NetlistError(f"no value provided for primary input {net!r}")
        values[net] = 1 if assignment[net] else 0

    for instance in netlist.topological_order():
        function = None
        if cell_functions is not None:
            function = cell_functions.get(instance.name)
        if function is None:
            function = netlist.library[instance.cell].function
        input_values = [values[net] for net in instance.inputs]
        values[instance.output] = function.evaluate(input_values)

    for net in netlist.primary_outputs:
        if net not in values:
            raise NetlistError(f"primary output {net!r} is undriven")
    return values


def simulate_word(
    netlist: Netlist,
    word: int,
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
) -> int:
    """Evaluate the netlist on an input word and return the output word.

    Bit ``k`` of ``word`` is the value of ``netlist.primary_inputs[k]``; bit
    ``k`` of the result is the value of ``netlist.primary_outputs[k]``.
    """
    assignment = {
        net: (word >> index) & 1 for index, net in enumerate(netlist.primary_inputs)
    }
    values = simulate_assignment(netlist, assignment, cell_functions)
    result = 0
    for index, net in enumerate(netlist.primary_outputs):
        if values[net]:
            result |= 1 << index
    return result


def extract_function(
    netlist: Netlist,
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
    name: Optional[str] = None,
) -> BoolFunction:
    """Exhaustively simulate the netlist into a :class:`BoolFunction`.

    Primary input ``k`` becomes function variable ``k`` and primary output
    ``k`` becomes function output ``k``.  Simulation is bit-parallel: each
    net carries the packed truth table of its value over all input minterms.
    """
    num_inputs = len(netlist.primary_inputs)
    tables: Dict[str, TruthTable] = {
        CONST0_NET: TruthTable.constant(num_inputs, False),
        CONST1_NET: TruthTable.constant(num_inputs, True),
    }
    for index, net in enumerate(netlist.primary_inputs):
        tables[net] = TruthTable.variable(index, num_inputs)

    for instance in netlist.topological_order():
        function = None
        if cell_functions is not None:
            function = cell_functions.get(instance.name)
        if function is None:
            function = netlist.library[instance.cell].function
        operands = [tables[net] for net in instance.inputs]
        tables[instance.output] = function.compose(operands) if operands else _constant(
            function, num_inputs
        )

    outputs: List[TruthTable] = []
    for net in netlist.primary_outputs:
        if net not in tables:
            raise NetlistError(f"primary output {net!r} is undriven")
        outputs.append(tables[net])
    return BoolFunction(
        outputs,
        name=name or netlist.name,
        input_names=list(netlist.primary_inputs),
        output_names=list(netlist.primary_outputs),
    )


def _constant(function: TruthTable, num_inputs: int) -> TruthTable:
    """Lift a zero-input cell function to a constant over ``num_inputs`` vars."""
    value = bool(function.bits & 1)
    return TruthTable.constant(num_inputs, value)

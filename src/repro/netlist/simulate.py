"""Netlist simulation.

Three levels of service are provided:

* :func:`simulate_assignment` — evaluate one assignment row-by-row (the
  readable reference implementation the packed engines are checked against).
* :func:`simulate_word` / :func:`simulate_words` — word-level evaluation.
  Batches route through the word-parallel engine in :mod:`repro.sim.engine`,
  where every net carries a packed bitvector over the whole batch.
* :func:`extract_function` — exhaustively simulate the netlist and return a
  :class:`~repro.logic.boolfunc.BoolFunction`; this is one packed pass over
  the exhaustive pattern batch, so the cost is linear in the number of
  instances rather than in ``2**num_inputs * instances``.

Every entry point accepts a ``cell_functions`` override that substitutes the
logic function of individual *instances*.  The camouflage verification flow
uses this to evaluate a mapped netlist under a specific configuration of its
camouflaged cells without rebuilding the netlist.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..logic.boolfunc import BoolFunction
from ..logic.truthtable import TruthTable
from .netlist import CONST0_NET, CONST1_NET, Netlist, NetlistError

__all__ = [
    "simulate_word",
    "simulate_words",
    "simulate_assignment",
    "extract_function",
]


def simulate_assignment(
    netlist: Netlist,
    assignment: Mapping[str, int],
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
) -> Dict[str, int]:
    """Simulate the netlist for one assignment of primary-input values.

    Returns a dict with the value of every net.  ``cell_functions`` maps
    *instance names* to replacement truth tables (same arity as the cell).
    """
    values: Dict[str, int] = {CONST0_NET: 0, CONST1_NET: 1}
    for net in netlist.primary_inputs:
        if net not in assignment:
            raise NetlistError(f"no value provided for primary input {net!r}")
        values[net] = 1 if assignment[net] else 0

    for instance in netlist.topological_order():
        function = None
        if cell_functions is not None:
            function = cell_functions.get(instance.name)
        if function is None:
            function = netlist.library[instance.cell].function
        if function.num_vars != len(instance.inputs):
            raise NetlistError(
                f"cell function override for instance {instance.name!r} has "
                f"{function.num_vars} variables but the instance has "
                f"{len(instance.inputs)} pins"
            )
        input_values = [values[net] for net in instance.inputs]
        values[instance.output] = function.evaluate(input_values)

    for net in netlist.primary_outputs:
        if net not in values:
            raise NetlistError(f"primary output {net!r} is undriven")
    return values


def simulate_word(
    netlist: Netlist,
    word: int,
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
) -> int:
    """Evaluate the netlist on an input word and return the output word.

    Bit ``k`` of ``word`` is the value of ``netlist.primary_inputs[k]``; bit
    ``k`` of the result is the value of ``netlist.primary_outputs[k]``.
    """
    return simulate_words(netlist, [word], cell_functions)[0]


def simulate_words(
    netlist: Netlist,
    words: Sequence[int],
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
) -> List[int]:
    """Evaluate the netlist on a batch of input words (one packed pass).

    Returns one output word per input word, in order.  This is the batched
    oracle-query primitive of the attack flows.
    """
    from ..sim.engine import NetlistSimulator

    return NetlistSimulator(netlist).simulate_words(words, cell_functions)


def extract_function(
    netlist: Netlist,
    cell_functions: Optional[Mapping[str, TruthTable]] = None,
    name: Optional[str] = None,
) -> BoolFunction:
    """Exhaustively simulate the netlist into a :class:`BoolFunction`.

    Primary input ``k`` becomes function variable ``k`` and primary output
    ``k`` becomes function output ``k``.  Simulation is word-parallel: one
    packed pass over the exhaustive pattern batch, each net carrying the
    packed truth table of its value over all input minterms.
    """
    from ..sim.engine import NetlistSimulator

    return NetlistSimulator(netlist).extract_function(cell_functions, name=name)

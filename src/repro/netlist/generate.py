"""Deterministic random netlist generation.

Seeded structural benchmark circuits for tests, benchmarks, and bundled
example workloads (``examples/circuits/wide30.blif`` is
``random_netlist(2017, num_inputs=30, num_cells=60, num_outputs=8,
depth_bias=20, name="wide30")`` over the standard cell library).  The
generator is a pure function of its arguments, so circuits regenerate
bit-identically across runs and platforms.
"""

from __future__ import annotations

import random
from typing import Optional

from .library import CellLibrary, standard_cell_library
from .netlist import Netlist

__all__ = ["random_netlist"]


def random_netlist(
    seed: int,
    library: Optional[CellLibrary] = None,
    num_inputs: int = 10,
    num_cells: int = 30,
    num_outputs: int = 4,
    name: str = "rand",
    depth_bias: Optional[int] = None,
) -> Netlist:
    """Build a seeded random gate-level netlist.

    Every cell draws its fanins uniformly from the nets created so far;
    ``depth_bias`` restricts the draw to the most recent N nets, which
    yields deeper, more realistic circuits than uniform sampling.  The
    primary outputs are a seeded sample of the cell outputs.
    """
    if num_inputs < 1 or num_cells < 1:
        raise ValueError("a random netlist needs inputs and cells")
    if num_outputs < 1 or num_outputs > num_cells:
        raise ValueError("num_outputs must be between 1 and num_cells")
    library = library or standard_cell_library()
    rng = random.Random(seed)
    netlist = Netlist(name, library)
    nets = [netlist.add_input(f"i{index}") for index in range(num_inputs)]
    cells = [cell for cell in library.cells() if cell.num_inputs >= 1]
    for _ in range(num_cells):
        cell = rng.choice(cells)
        if depth_bias:
            pool = nets[max(0, len(nets) - depth_bias):]
        else:
            pool = nets
        inputs = [rng.choice(pool) for _ in range(cell.num_inputs)]
        nets.append(netlist.add_instance(cell.name, inputs).output)
    for net in rng.sample(nets[num_inputs:], num_outputs):
        netlist.add_output(net)
    return netlist

"""Netlist windowing: bounded-input subcircuit extraction and stitching.

The obfuscation pipeline bottoms out in exact truth tables, which caps it at
S-box-scale functions.  Windowing is the bridge to *wide* netlists (dozens to
hundreds of primary inputs): the netlist is partitioned into **windows** —
connected subcircuits whose boundary-input count is bounded — each window is
small enough for exhaustive packed simulation and the full Phase I–III flow,
and the transformed windows are stitched back into the parent with exact
pin-boundary bookkeeping.

Window extraction is a *levelized*, reconvergence-aware clustering in the
spirit of the cut growth in :mod:`repro.aig.cuts`, lifted to the gate-level
netlist with one extra invariant the cut world does not need: because a
transformed window may structurally connect **every** output to **every**
input (synthesis and camouflage padding densify dependencies even though the
function is preserved), the windows must form a DAG *at window granularity*.
The extractor therefore sweeps the instances in topological order and greedily
absorbs each instance into the currently open window when (a) all its input
nets are already available — primary inputs, constants, outputs of previously
closed windows, or members of the open window — and (b) the window's
*boundary set* stays within ``max_inputs``.  Shared fanins count once (the
reconvergence-aware part), and a window's inputs can only come from earlier
windows, so replacing each window with an arbitrary pin-compatible black box
can never create a combinational cycle.  The partition is total and a pure,
deterministic function of the netlist and the bounds.

:func:`stitch_windows` is the inverse: given one replacement netlist per
window (pin-compatible: replacement primary input ``k`` corresponds to
``window.input_nets[k]``, primary output ``k`` to ``window.output_nets[k]``),
it splices the replacements into a copy of the parent, renaming internal nets
and instances into a collision-free namespace and returning the name maps so
per-window cell configurations can be carried over to the stitched whole.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from .library import CellLibrary
from .netlist import CONST0_NET, CONST1_NET, Instance, Netlist, NetlistError

__all__ = [
    "Window",
    "WindowError",
    "StitchedNetlist",
    "WindowingStrategy",
    "LevelizedGreedy",
    "MinCutSeeded",
    "WINDOWING_ENV_VAR",
    "WINDOWING_NAMES",
    "resolve_windowing",
    "extract_windows",
    "window_subnetlist",
    "window_function",
    "stitch_windows",
]

#: Environment variable selecting the default windowing strategy by name.
WINDOWING_ENV_VAR = "REPRO_WINDOWING"

#: Strategy names accepted by :func:`resolve_windowing` and ``--windowing``.
WINDOWING_NAMES = ("greedy", "hardness")

_CONST_NETS = (CONST0_NET, CONST1_NET)


class WindowError(NetlistError):
    """Raised for infeasible bounds or pin-incompatible replacements."""


@dataclass(frozen=True)
class Window:
    """A bounded-input subcircuit of a parent netlist.

    ``input_nets`` are the boundary nets feeding the window from outside
    (parent primary inputs or nets driven by other windows), in a stable,
    deterministic order; ``output_nets`` are the member-driven nets the rest
    of the design (or a parent primary output) observes.  The orders define
    the pin contract of any replacement netlist.
    """

    index: int
    instance_names: Tuple[str, ...]
    input_nets: Tuple[str, ...]
    output_nets: Tuple[str, ...]

    @property
    def num_inputs(self) -> int:
        """Number of boundary input nets."""
        return len(self.input_nets)

    @property
    def num_outputs(self) -> int:
        """Number of observed output nets."""
        return len(self.output_nets)

    @property
    def num_instances(self) -> int:
        """Number of member instances."""
        return len(self.instance_names)


class WindowingStrategy(ABC):
    """Strategy partitioning a netlist's instances into window member lists.

    ``partition`` receives the netlist, its topological instance order and
    the bounds, and returns the member-name lists, one per window, in window
    order.  Every strategy must honour the two invariants the stitching
    machinery relies on — the partition is *total* (every instance in exactly
    one window) and *levelized* (window ``k``'s members read only primary
    inputs, constants, outputs of windows ``< k``, or fellow members).
    :func:`extract_windows` re-validates both, so a buggy strategy fails
    loudly instead of producing a cyclic stitch.
    """

    #: Registry name; also the value accepted by ``--windowing``.
    name: str = ""

    @abstractmethod
    def partition(
        self,
        netlist: Netlist,
        order: Sequence[Instance],
        max_inputs: int,
        max_instances: int,
    ) -> List[List[str]]:
        """Partition the instances into ordered window member lists."""


class LevelizedGreedy(WindowingStrategy):
    """The historic levelized greedy clustering, bit-identical default.

    Sweeps the instances in topological order and greedily absorbs each
    instance into the currently open window when all its fanins are available
    and the boundary stays within ``max_inputs``; deferred instances seed the
    following windows.
    """

    name = "greedy"

    def partition(
        self,
        netlist: Netlist,
        order: Sequence[Instance],
        max_inputs: int,
        max_instances: int,
    ) -> List[List[str]]:
        available: Set[str] = set(netlist.primary_inputs) | set(_CONST_NETS)
        remaining: List[Instance] = list(order)
        member_lists: List[List[str]] = []
        while remaining:
            members: List[str] = []
            member_outputs: Set[str] = set()
            boundary: Set[str] = set()
            leftover: List[Instance] = []
            for instance in remaining:
                if len(members) >= max_instances:
                    leftover.append(instance)
                    continue
                inputs = set(instance.inputs)
                if not inputs <= (available | member_outputs):
                    # Some fanin is neither closed-window output nor a member:
                    # joining now would let this window's (densified)
                    # replacement depend on a later window.  Defer it.
                    leftover.append(instance)
                    continue
                external = {
                    net
                    for net in inputs
                    if net not in member_outputs and net not in _CONST_NETS
                }
                if len(boundary | external) > max_inputs:
                    leftover.append(instance)
                    continue
                members.append(instance.name)
                member_outputs.add(instance.output)
                boundary |= external
            # Progress is guaranteed: the first remaining instance always has
            # all fanins available (its producers precede it in topological
            # order, so an unassigned producer would itself be first).
            if not members:
                raise WindowError(
                    "window extraction failed to make progress (inconsistent "
                    "netlist topological order)"
                )
            member_lists.append(members)
            available |= member_outputs
            remaining = leftover
        return member_lists


class MinCutSeeded(WindowingStrategy):
    """Hardness-aware clustering: close windows at min-cut boundaries.

    Windows grow exactly like :class:`LevelizedGreedy`, but the boundary size
    is recorded after every absorption and, at close time, the membership is
    truncated back to the latest minimum-boundary position in the second half
    of the growth sequence.  A truncation to a prefix of a valid absorb
    sequence is itself valid (every kept member's fanins were available or
    produced by earlier kept members), so the levelized invariant holds by
    construction.  Smaller boundaries mean fewer shared nets between windows
    — the min-cut seeds — which concentrates each window's function behind a
    narrow interface and is where decoy budget weighting (driven by measured
    per-window attack hardness, see ``repro.flow.target.decoy_budgets``) pays
    off most.
    """

    name = "hardness"

    def partition(
        self,
        netlist: Netlist,
        order: Sequence[Instance],
        max_inputs: int,
        max_instances: int,
    ) -> List[List[str]]:
        available: Set[str] = set(netlist.primary_inputs) | set(_CONST_NETS)
        remaining: List[Instance] = list(order)
        member_lists: List[List[str]] = []
        while remaining:
            members: List[str] = []
            member_outputs: Set[str] = set()
            boundary: Set[str] = set()
            boundary_history: List[int] = []
            for instance in remaining:
                if len(members) >= max_instances:
                    continue
                inputs = set(instance.inputs)
                if not inputs <= (available | member_outputs):
                    continue
                external = {
                    net
                    for net in inputs
                    if net not in member_outputs and net not in _CONST_NETS
                }
                if len(boundary | external) > max_inputs:
                    continue
                members.append(instance.name)
                member_outputs.add(instance.output)
                boundary |= external
                boundary_history.append(len(boundary))
            if not members:
                raise WindowError(
                    "window extraction failed to make progress (inconsistent "
                    "netlist topological order)"
                )
            # Min-cut seeding: keep the longest prefix ending at the latest
            # minimum-boundary position within the second half of the growth.
            lo = (len(members) + 1) // 2
            best_position = lo
            for position in range(lo, len(members) + 1):
                if boundary_history[position - 1] <= boundary_history[best_position - 1]:
                    best_position = position
            kept = members[:best_position]
            kept_set = set(kept)
            available |= {
                netlist.instance(name).output for name in kept
            }
            member_lists.append(kept)
            remaining = [
                instance for instance in remaining if instance.name not in kept_set
            ]
        return member_lists


_WINDOWING_REGISTRY = {
    LevelizedGreedy.name: LevelizedGreedy,
    MinCutSeeded.name: MinCutSeeded,
}


def resolve_windowing(
    strategy: Union[None, str, WindowingStrategy] = None,
) -> WindowingStrategy:
    """Resolve a windowing argument to a strategy instance.

    ``strategy`` may be a :class:`WindowingStrategy` (returned as-is), a name
    from :data:`WINDOWING_NAMES`, or ``None`` — in which case the
    ``REPRO_WINDOWING`` environment variable is consulted and ``greedy`` is
    the fallback.  Strategies are plumbed through worker-pool boundaries by
    name, so campaign specs stay picklable.
    """
    if isinstance(strategy, WindowingStrategy):
        return strategy
    name = strategy or os.environ.get(WINDOWING_ENV_VAR) or "greedy"
    try:
        return _WINDOWING_REGISTRY[name]()
    except KeyError:
        raise WindowError(
            f"unknown windowing strategy {name!r}; expected one of "
            f"{sorted(_WINDOWING_REGISTRY)}"
        ) from None


def _validate_partition(
    netlist: Netlist,
    order: Sequence[Instance],
    member_lists: Sequence[Sequence[str]],
) -> None:
    """Check the strategy invariants: total partition, levelized windows."""
    flattened = [name for members in member_lists for name in members]
    if sorted(flattened) != sorted(instance.name for instance in order):
        raise WindowError(
            "windowing strategy produced a non-total partition (instances "
            "missing or duplicated)"
        )
    available: Set[str] = set(netlist.primary_inputs) | set(_CONST_NETS)
    for ordinal, members in enumerate(member_lists):
        outputs = {netlist.instance(name).output for name in members}
        for name in members:
            if not set(netlist.instance(name).inputs) <= (available | outputs):
                raise WindowError(
                    f"windowing strategy violated the levelized invariant: "
                    f"instance {name!r} in window {ordinal} reads a net "
                    f"driven by a later window"
                )
        available |= outputs


def extract_windows(
    netlist: Netlist,
    max_inputs: int = 8,
    max_instances: int = 48,
    strategy: Union[None, str, WindowingStrategy] = None,
) -> List[Window]:
    """Partition every instance of ``netlist`` into bounded-input windows.

    Deterministic: the result depends only on the netlist, the bounds and
    the chosen strategy (default: :class:`LevelizedGreedy`, bit-identical to
    the historic behaviour).  ``max_inputs`` must be at least the widest cell
    arity in use (a single instance must always fit a window of its own).
    The window sequence is levelized — window ``k`` reads only primary
    inputs and outputs of windows ``< k`` — so any pin-compatible
    replacement of every window stitches back without creating a
    combinational cycle, even if the replacement structurally connects all
    of its outputs to all of its inputs.
    """
    if max_inputs < 1:
        raise WindowError("max_inputs must be at least 1")
    if max_instances < 1:
        raise WindowError("max_instances must be at least 1")
    order = netlist.topological_order()
    for instance in order:
        arity = len(set(instance.inputs) - set(_CONST_NETS))
        if arity > max_inputs:
            raise WindowError(
                f"instance {instance.name!r} has {arity} distinct inputs, more "
                f"than max_inputs={max_inputs}; no window can contain it"
            )

    chosen = resolve_windowing(strategy)
    member_lists = chosen.partition(netlist, order, max_inputs, max_instances)
    _validate_partition(netlist, order, member_lists)

    # Second pass: boundary bookkeeping per window, in deterministic order.
    consumed_by: Dict[str, List[str]] = {}
    for instance in order:
        for net in instance.inputs:
            consumed_by.setdefault(net, []).append(instance.name)
    primary_outputs = set(netlist.primary_outputs)

    windows: List[Window] = []
    for ordinal, members in enumerate(member_lists):
        member_set = set(members)
        driven = {netlist.instance(name).output for name in members}
        inputs: List[str] = []
        seen_inputs: Set[str] = set()
        for name in members:
            for net in netlist.instance(name).inputs:
                if net in driven or net in _CONST_NETS or net in seen_inputs:
                    continue
                seen_inputs.add(net)
                inputs.append(net)
        outputs: List[str] = []
        for name in members:
            net = netlist.instance(name).output
            consumers = consumed_by.get(net, [])
            externally_used = any(c not in member_set for c in consumers)
            if net in primary_outputs or externally_used or not consumers:
                outputs.append(net)
        windows.append(
            Window(
                index=len(windows),
                instance_names=tuple(members),
                input_nets=tuple(inputs),
                output_nets=tuple(outputs),
            )
        )
    return windows


def window_subnetlist(
    netlist: Netlist, window: Window, name: Optional[str] = None
) -> Netlist:
    """Build the standalone netlist of one window.

    Primary inputs are ``window.input_nets`` (in order), primary outputs
    ``window.output_nets``; member instances are copied verbatim (names and
    internal nets unchanged), so the subnetlist simulates exactly like the
    window embedded in its parent.
    """
    sub = Netlist(name or f"{netlist.name}_w{window.index}", netlist.library)
    for net in window.input_nets:
        sub.add_input(net)
    for instance_name in window.instance_names:
        instance = netlist.instance(instance_name)
        sub.add_instance(
            instance.cell,
            list(instance.inputs),
            output=instance.output,
            name=instance.name,
            attributes=dict(instance.attributes),
        )
    for net in window.output_nets:
        sub.add_output(net)
    return sub


def window_function(netlist: Netlist, window: Window):
    """Exact function of a window (window-local exhaustive packed batch).

    Input ``k`` of the returned :class:`~repro.logic.boolfunc.BoolFunction`
    is ``window.input_nets[k]`` and output ``k`` is ``window.output_nets[k]``
    — the pin contract replacements must honour.
    """
    from ..sim.engine import NetlistSimulator

    return NetlistSimulator(window_subnetlist(netlist, window)).extract_function()


@dataclass
class StitchedNetlist:
    """A parent netlist with every window replaced, plus the bookkeeping."""

    netlist: Netlist
    windows: Tuple[Window, ...]
    #: Per window: replacement instance name -> stitched instance name.
    instance_maps: Tuple[Dict[str, str], ...] = field(default_factory=tuple)

    def map_cell_functions(
        self, per_window: Sequence[Mapping[str, object]]
    ) -> Dict[str, object]:
        """Lift per-window ``cell_functions`` overrides to stitched names."""
        if len(per_window) != len(self.instance_maps):
            raise WindowError(
                f"{len(per_window)} per-window configurations for "
                f"{len(self.instance_maps)} windows"
            )
        merged: Dict[str, object] = {}
        for name_map, config in zip(self.instance_maps, per_window):
            for local_name, function in config.items():
                try:
                    merged[name_map[local_name]] = function
                except KeyError:
                    raise WindowError(
                        f"configuration names unknown instance {local_name!r}"
                    ) from None
        return merged


def _merged_library(parent: Netlist, replacements: Sequence[Netlist]) -> CellLibrary:
    """Union of the parent's and every replacement's cell library."""
    libraries = [parent.library] + [replacement.library for replacement in replacements]
    cells = []
    seen: Set[str] = set()
    for library in libraries:
        for cell in library.cells():
            if cell.name not in seen:
                seen.add(cell.name)
                cells.append(cell)
    return CellLibrary(f"{parent.library.name}_stitched", cells)


def stitch_windows(
    parent: Netlist,
    windows: Sequence[Window],
    replacements: Sequence[Netlist],
    name: Optional[str] = None,
) -> StitchedNetlist:
    """Replace every window of ``parent`` with its replacement netlist.

    Replacement ``i`` must be pin-compatible with ``windows[i]``: its ``k``-th
    primary input is wired to ``windows[i].input_nets[k]`` and its ``k``-th
    primary output drives ``windows[i].output_nets[k]``.  Internal nets and
    instance names are renamed into a fresh ``w<i>_`` namespace, so
    replacements may reuse names freely.  Instances of the parent that belong
    to no window are copied verbatim.  The result is validated structurally
    (every primary output driven, no combinational cycle).
    """
    if len(windows) != len(replacements):
        raise WindowError(
            f"{len(replacements)} replacements for {len(windows)} windows"
        )
    for window, replacement in zip(windows, replacements):
        if len(replacement.primary_inputs) != window.num_inputs:
            raise WindowError(
                f"window {window.index}: replacement has "
                f"{len(replacement.primary_inputs)} inputs, window needs "
                f"{window.num_inputs}"
            )
        if len(replacement.primary_outputs) != window.num_outputs:
            raise WindowError(
                f"window {window.index}: replacement has "
                f"{len(replacement.primary_outputs)} outputs, window needs "
                f"{window.num_outputs}"
            )

    library = _merged_library(parent, replacements)
    result = Netlist(name or f"{parent.name}_windowed", library)
    for net in parent.primary_inputs:
        result.add_input(net)

    used_nets: Set[str] = set(parent.nets()) | set(_CONST_NETS)
    used_instances: Set[str] = set()

    windowed_instances: Set[str] = set()
    for window in windows:
        windowed_instances.update(window.instance_names)
    for instance in parent.instances:
        if instance.name not in windowed_instances:
            result.add_instance(
                instance.cell,
                list(instance.inputs),
                output=instance.output,
                name=instance.name,
                attributes=dict(instance.attributes),
            )
            used_instances.add(instance.name)

    instance_maps: List[Dict[str, str]] = []
    for window, replacement in zip(windows, replacements):
        net_map: Dict[str, str] = {net: net for net in _CONST_NETS}
        for position, net in enumerate(replacement.primary_inputs):
            net_map[net] = window.input_nets[position]
        for position, net in enumerate(replacement.primary_outputs):
            boundary = window.output_nets[position]
            if net in net_map and net_map[net] != boundary:
                # The replacement aliases one of its inputs (or an earlier
                # output) straight onto this output; a buffer realises the
                # alias in the stitched parent.
                result.add_instance(
                    "BUF", [net_map[net]], output=boundary,
                    name=_fresh_name(used_instances, f"w{window.index}_alias_{position}"),
                )
                continue
            net_map[net] = boundary

        def _mapped(net: str, prefix: str = f"w{window.index}_") -> str:
            mapped = net_map.get(net)
            if mapped is None:
                mapped = _fresh_name(used_nets, prefix + net)
                net_map[net] = mapped
            return mapped

        name_map: Dict[str, str] = {}
        for instance in replacement.topological_order():
            new_name = _fresh_name(
                used_instances, f"w{window.index}_{instance.name}"
            )
            new_inputs = [_mapped(net) for net in instance.inputs]
            new_output = _mapped(instance.output)
            result.add_instance(
                instance.cell,
                new_inputs,
                output=new_output,
                name=new_name,
                attributes=dict(instance.attributes),
            )
            name_map[instance.name] = new_name
        instance_maps.append(name_map)

        for position, net in enumerate(replacement.primary_outputs):
            boundary = window.output_nets[position]
            if result.driver_of(boundary) is None:
                # The replacement output was an undriven alias of an input.
                source = net_map.get(net)
                if source is None or source == boundary:
                    raise WindowError(
                        f"window {window.index}: replacement output {net!r} "
                        f"is undriven"
                    )
                result.add_instance(
                    "BUF", [source], output=boundary,
                    name=_fresh_name(
                        used_instances, f"w{window.index}_feed_{position}"
                    ),
                )

    for net in parent.primary_outputs:
        result.add_output(net)

    # Structural validation: raises on cycles or undriven internal nets.
    result.topological_order()
    for net in parent.primary_outputs:
        if result.driver_of(net) is None and net not in result.primary_inputs:
            raise WindowError(f"stitched netlist leaves output {net!r} undriven")
    return StitchedNetlist(
        netlist=result,
        windows=tuple(windows),
        instance_maps=tuple(instance_maps),
    )


def _fresh_name(used: Set[str], candidate: str) -> str:
    """Reserve a name not yet in ``used`` (suffix-probing from the candidate)."""
    name = candidate
    suffix = 1
    while name in used:
        suffix += 1
        name = f"{candidate}_{suffix}"
    used.add(name)
    return name

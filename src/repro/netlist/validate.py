"""Structural validation of netlists.

:func:`validate_netlist` performs the checks that every stage of the flow
expects to hold before it consumes a netlist: unique drivers, no undriven
internal nets, no floating primary outputs, known cells, correct pin counts,
and acyclicity.  It returns a list of human-readable problem descriptions so
callers can either assert emptiness (tests) or report them (CLI).
"""

from __future__ import annotations

from typing import List, Set

from .netlist import CONST0_NET, CONST1_NET, Netlist, NetlistError

__all__ = ["validate_netlist", "assert_valid"]


def validate_netlist(netlist: Netlist) -> List[str]:
    """Return a list of structural problems (empty when the netlist is clean)."""
    problems: List[str] = []

    driven: Set[str] = set(netlist.primary_inputs) | {CONST0_NET, CONST1_NET}
    seen_outputs: Set[str] = set()
    for instance in netlist.instances:
        cell = netlist.library.get(instance.cell)
        if cell is None:
            problems.append(
                f"instance {instance.name!r} uses unknown cell {instance.cell!r}"
            )
            continue
        if len(instance.inputs) != cell.num_inputs:
            problems.append(
                f"instance {instance.name!r} has {len(instance.inputs)} connections "
                f"but cell {cell.name} has {cell.num_inputs} pins"
            )
        if instance.output in seen_outputs:
            problems.append(f"net {instance.output!r} has multiple drivers")
        if instance.output in netlist.primary_inputs:
            problems.append(
                f"instance {instance.name!r} drives primary input {instance.output!r}"
            )
        seen_outputs.add(instance.output)
        driven.add(instance.output)

    for instance in netlist.instances:
        for net in instance.inputs:
            if net not in driven:
                problems.append(
                    f"instance {instance.name!r} reads undriven net {net!r}"
                )

    for net in netlist.primary_outputs:
        if net not in driven:
            problems.append(f"primary output {net!r} is undriven")

    duplicate_inputs = _duplicates(netlist.primary_inputs)
    if duplicate_inputs:
        problems.append(f"duplicate primary inputs: {sorted(duplicate_inputs)}")
    duplicate_outputs = _duplicates(netlist.primary_outputs)
    if duplicate_outputs:
        problems.append(f"duplicate primary outputs: {sorted(duplicate_outputs)}")

    try:
        netlist.topological_order()
    except NetlistError as error:
        problems.append(str(error))

    return problems


def _duplicates(items: List[str]) -> Set[str]:
    seen: Set[str] = set()
    duplicated: Set[str] = set()
    for item in items:
        if item in seen:
            duplicated.add(item)
        seen.add(item)
    return duplicated


def assert_valid(netlist: Netlist) -> None:
    """Raise :class:`NetlistError` if the netlist has structural problems."""
    problems = validate_netlist(netlist)
    if problems:
        raise NetlistError("; ".join(problems))
